"""Sweep executor: serial-vs-parallel wall-clock and determinism.

Two claims, measured by :func:`repro.analysis.run_sweep_bench`:

* **Determinism** — the worker pool must be invisible in the results:
  every ``BundleScore`` of the parallel run (efficiency, envy-freeness,
  iterations, and the full allocation matrices) is identical to the
  serial run's, with zero isolated cell failures.  Asserted
  unconditionally — it holds on any host.
* **Speedup** — sharding the (bundle, mechanism) cells over 4 workers
  cuts wall-clock by at least 2x.  This one needs free CPUs: a pool
  time-sliced onto fewer cores than workers cannot beat serial, so the
  assertion only applies when the host exposes >= 4 usable CPUs; the
  measured number and the host context are archived either way.

The measured numbers are archived to ``BENCH_sweep_parallel.json`` at
the repository root.
"""

import json
from pathlib import Path

from conftest import FULL_SCALE
from repro.analysis import run_sweep_bench
from repro.cmp import cmp_8core, cmp_64core
from repro.workloads import BUNDLE_CATEGORIES

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sweep_parallel.json"


def test_sweep_parallel_speedup_and_determinism(benchmark, report):
    data = benchmark.pedantic(
        run_sweep_bench,
        kwargs={
            "config": cmp_64core() if FULL_SCALE else cmp_8core(),
            "categories": BUNDLE_CATEGORIES if FULL_SCALE else ("CPBN", "BBPN"),
            "bundles_per_category": 3,
            "workers": 4,
        },
        rounds=1,
        iterations=1,
    )
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")

    assert data["identical"], (
        f"parallel sweep diverged from serial by {data['max_abs_divergence']:.3g}"
    )
    assert data["max_abs_divergence"] == 0.0
    assert data["failures"] == 0

    machine = data["machine"]
    if machine["usable_cpus"] >= 4:
        assert data["speedup"] >= 2.0, (
            f"expected >= 2x with 4 workers on {machine['usable_cpus']} CPUs, "
            f"got x{data['speedup']:.2f}"
        )

    sweep = data["sweep"]
    report(
        "\n".join(
            [
                "parallel sweep bench (serial vs 4-worker pool)",
                f"shape: {sweep['cells']} cells, {sweep['num_cores']}-core chip, "
                f"categories {','.join(sweep['categories'])}",
                f"serial {data['serial']['wall_s']:.2f}s -> "
                f"parallel {data['parallel']['wall_s']:.2f}s "
                f"(x{data['speedup']:.2f} on "
                f"{machine['usable_cpus']}/{machine['cpu_count']} usable CPUs)",
                f"identical: {data['identical']}, failures: {data['failures']}; "
                f"JSON archived to {BENCH_JSON.name}",
            ]
        )
    )
