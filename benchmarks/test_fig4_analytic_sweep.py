"""Figures 4a/4b: the phase-1 analytic sweep on the 64-core CMP.

For every bundle (paper: 6 categories x 40 = 240; default here: a
prefix subset per category, REPRO_FULL=1 for the paper scale), every
mechanism — EqualShare, EqualBudget, XChange-Balanced, ReBudget-20,
ReBudget-40 and MaxEfficiency — is scored on efficiency (normalized to
MaxEfficiency) and envy-freeness.  The printed series follow the
paper's presentation: bundles ordered by EqualShare efficiency.

Headline shapes asserted (Section 6.1/6.2):
* ReBudget-40 >= ReBudget-20 >= EqualBudget in median efficiency;
* the envy-freeness order is reversed;
* MaxEfficiency is by far the least fair;
* no bundle violates the Theorem 2 guarantee.
"""

import numpy as np

from conftest import FIG4_BUNDLES
from repro.analysis import format_series, run_analytic_sweep, summarize_sweep


def test_fig4_efficiency_and_fairness_sweep(benchmark, report):
    sweep = benchmark.pedantic(
        run_analytic_sweep,
        kwargs={"bundles_per_category": FIG4_BUNDLES},
        rounds=1,
        iterations=1,
    )

    med = {m: float(np.median(sweep.efficiency_series(m))) for m in sweep.mechanisms}
    ef_med = {m: sweep.median_envy_freeness(m) for m in sweep.mechanisms}

    # Figure 4a ordering.
    assert med["ReBudget-40"] >= med["ReBudget-20"] - 1e-6
    assert med["ReBudget-20"] >= med["EqualBudget"] - 1e-6
    assert med["EqualBudget"] >= med["EqualShare"] - 1e-6
    # Figure 4b ordering.
    assert ef_med["EqualBudget"] >= ef_med["ReBudget-20"] - 1e-6
    assert ef_med["ReBudget-20"] >= ef_med["ReBudget-40"] - 1e-6
    assert sweep.worst_envy_freeness("MaxEfficiency") == min(
        sweep.worst_envy_freeness(m) for m in sweep.mechanisms
    )
    # Theorem 2 must hold on every bundle/mechanism.
    assert sweep.theorem2_violations() == []

    x = np.arange(len(sweep.scores), dtype=float)
    lines = [summarize_sweep(sweep), ""]
    lines.append("Figure 4a series (bundles ordered by EqualShare efficiency):")
    for m in sweep.mechanisms:
        lines.append(format_series(f"  {m:13s}", x, sweep.efficiency_series(m)))
    lines.append("")
    lines.append("Figure 4b series (envy-freeness, same order):")
    for m in sweep.mechanisms:
        lines.append(format_series(f"  {m:13s}", x, sweep.envy_freeness_series(m)))
    report("\n".join(lines))
