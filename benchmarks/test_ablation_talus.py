"""Ablation: Talus convexification on vs off.

The theory of Section 2 requires concave utilities; Section 4.1.1
convexifies cache behaviour with Talus.  This benchmark runs the same
market with raw (cliffy) utilities and with hulled ones, quantifying
what convexification buys: higher equilibrium efficiency and bounded
lambda-based reasoning (cliff-bound players otherwise look worthless to
the reassignment loop just below their cliff).
"""

import numpy as np

from repro.analysis import format_table
from repro.cmp import ChipModel, cmp_8core
from repro.core import EqualBudget, MaxEfficiency
from repro.workloads import paper_bbpc_bundle


def test_talus_convexification(benchmark, report):
    chip = ChipModel(cmp_8core(), paper_bbpc_bundle().apps)

    def run_both():
        out = {}
        for name, convexify in (("raw (no Talus)", False), ("Talus hull", True)):
            problem = chip.build_problem(convexify=convexify)
            eq = EqualBudget().allocate(problem)
            opt = MaxEfficiency().allocate(problem)
            out[name] = (eq, opt)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    raw_eq, raw_opt = results["raw (no Talus)"]
    hull_eq, hull_opt = results["Talus hull"]
    # The hull can only help: it dominates the raw utilities pointwise,
    # and Talus physically realizes every hull point.
    assert hull_eq.efficiency >= raw_eq.efficiency - 1e-6
    assert hull_opt.efficiency >= raw_opt.efficiency - 1e-6

    rows = []
    for name, (eq, opt) in results.items():
        rows.append(
            [name, eq.efficiency, eq.efficiency / opt.efficiency, eq.envy_freeness, eq.iterations]
        )
    report(
        format_table(
            ["utilities", "market eff", "eff/OPT", "EF", "iterations"],
            rows,
            title="Ablation: Talus convexification (8-core BBPC bundle)",
        )
    )
