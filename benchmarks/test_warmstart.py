"""Warm-start layer: cold-vs-warm equilibrium cost on a Fig-5-style run.

Two claims, measured by :func:`repro.analysis.run_warmstart_bench`:

* **Invariance** — on the static Figure-5 reference problem (the bbpc
  example bundle), a warm restart terminates in fewer rounds and lands
  on the cold equilibrium exactly (within the paper's 1% price
  tolerance).
* **Savings** — across simulated epochs, where a ``ColdVsWarmProbe``
  solves every epoch's market both cold and warm, the warm chain uses
  at least 30% fewer total equilibrium iterations.  Per-epoch
  divergence from the cold control is bounded by one epoch of genuine
  monitored-utility drift (the warm chain lags the moving equilibrium
  by at most one re-search), which for EqualBudget stays within ~1% of
  capacity; ReBudget's discrete budget cuts can amplify sub-tolerance
  equilibrium differences into different cut decisions, so only its
  iteration savings are asserted.

The measured numbers are archived to ``BENCH_warmstart.json`` at the
repository root.
"""

import json
from pathlib import Path

from conftest import FIG5_CATEGORIES, FIG5_EPOCHS_MS, FULL_SCALE
from repro.analysis import run_warmstart_bench
from repro.cmp import cmp_8core, cmp_64core
from repro.sim import SimulationConfig

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_warmstart.json"


def test_warmstart_cold_vs_warm(benchmark, report):
    data = benchmark.pedantic(
        run_warmstart_bench,
        kwargs={
            "config": cmp_64core() if FULL_SCALE else cmp_8core(),
            "categories": FIG5_CATEGORIES if FULL_SCALE else ("CPBN", "CCPP"),
            "sim_config": SimulationConfig(duration_ms=FIG5_EPOCHS_MS, seed=2016),
        },
        rounds=1,
        iterations=1,
    )
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")

    reference = data["reference"]
    assert reference["warm_iterations"] < reference["cold_iterations"]
    assert reference["max_price_divergence"] <= 0.01
    assert reference["max_divergence"] <= 0.01

    overall = data["overall"]
    assert overall["warm_iterations"] < overall["cold_iterations"]
    assert overall["iteration_savings"] >= 0.30
    equal_budget = data["mechanisms"]["EqualBudget"]
    assert equal_budget["iteration_savings"] >= 0.30
    assert equal_budget["max_divergence"] <= 0.03
    assert equal_budget["mean_price_divergence"] <= 0.02

    lines = [
        "warm-start bench (cold vs warm equilibrium cost)",
        f"reference {reference['bundle']}: cold {reference['cold_iterations']} it, "
        f"warm {reference['warm_iterations']} it, "
        f"price divergence {reference['max_price_divergence']:.4f}",
    ]
    for name, m in data["mechanisms"].items():
        lines.append(
            f"{name:12s} epochs {m['epochs']:3d}  "
            f"iterations {m['cold_iterations']:4d} -> {m['warm_iterations']:4d} "
            f"({m['iteration_savings']:.0%} saved)  "
            f"speedup x{m['wallclock_speedup']:.2f}  "
            f"alloc div max {m['max_divergence']:.4f} mean {m['mean_divergence']:.4f}"
        )
    lines.append(
        f"overall: {overall['cold_iterations']} -> {overall['warm_iterations']} "
        f"iterations ({overall['iteration_savings']:.0%} saved); "
        f"JSON archived to {BENCH_JSON.name}"
    )
    report("\n".join(lines))
