"""Figures 5a/5b: execution-driven (phase-2) validation.

One randomly selected bundle per category runs in the epoch simulator:
utilities are monitored online by UMON shadow tags, the market re-runs
every 1 ms, Futility Scaling slews the physical partitions, and DVFS
rides an RC thermal model.  Efficiency is *measured* from retired
instructions (weighted speedup), normalized to MaxEfficiency — exactly
what Figure 5 plots.

Shape assertions (Section 6.3): the simulated results are consistent
with the analytic sweep — ReBudget improves efficiency over EqualBudget
by sacrificing fairness, EqualBudget tops envy-freeness among market
mechanisms, and MaxEfficiency is the least fair.
"""

import numpy as np

from conftest import FIG5_CATEGORIES, FIG5_EPOCHS_MS
from repro.analysis import run_simulation_experiment, summarize_simulation
from repro.sim import SimulationConfig


def test_fig5_execution_driven(benchmark, report):
    scores = benchmark.pedantic(
        run_simulation_experiment,
        kwargs={
            "categories": FIG5_CATEGORIES,
            "sim_config": SimulationConfig(duration_ms=FIG5_EPOCHS_MS, seed=2016),
        },
        rounds=1,
        iterations=1,
    )

    # Aggregate over the simulated bundles (medians across categories).
    def med(metric, mech):
        return float(np.median([getattr(s, metric)[mech] for s in scores]))

    eff_eq = float(np.median([s.efficiency_vs_opt("EqualBudget") for s in scores]))
    eff_rb40 = float(np.median([s.efficiency_vs_opt("ReBudget-40") for s in scores]))
    assert eff_rb40 >= eff_eq - 0.02

    ef_eq = med("envy_freeness", "EqualBudget")
    ef_rb40 = med("envy_freeness", "ReBudget-40")
    ef_opt = med("envy_freeness", "MaxEfficiency")
    assert ef_eq >= ef_rb40 - 0.02
    assert ef_opt == min(
        ef_opt, ef_eq, ef_rb40
    )  # MaxEfficiency is the least fair

    report(summarize_simulation(scores))
