"""Ablation: 8-core vs 64-core (Section 6's "results are similar").

The paper runs both configurations and reports the results are similar,
so it only shows the 64-core ones.  This benchmark runs the same small
sweep at both scales and checks the mechanism orderings agree.
"""

import numpy as np

from repro.analysis import format_table, run_analytic_sweep
from repro.cmp import cmp_8core, cmp_64core


def test_scale_consistency(benchmark, report):
    def run_both():
        return {
            8: run_analytic_sweep(config=cmp_8core(), bundles_per_category=2),
            64: run_analytic_sweep(config=cmp_64core(), bundles_per_category=2),
        }

    sweeps = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for cores, sweep in sweeps.items():
        med = {m: float(np.median(sweep.efficiency_series(m))) for m in sweep.mechanisms}
        ef = {m: sweep.median_envy_freeness(m) for m in sweep.mechanisms}
        # The paper's orderings hold at both scales.
        assert med["ReBudget-40"] >= med["ReBudget-20"] - 1e-6 >= med["EqualBudget"] - 1e-6
        assert ef["EqualBudget"] >= ef["ReBudget-40"] - 1e-6
        assert sweep.theorem2_violations() == []
        for m in sweep.mechanisms:
            rows.append([cores, m, med[m], ef[m]])

    report(
        format_table(
            ["cores", "mechanism", "median eff/OPT", "median EF"],
            rows,
            title="Scale ablation: the 8- and 64-core configurations agree "
            "(the paper's justification for showing only 64-core results)",
        )
    )
