"""Section 6.4: convergence of the bidding-pricing process.

Paper findings to reproduce in shape: EqualBudget and Balanced converge
within 3 pricing iterations for ~95% of bundles; ReBudget takes a few
more (it re-converges after every budget adjustment); a 30-iteration
fail-safe bounds the worst case.
"""

from conftest import FIG4_BUNDLES
from repro.analysis import format_table, run_analytic_sweep
from repro.cmp import cmp_64core
from repro.core import BalancedBudget, EqualBudget, ReBudgetMechanism


def _market_mechanisms():
    # MaxEfficiency has no pricing loop; omit it to keep this bench lean.
    return [
        EqualBudget(),
        BalancedBudget(),
        ReBudgetMechanism(step=20),
        ReBudgetMechanism(step=40),
    ]


def test_convergence_iterations(benchmark, report):
    sweep = benchmark.pedantic(
        run_analytic_sweep,
        kwargs={
            "config": cmp_64core(),
            "bundles_per_category": max(FIG4_BUNDLES, 2),
            "mechanisms_factory": _market_mechanisms,
        },
        rounds=1,
        iterations=1,
    )

    eq = sweep.convergence_stats("EqualBudget")
    bal = sweep.convergence_stats("Balanced")
    rb20 = sweep.convergence_stats("ReBudget-20")
    rb40 = sweep.convergence_stats("ReBudget-40")

    # Paper: <= 3 iterations for ~95% of bundles (EqualBudget/Balanced);
    # Feldman et al. report <= 5 for dynamic markets.  Our substrate
    # lands in the same ballpark: nearly all bundles within 5-6 rounds.
    assert eq["fraction_within_5"] >= 0.8
    assert bal["fraction_within_5"] >= 0.8
    assert eq["converged_fraction"] >= 0.95
    # ReBudget re-converges after each cut: more total iterations.
    assert rb40["mean_iterations"] >= eq["mean_iterations"]
    # Fail-safe: a single equilibrium search never exceeds 30 rounds.
    assert eq["max_iterations"] <= 30

    rows = []
    for name, stats in (
        ("EqualBudget", eq),
        ("Balanced", bal),
        ("ReBudget-20 (total)", rb20),
        ("ReBudget-40 (total)", rb40),
    ):
        rows.append(
            [
                name,
                stats["mean_iterations"],
                stats["p95_iterations"],
                stats["max_iterations"],
                stats["fraction_within_3"],
                stats["converged_fraction"],
            ]
        )
    report(
        format_table(
            [
                "mechanism",
                "mean iters",
                "p95 iters",
                "max iters",
                "frac <=3",
                "converged",
            ],
            rows,
            title="Section 6.4: pricing-iteration statistics "
            f"({len(sweep.scores)} bundles, 64 cores)",
        )
    )
