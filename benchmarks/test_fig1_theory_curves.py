"""Figure 1: the Theorem 1 and Theorem 2 bound curves.

Left panel: Price-of-Anarchy lower bound vs MUR.  Right panel:
envy-freeness lower bound vs MBR.  These are closed forms; the benchmark
times their evaluation and prints the plotted series.
"""

from repro.analysis import fig1_data, format_series


def test_fig1_bound_curves(benchmark, report):
    data = benchmark(fig1_data, 101)

    assert data["poa_bound"][-1] == 0.75
    assert abs(data["ef_bound"][-1] - 0.828) < 5e-4

    report(
        "Figure 1 (left): PoA lower bound vs MUR (Theorem 1)\n"
        + format_series("PoA", data["mur"], data["poa_bound"], max_points=21)
        + "\n\nFigure 1 (right): envy-freeness lower bound vs MBR (Theorem 2)\n"
        + format_series("EF", data["mbr"], data["ef_bound"], max_points=21)
    )
