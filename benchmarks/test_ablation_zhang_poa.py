"""Extension: Zhang's Lemma 2 — equal-budget PoA degrades like 1/sqrt(N).

The motivation for ReBudget: an equal-budget market's worst-case
efficiency falls as Theta(1/sqrt(N)).  We probe this on adversarial
synthetic markets built from Zhang's tight construction shape: one
"whale" with a steep linear utility on a contested resource versus N-1
players with weak utilities; the whale's value concentrates where the
proportional market refuses to concentrate allocation.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (
    AllocationProblem,
    EqualBudget,
    MaxEfficiency,
    market_utility_range,
    poa_lower_bound,
    zhang_poa_order,
)
from repro.utility import LinearUtility, PowerUtility


def _adversarial_problem(n):
    """One high-value linear player against n-1 sqrt-utility grazers."""
    utilities = [LinearUtility([float(n), 0.05])]
    utilities += [PowerUtility([1.0, 1.0], [0.5, 0.5]) for _ in range(n - 1)]
    return AllocationProblem(
        utilities=utilities,
        capacities=np.array([1.0, 1.0]),
        resource_names=["contested", "side"],
        player_names=[f"p{i}" for i in range(n)],
        quanta=np.array([1.0 / 256, 1.0 / 256]),
    )


def test_equal_budget_poa_scaling(benchmark, report):
    def sweep():
        rows = []
        for n in (4, 8, 16, 32, 64):
            problem = _adversarial_problem(n)
            eq = EqualBudget().allocate(problem)
            opt = MaxEfficiency().allocate(problem)
            realized = eq.efficiency / opt.efficiency
            rows.append(
                (
                    n,
                    realized,
                    zhang_poa_order(n),
                    eq.mur,
                    poa_lower_bound(eq.mur),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    realized = [r[1] for r in rows]
    # Efficiency degrades with N on the adversarial family ...
    assert realized[-1] < realized[0]
    # ... and every realized ratio respects the Theorem 1 bound.
    for n, ratio, _, mur, bound in rows:
        assert ratio >= bound - 0.02, (n, ratio, bound)

    report(
        format_table(
            ["N", "realized eff/OPT", "1/sqrt(N)", "MUR", "Theorem-1 bound"],
            [list(r) for r in rows],
            title="Zhang Lemma 2 probe: equal-budget efficiency vs market size",
        )
    )
