"""Extension: the Elasticities-Proportional baseline (Zahedi & Lee).

The paper argues EP underperforms when application utilities don't
curve-fit well to a Cobb-Douglas function (Section 1) — cache cliffs
being the canonical offender.  EP as proposed fits the application's
*actual* (raw, possibly cliffy) behaviour; the market gets to lean on
Talus.  This benchmark therefore scores three settings per bundle:

* EP fitted on raw utilities (the mechanism as proposed),
* EP fitted on Talus-convexified utilities (a charitable variant),
* the EqualBudget market on convexified utilities (the paper's system),

all evaluated against the convexified optimum.
"""

import numpy as np

from repro.analysis import format_table
from repro.cmp import ChipModel, cmp_8core
from repro.core import ElasticitiesProportional, EqualBudget, MaxEfficiency
from repro.workloads import generate_bundles


def test_ep_vs_market(benchmark, report):
    categories = ("CPBN", "CPBB", "BBPN")

    def sweep():
        rows = []
        for category in categories:
            bundle = generate_bundles(category, 8, count=1, seed=5)[0]
            chip = ChipModel(cmp_8core(), bundle.apps)
            hulled = chip.build_problem(convexify=True)
            raw = chip.build_problem(convexify=False)
            opt = MaxEfficiency().allocate(hulled).efficiency

            ep_raw_alloc = ElasticitiesProportional().allocate(raw).allocations
            # Score the raw-fitted EP allocation on what the hardware
            # (with Talus) actually delivers.
            ep_raw_eff = float(
                sum(
                    u.value(ep_raw_alloc[i])
                    for i, u in enumerate(hulled.utilities)
                )
            )
            ep_hull = ElasticitiesProportional().allocate(hulled)
            market = EqualBudget().allocate(hulled)
            rows.append(
                (
                    bundle.name,
                    ep_raw_eff / opt,
                    ep_hull.efficiency / opt,
                    market.efficiency / opt,
                    ep_hull.envy_freeness,
                    market.envy_freeness,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # The robust observation in our substrate (EXPERIMENTS.md discusses
    # the relation to the paper's EP critique): EP lacks the market's
    # fairness behaviour — the EqualBudget market is near envy-free on
    # every bundle while EP's envy-freeness drops substantially — and
    # EP's efficiency carries no guarantee (no MUR/PoA reasoning
    # applies to it).
    for _, _, _, _, ep_ef, market_ef in rows:
        assert market_ef > ep_ef + 0.05
    mean_market = float(np.mean([r[3] for r in rows]))
    assert mean_market >= 0.9  # the market stays close to OPT throughout

    report(
        format_table(
            ["bundle", "EP(raw fit)", "EP(hull fit)", "market", "EP EF", "market EF"],
            [list(r) for r in rows],
            title="Extension: Elasticities-Proportional vs EqualBudget "
            "(eff/OPT; EP as proposed fits raw utilities)",
        )
    )
