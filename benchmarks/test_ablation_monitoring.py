"""Ablation: what online monitoring noise costs (phase 1 vs phase 2).

The paper's two evaluation phases differ only in where utilities come
from: perfectly modeled (phase 1) vs UMON shadow-tag estimates (phase
2).  This benchmark runs the execution-driven simulator both ways on
the same bundle and reports the efficiency delta attributable to
monitoring noise.
"""

from repro.analysis import format_table
from repro.cmp import ChipModel, cmp_8core
from repro.core import EqualBudget, ReBudgetMechanism
from repro.sim import ExecutionDrivenSimulator, SimulationConfig
from repro.workloads import generate_bundles


def test_monitoring_noise_cost(benchmark, report):
    bundle = generate_bundles("BBPN", 8, count=1, seed=7)[0]
    chip = ChipModel(cmp_8core(), bundle.apps)

    def run_grid():
        out = {}
        for mech_factory, mech_name in (
            (EqualBudget, "EqualBudget"),
            (lambda: ReBudgetMechanism(step=40), "ReBudget-40"),
        ):
            for monitors in (False, True):
                cfg = SimulationConfig(duration_ms=8.0, use_monitors=monitors, seed=13)
                result = ExecutionDrivenSimulator(chip, mech_factory(), cfg).run()
                out[(mech_name, monitors)] = result
        return out

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for (mech, monitors), result in results.items():
        rows.append(
            [
                mech,
                "UMON monitors" if monitors else "true utilities",
                result.efficiency,
                result.envy_freeness,
                result.mean_market_iterations,
            ]
        )
        # Monitoring noise costs percent-level efficiency, not more.
        true_eff = results[(mech, False)].efficiency
        assert result.efficiency >= 0.85 * true_eff

    report(
        format_table(
            ["mechanism", "utility source", "measured eff", "EF", "mean iters"],
            rows,
            title="Ablation: online monitoring noise (8-core BBPN bundle)",
        )
    )
