"""Ablation: why the market re-runs every 1 ms (Section 4.3).

The paper triggers budget re-assignment every millisecond "to handle
the changing resource demands due to context switches and application
phase changes".  This benchmark injects context switches into the
execution-driven simulator and compares re-allocation every epoch
against a static allocation computed once at the start: the static
allocation keeps feeding cache to a departed application.
"""

import numpy as np

from repro.analysis import format_table
from repro.cmp import ChipModel, cmp_8core
from repro.cmp.spec_suite import app_by_name
from repro.core import EqualBudget
from repro.sim import ContextSwitch, ExecutionDrivenSimulator, SimulationConfig
from repro.workloads import paper_bbpc_bundle


def test_reallocation_vs_static_under_context_switches(benchmark, report):
    chip = ChipModel(cmp_8core(), paper_bbpc_bundle().apps)
    # Both cache-hungry mcf cores are replaced by compute-bound apps
    # one third into the run.
    switches = (
        ContextSwitch(5.0, 4, app_by_name("povray")),
        ContextSwitch(5.0, 5, app_by_name("namd")),
    )

    def run_both():
        out = {}
        for label, period in (("re-allocate every 1 ms", 1), ("allocate once", 10_000)):
            cfg = SimulationConfig(
                duration_ms=15.0,
                seed=21,
                context_switches=switches,
                reallocation_period_epochs=period,
            )
            out[label] = ExecutionDrivenSimulator(chip, EqualBudget(), cfg).run()
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    dynamic = results["re-allocate every 1 ms"]
    static = results["allocate once"]
    # The paper's premise: periodic re-allocation wins once demands move.
    assert dynamic.efficiency > static.efficiency

    rows = [
        [label, r.efficiency, r.envy_freeness, r.mean_market_iterations]
        for label, r in results.items()
    ]
    report(
        format_table(
            ["policy", "measured eff", "EF", "mean market iters"],
            rows,
            title="Ablation: 1 ms re-allocation vs static allocation under "
            "context switches (two mcf cores replaced at t=5 ms)",
        )
    )
