"""Ablation: the paper's S-halving hill climb vs an exact best response.

Section 4.1.2's hill climb is deliberately cheap (exponential back-off,
5% lambda tolerance, 1% step floor).  This benchmark quantifies what
that costs: equilibrium efficiency with the hill climb vs a projected-
gradient exact bidder, and the speed difference.
"""

import time

from repro.cmp import ChipModel, cmp_8core
from repro.core import EqualBudget, ExactBidder, HillClimbBidder, PriceTakingBidder
from repro.workloads import generate_bundles
from repro.analysis import format_table


def _problem():
    bundle = generate_bundles("CPBN", 8, count=1, seed=9)[0]
    return ChipModel(cmp_8core(), bundle.apps).build_problem()


def test_hill_climb_vs_exact_bidder(benchmark, report):
    problem = _problem()

    def run_all():
        out = {}
        for name, bidder in (
            ("hill-climb (paper)", HillClimbBidder()),
            ("exact best response", ExactBidder()),
            ("price-taking", PriceTakingBidder()),
        ):
            t0 = time.perf_counter()
            result = EqualBudget(bidder=bidder).allocate(problem)
            out[name] = (result, time.perf_counter() - t0)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    hill, _ = results["hill-climb (paper)"]
    exact, _ = results["exact best response"]
    taking, _ = results["price-taking"]
    # The cheap climb must stay within a few percent of the exact
    # best-response equilibrium; price-taking lands close too at this
    # market size (own-price impact shrinks with N).
    assert hill.efficiency >= 0.95 * exact.efficiency
    assert taking.efficiency >= 0.90 * exact.efficiency

    report(
        format_table(
            ["bidder", "efficiency", "EF", "iterations", "seconds"],
            [
                [name, r.efficiency, r.envy_freeness, r.iterations, t]
                for name, (r, t) in results.items()
            ],
            title="Ablation: bidding strategy (8-core CPBN bundle)",
        )
    )
