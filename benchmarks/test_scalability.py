"""Scalability: the market's cost as the chip grows.

"Scalable resource allocation" is one of the paper's keywords: because
each player optimizes locally and the market only aggregates bids, the
pricing-iteration count should stay flat as cores are added, and the
per-iteration cost should grow linearly.  This benchmark measures both
across 8..64 cores.
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.cmp import ChipModel, CMPConfig, MB, cmp_8core
from repro.core import EqualBudget
from repro.workloads import generate_bundle


def _config(num_cores: int) -> CMPConfig:
    base = cmp_8core()
    return CMPConfig(
        num_cores=num_cores,
        power_budget_watts=10.0 * num_cores,
        l2_capacity_bytes=num_cores * 512 * 1024,
        l2_associativity=base.l2_associativity,
        memory_channels=max(2, num_cores // 4),
    )


def test_market_scalability(benchmark, report):
    def sweep():
        rows = []
        for n in (8, 16, 32, 64):
            rng = np.random.default_rng(11)
            bundle = generate_bundle("CPBN", n, rng)
            chip = ChipModel(_config(n), bundle.apps)
            problem = chip.build_problem()
            t0 = time.perf_counter()
            result = EqualBudget().allocate(problem)
            elapsed = time.perf_counter() - t0
            rows.append((n, result.iterations, elapsed, elapsed / n))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    iterations = [r[1] for r in rows]
    per_core = [r[3] for r in rows]
    # Flat iteration count: the distributed market does not need more
    # pricing rounds on bigger chips.
    assert max(iterations) <= 2 * min(iterations) + 2
    # Near-linear total cost: per-core time stays within a small factor.
    assert max(per_core) <= 4.0 * min(per_core)

    report(
        format_table(
            ["cores", "pricing iterations", "wall time (s)", "time per core (s)"],
            [list(r) for r in rows],
            title="Scalability: EqualBudget equilibrium cost vs chip size "
            "(iterations stay flat; cost grows ~linearly)",
        )
    )
