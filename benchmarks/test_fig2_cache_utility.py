"""Figure 2: normalized cache utility of *mcf* and *vpr* at max frequency.

The paper's observations we must reproduce: *vpr* is smoothly concave;
*mcf* is flat (~0.2) until its 1.5 MB working set fits at 12 regions,
then jumps to 1.0; Talus's convex hull removes the cliff.
"""

from repro.analysis import fig2_data, format_series


def test_fig2_mcf_vpr_utility(benchmark, report):
    data = benchmark(fig2_data)

    mcf, vpr = data["mcf"], data["vpr"]
    # Paper anchors (Figure 2).
    assert mcf["raw"][9] < 0.3          # flat through 10 regions
    assert mcf["raw"][11] < 0.5         # the cliff is after ~12 regions
    assert abs(mcf["raw"][15] - 1.0) < 0.01
    assert all(b >= a - 1e-9 for a, b in zip(vpr["raw"], vpr["raw"][1:]))
    assert all(h >= r - 1e-9 for h, r in zip(mcf["hull"], mcf["raw"]))

    lines = ["Figure 2: normalized utility vs cache regions (max frequency)"]
    for name in ("mcf", "vpr"):
        lines.append(
            format_series(f"{name} raw ", data[name]["regions"], data[name]["raw"], 16)
        )
        lines.append(
            format_series(f"{name} hull", data[name]["regions"], data[name]["hull"], 16)
        )
    report("\n".join(lines))
