"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures and
prints its rows/series straight to the terminal (bypassing capture), so
``pytest benchmarks/ --benchmark-only`` produces both the timing table
and the figure data.  The same text is archived under
``benchmarks/_results/``.

Scale knobs
-----------
The full paper-scale sweep (240 bundles, 64 cores) takes the better part
of an hour; the default runs a smaller but structurally identical subset
(the bundle lists are prefix-stable, so the default is a strict subset
of the full run).  Set ``REPRO_FULL=1`` for the paper-scale version.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "_results"

#: REPRO_FULL=1 switches every benchmark to the paper-scale setup.
FULL_SCALE = os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")

#: Figure 4 sweep: bundles per category (paper: 40).
FIG4_BUNDLES = 40 if FULL_SCALE else 3

#: Figure 5 simulation: categories simulated and epochs per run.
FIG5_CATEGORIES = (
    ("CPBN", "CCPP", "CPBB", "BBNN", "BBPN", "BBCN")
    if FULL_SCALE
    else ("CPBN", "BBPN", "CCPP")
)
FIG5_EPOCHS_MS = 15.0 if FULL_SCALE else 8.0


@pytest.fixture
def report(capsys, request):
    """Print text through capture AND archive it per benchmark."""
    chunks = []

    def emit(text: str) -> None:
        chunks.append(text)
        with capsys.disabled():
            print(f"\n{text}")

    yield emit

    if chunks:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{request.node.name}.txt"
        path.write_text("\n".join(chunks) + "\n")
