"""Hot-loop vectorization: scalar vs. lockstep equilibrium solves.

Two claims, measured by :func:`repro.analysis.run_hotloop_bench` on
Fig-4-sized problems (8 players x 2 resources; one chip per workload
category plus the paper's bbpc reference mix):

* **Equivalence** — the lockstep :class:`VectorHillClimbBidder` mirrors
  the scalar hill climb's arithmetic operation for operation, so the
  bid matrices come out bitwise identical, allocations agree within
  ``ALLOCATION_TOLERANCE`` of capacity, and iteration counts /
  price-convergence flags match exactly.
* **Savings** — the batched path makes at least 3x fewer Python-level
  utility evaluations (``EquilibriumResult.eval_counts``) and is faster
  on wall-clock, both per-equilibrium and across a multi-round ReBudget
  run on the dominant cell.

The measured numbers are archived to ``BENCH_hotloop.json`` at the
repository root.
"""

import json
from pathlib import Path

from conftest import FULL_SCALE
from repro.analysis import run_hotloop_bench
from repro.cmp import cmp_8core, cmp_64core

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_hotloop.json"


def test_hotloop_scalar_vs_vector(benchmark, report):
    data = benchmark.pedantic(
        run_hotloop_bench,
        kwargs={
            "config": cmp_64core() if FULL_SCALE else cmp_8core(),
            "repeats": 5,
        },
        rounds=1,
        iterations=1,
    )
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")

    overall = data["overall"]
    tolerance = data["config"]["allocation_tolerance"]
    assert overall["all_flags_match"]
    assert overall["max_allocation_divergence"] <= tolerance
    assert overall["call_reduction"] >= 3.0
    assert overall["wallclock_speedup"] > 1.0
    for name, cell in data["problems"].items():
        assert cell["flags_match"], name
        assert cell["max_allocation_divergence"] <= tolerance, name
        assert cell["call_reduction"] >= 3.0, name
    assert data["rebudget"]["budgets_match"]
    assert data["rebudget"]["wallclock_speedup"] > 1.0

    lines = [
        "Hot-loop vectorization (scalar vs. lockstep bidder)",
        f"  utility calls: {overall['scalar_utility_calls']} -> "
        f"{overall['vector_utility_calls']} "
        f"({overall['call_reduction']:.1f}x fewer)",
        f"  wall-clock:    {overall['scalar_wall_ms']:.1f} ms -> "
        f"{overall['vector_wall_ms']:.1f} ms "
        f"(x{overall['wallclock_speedup']:.2f})",
        f"  max allocation divergence: {overall['max_allocation_divergence']:.2e}",
    ]
    for name, cell in data["problems"].items():
        lines.append(
            f"  {name:6s} calls {cell['scalar']['utility_calls']:5d} -> "
            f"{cell['vector']['utility_calls']:4d} "
            f"({cell['call_reduction']:5.1f}x), wall x{cell['wallclock_speedup']:.2f}, "
            f"bitwise={cell['bids_bitwise_equal']}"
        )
    lines.append(
        f"  ReBudget-40 ({data['rebudget']['vector']['rounds']} rounds): "
        f"x{data['rebudget']['wallclock_speedup']:.2f} wall-clock"
    )
    report("\n".join(lines))
