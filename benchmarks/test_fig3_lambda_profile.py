"""Figure 3: per-application marginal utility (lambda_i) profiles.

The paper's Figure 3 shows the 8-core BBPC bundle's normalized lambdas
under EqualBudget, ReBudget-20 and ReBudget-40, with the MUR value per
mechanism.  We print the same table for the paper's exact bundle.

Substrate note (see EXPERIMENTS.md): in our synthetic substrate this
bundle equilibrates at MUR above the 0.5 reassignment threshold, so
ReBudget leaves budgets equal.  The reassignment dynamics the paper's
Figure 3 illustrates appear on bundles containing N-class applications;
we therefore also print the same profile for a CPBN bundle, where the
cuts, the MUR increase and the efficiency gain are all visible.
"""

from repro.analysis import fig3_data, format_table
from repro.workloads import generate_bundles


def _profile_table(data, title):
    mechanisms = list(data["lambdas"].keys())
    headers = ["app"] + mechanisms
    rows = []
    for app in data["apps"]:
        rows.append([app] + [data["lambdas"][m][app] for m in mechanisms])
    rows.append(["MUR"] + [data["summary"][m]["mur"] for m in mechanisms])
    rows.append(
        ["eff/OPT"] + [data["summary"][m]["efficiency_vs_opt"] for m in mechanisms]
    )
    rows.append(
        ["min budget"]
        + [min(data["summary"][m]["budgets"].values()) for m in mechanisms]
    )
    return format_table(headers, rows, title=title)


def test_fig3_bbpc_lambda_profile(benchmark, report):
    data = benchmark(fig3_data)
    for summary in data["summary"].values():
        assert 0.0 < summary["efficiency_vs_opt"] <= 1.0 + 1e-6
    report(
        _profile_table(
            data, "Figure 3: normalized lambda_i, 8-core BBPC bundle (paper's)"
        )
    )


def test_fig3_cpbn_lambda_profile(benchmark, report):
    bundle = generate_bundles("CPBN", 8, count=1, seed=9)[0]
    data = benchmark(fig3_data, bundle=bundle)

    # On an N-bearing bundle the reassignment fires: budgets spread and
    # MUR strictly improves over EqualBudget.
    eq_mur = data["summary"]["EqualBudget"]["mur"]
    rb40 = data["summary"]["ReBudget-40"]
    assert min(rb40["budgets"].values()) < 100.0
    assert rb40["mur"] >= eq_mur - 1e-9
    assert rb40["efficiency_vs_opt"] >= data["summary"]["EqualBudget"][
        "efficiency_vs_opt"
    ] - 1e-9

    report(
        _profile_table(
            data,
            f"Figure 3 (companion): normalized lambda_i, 8-core {bundle.name} "
            "(reassignment dynamics visible)",
        )
    )
