"""Substrate validation: the numbers behind DESIGN.md's substitutions.

UMON estimation error across the suite, Futility-Scaling convergence
epochs, and the DRAM contention curve.  These are the quantities that
justify replacing the paper's hardware monitors and SESC cache with our
models.
"""

import numpy as np

from repro.analysis import format_table
from repro.analysis.validation import (
    dram_contention_study,
    futility_convergence_study,
    umon_error_study,
)


def test_umon_estimation_error(benchmark, report):
    rows = benchmark.pedantic(umon_error_study, rounds=1, iterations=1)

    mean_err = float(np.mean([r.mean_abs_error for r in rows]))
    worst = max(rows, key=lambda r: r.max_abs_error)
    # Shadow tags at 1-in-32 sampling track the true curves closely.
    assert mean_err < 0.03
    assert worst.max_abs_error < 0.15

    table = [
        [r.app, r.mean_abs_error, r.max_abs_error, r.sampled_accesses]
        for r in sorted(rows, key=lambda r: -r.max_abs_error)[:8]
    ]
    report(
        format_table(
            ["app", "mean |err|", "max |err|", "sampled accesses"],
            table,
            title=f"UMON shadow-tag miss-curve error (suite mean |err| = {mean_err:.4f}; "
            "8 worst applications shown)",
        )
    )


def test_futility_convergence(benchmark, report):
    epochs = benchmark.pedantic(futility_convergence_study, rounds=1, iterations=1)

    # Partitions settle within a handful of 1 ms epochs — fast relative
    # to the paper's re-allocation period.
    assert float(np.median(epochs)) <= 30
    assert max(epochs) < 200

    report(
        format_table(
            ["median epochs", "p90 epochs", "max epochs"],
            [[float(np.median(epochs)), float(np.percentile(epochs, 90)), max(epochs)]],
            title="Futility Scaling: epochs to reach 5% occupancy error "
            "(20 random target vectors)",
        )
    )


def test_dram_contention_curve(benchmark, report):
    rows = benchmark.pedantic(dram_contention_study, rounds=1, iterations=1)

    lats = [lat for _, lat in rows]
    assert all(a <= b + 1e-9 for a, b in zip(lats, lats[1:]))
    assert lats[-1] > lats[0] * 2  # saturation hurts

    report(
        format_table(
            ["utilization", "latency (ns)"],
            [[u, lat] for u, lat in rows],
            title="DDR3-1600 contention model (2 channels)",
        )
    )
