"""Ablation: Jacobi (simultaneous) vs Gauss-Seidel (sequential) updates.

The paper's market is distributed: all players best-respond against the
same broadcast prices (Jacobi).  A sequential sweep (Gauss-Seidel) is
the centralized alternative — players see earlier players' new bids.
This benchmark confirms the two converge to the same equilibria on CMP
problems (so the distributed semantics cost nothing), and compares
their iteration counts.
"""

from repro.analysis import format_table
from repro.cmp import ChipModel, cmp_8core
from repro.core import find_equilibrium
from repro.workloads import generate_bundles


def test_jacobi_vs_gauss_seidel(benchmark, report):
    bundles = [
        generate_bundles(cat, 8, count=1, seed=13)[0]
        for cat in ("CPBN", "BBPN", "CCPP")
    ]
    problems = [
        ChipModel(cmp_8core(), b.apps).build_problem() for b in bundles
    ]

    def run_all():
        rows = []
        for bundle, problem in zip(bundles, problems):
            market_j = problem.build_market([100.0] * 8)
            eq_j = find_equilibrium(market_j, update="jacobi")
            market_g = problem.build_market([100.0] * 8)
            eq_g = find_equilibrium(market_g, update="gauss-seidel")
            rows.append(
                (
                    bundle.name,
                    eq_j.efficiency,
                    eq_j.iterations,
                    eq_g.efficiency,
                    eq_g.iterations,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for name, eff_j, _, eff_g, _ in rows:
        # Same equilibrium welfare (within the 1% price tolerance).
        assert abs(eff_j - eff_g) / max(eff_j, eff_g) < 0.05, name

    report(
        format_table(
            ["bundle", "Jacobi eff", "Jacobi iters", "G-S eff", "G-S iters"],
            [list(r) for r in rows],
            title="Ablation: distributed (Jacobi) vs sequential (Gauss-Seidel) "
            "bid updates — same equilibria",
        )
    )
