"""Ablation: ReBudget's internal knobs.

Section 4.2 fixes two constants: players are cut when their lambda is
below 50% of the market maximum, and the step backs off by 1/2 each
round.  This benchmark sweeps both and reports the efficiency/fairness
landscape, showing the paper's choices sit on the useful frontier.
"""

from repro.analysis import format_table
from repro.cmp import ChipModel, cmp_8core
from repro.core import MaxEfficiency, ReBudgetMechanism
from repro.core.rebudget import ReBudgetConfig, run_rebudget
from repro.workloads import generate_bundles


def test_rebudget_threshold_and_backoff(benchmark, report):
    bundle = generate_bundles("CPBN", 8, count=1, seed=9)[0]
    chip = ChipModel(cmp_8core(), bundle.apps)
    problem = chip.build_problem()
    opt = MaxEfficiency().allocate(problem).efficiency

    def sweep():
        rows = []
        for threshold in (0.3, 0.5, 0.7):
            for backoff in (0.5, 0.75):
                mech = ReBudgetMechanism(step=40)
                mech.config = ReBudgetConfig(
                    step=40.0, lambda_threshold=threshold, backoff=backoff
                )
                result = mech.allocate(problem)
                rows.append(
                    (
                        threshold,
                        backoff,
                        result.efficiency / opt,
                        result.envy_freeness,
                        result.mbr,
                        result.iterations,
                    )
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    by_knobs = {(t, b): (eff, ef) for t, b, eff, ef, _, _ in rows}
    # A more aggressive threshold cannot reduce efficiency on this
    # bundle (it cuts strictly more players).
    assert by_knobs[(0.7, 0.5)][0] >= by_knobs[(0.3, 0.5)][0] - 0.02

    report(
        format_table(
            ["lambda threshold", "backoff", "eff/OPT", "EF", "MBR", "total iters"],
            [list(r) for r in rows],
            title="Ablation: ReBudget knobs (paper uses threshold=0.5, backoff=0.5)",
        )
    )
