"""Section 5's workload table: the 24-application suite, characterized.

Prints the per-application table (class, CPI, APKI, footprint,
sensitivities, standalone performance, peak power) and asserts the
suite's structural requirements: 24 applications, six per class, and
profiling-derived classes matching the construction.
"""

from collections import Counter

from repro.analysis import characterize_suite, format_table


def test_suite_characterization(benchmark, report):
    rows_data = benchmark.pedantic(characterize_suite, rounds=1, iterations=1)

    counts = Counter(r.cls for r in rows_data)
    assert len(rows_data) == 24
    assert counts == {"C": 6, "P": 6, "B": 6, "N": 6}

    rows = [
        [
            r.name,
            r.suite,
            r.cls,
            r.cpi_exe,
            r.apki,
            r.footprint_mb,
            r.cache_sensitivity,
            r.power_sensitivity,
            r.alone_gips,
            r.peak_power_w,
        ]
        for r in sorted(rows_data, key=lambda r: (r.cls, r.name))
    ]
    report(
        format_table(
            [
                "app",
                "suite",
                "class",
                "CPI",
                "APKI",
                "footprint MB",
                "cache sens",
                "power sens",
                "alone GIPS",
                "peak W",
            ],
            rows,
            title="Section 5: the 24-application suite (classes derived by profiling)",
        )
    )
