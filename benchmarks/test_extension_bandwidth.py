"""Extension: the market with three resources (cache, power, bandwidth).

Section 4.1 states the framework generalizes to any resource with a
concave, continuous, non-decreasing utility; the introduction names pin
bandwidth alongside cache and power.  This benchmark adds guaranteed
DRAM bandwidth as a third market resource (an M/M/1-style latency curve
makes performance concave in it) and shows the efficiency/fairness knob
behaves identically with M=3.

The greedy MaxEfficiency reference is weaker under three-way
complementarity (see `repro.core.optimum`), so the assertions here are
about the *market's* knob ordering, not about OPT dominance.
"""

from repro.analysis import format_table
from repro.cmp import ChipModel, cmp_8core
from repro.cmp.bandwidth import build_bandwidth_problem
from repro.core import EqualBudget, EqualShare, MaxEfficiency, ReBudgetMechanism
from repro.workloads import generate_bundles


def test_three_resource_market(benchmark, report):
    bundle = generate_bundles("CPBN", 8, count=1, seed=9)[0]
    chip = ChipModel(cmp_8core(), bundle.apps)
    problem = build_bandwidth_problem(chip)

    def run_all():
        out = {}
        for mech in (
            EqualShare(),
            EqualBudget(),
            ReBudgetMechanism(step=20),
            ReBudgetMechanism(step=40),
            MaxEfficiency(),
        ):
            out[mech.name] = mech.allocate(problem)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The knob survives the third resource.
    assert (
        results["ReBudget-40"].efficiency
        >= results["ReBudget-20"].efficiency - 1e-6
        >= results["EqualBudget"].efficiency - 1e-6
    )
    assert (
        results["EqualBudget"].envy_freeness
        >= results["ReBudget-20"].envy_freeness - 1e-6
        >= results["ReBudget-40"].envy_freeness - 1e-6
    )
    assert results["EqualBudget"].converged

    rows = [
        [name, r.efficiency, r.envy_freeness, r.iterations]
        for name, r in results.items()
    ]
    report(
        format_table(
            ["mechanism", "efficiency", "EF", "iterations"],
            rows,
            title="Extension: 3-resource market (cache + power + DRAM bandwidth); "
            "the greedy MaxEfficiency row is a weak reference here",
        )
    )
