"""Application classification by profiling (Section 5).

The paper classifies its 24 applications into *Cache-sensitive* (C),
*Power-sensitive* (P), *Both-sensitive* (B) and *None* (N) based on
profiling.  We reproduce that: each application's utility is profiled on
the paper's 90-point grid ({1-6, 8, 10, 12, 16} cache regions x
{0.8, 1.2, ..., 4.0} GHz), and two sensitivities are extracted:

* **cache sensitivity** — utility gained by going from the minimum to
  the maximum cache at a mid-range frequency;
* **power sensitivity** — utility gained by going from minimum to
  maximum frequency at a modest cache allocation (a quarter of the
  monitorable range; memory-bound applications show little gain there).

Thresholds on the two sensitivities yield the four classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..cmp.application import AppProfile
from ..cmp.config import CMPConfig, cmp_8core
from ..cmp.core_model import CoreModel

__all__ = [
    "PROFILE_CACHE_REGIONS",
    "PROFILE_FREQUENCIES_GHZ",
    "CACHE_SENSITIVE_THRESHOLD",
    "POWER_SENSITIVE_THRESHOLD",
    "ApplicationProfileTable",
    "profile_application",
    "Sensitivities",
    "sensitivities",
    "classify",
    "classify_suite",
]

#: The paper's profiling grid: 10 cache allocations x 9 frequencies.
PROFILE_CACHE_REGIONS = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16)
PROFILE_FREQUENCIES_GHZ = (0.8, 1.2, 1.6, 2.0, 2.4, 2.8, 3.2, 3.6, 4.0)

#: Classification thresholds (fractions of standalone utility).
CACHE_SENSITIVE_THRESHOLD = 0.25
POWER_SENSITIVE_THRESHOLD = 0.38


@dataclass
class ApplicationProfileTable:
    """Utility and power sampled on the 90-point profiling grid."""

    app_name: str
    cache_regions: np.ndarray       # (10,)
    frequencies_ghz: np.ndarray     # (9,)
    utility: np.ndarray             # (10, 9) normalized performance
    power_watts: np.ndarray         # (10, 9) core power at each point


def profile_application(app: AppProfile, config: CMPConfig | None = None) -> ApplicationProfileTable:
    """Sample an application on the paper's 90-point grid."""
    config = config or cmp_8core()
    core = CoreModel(app, config)
    regions = np.array(PROFILE_CACHE_REGIONS, dtype=float)
    freqs = np.array(PROFILE_FREQUENCIES_GHZ, dtype=float)
    utility = np.empty((regions.size, freqs.size))
    power = np.empty_like(utility)
    for i, r in enumerate(regions):
        cache = r * config.cache_region_bytes
        for j, f in enumerate(freqs):
            utility[i, j] = core.utility(cache, f)
            power[i, j] = core.power_watts(f)
    return ApplicationProfileTable(
        app_name=app.name,
        cache_regions=regions,
        frequencies_ghz=freqs,
        utility=utility,
        power_watts=power,
    )


@dataclass(frozen=True)
class Sensitivities:
    """The two profiling-derived sensitivities used for classification."""

    cache: float
    power: float


def sensitivities(table: ApplicationProfileTable) -> Sensitivities:
    """Extract cache/power sensitivity from a profile table."""
    mid_freq_idx = len(PROFILE_FREQUENCIES_GHZ) // 2        # 2.4 GHz
    quarter_cache_idx = 3                                    # 4 regions (512 kB)
    cache_sens = float(
        table.utility[-1, mid_freq_idx] - table.utility[0, mid_freq_idx]
    )
    power_sens = float(
        table.utility[quarter_cache_idx, -1] - table.utility[quarter_cache_idx, 0]
    )
    return Sensitivities(cache=cache_sens, power=power_sens)


def classify(app: AppProfile, config: CMPConfig | None = None) -> str:
    """Profile one application and return its class letter (C/P/B/N)."""
    sens = sensitivities(profile_application(app, config))
    cache_sensitive = sens.cache >= CACHE_SENSITIVE_THRESHOLD
    power_sensitive = sens.power >= POWER_SENSITIVE_THRESHOLD
    if cache_sensitive and power_sensitive:
        return "B"
    if cache_sensitive:
        return "C"
    if power_sensitive:
        return "P"
    return "N"


def classify_suite(
    apps: Sequence[AppProfile], config: CMPConfig | None = None
) -> Dict[str, List[AppProfile]]:
    """Classify a suite; returns class letter -> application list."""
    classes: Dict[str, List[AppProfile]] = {"C": [], "P": [], "B": [], "N": []}
    for app in apps:
        classes[classify(app, config)].append(app)
    return classes
