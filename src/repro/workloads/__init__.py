"""Workload construction: profiling-based C/P/B/N classification and
random multiprogrammed bundle generation (Section 5)."""

from .bundles import (
    BUNDLE_CATEGORIES,
    BUNDLES_PER_CATEGORY,
    Bundle,
    generate_all_bundles,
    generate_bundle,
    generate_bundles,
    paper_bbpc_bundle,
)
from .classification import (
    PROFILE_CACHE_REGIONS,
    PROFILE_FREQUENCIES_GHZ,
    ApplicationProfileTable,
    Sensitivities,
    classify,
    classify_suite,
    profile_application,
    sensitivities,
)

__all__ = [
    "PROFILE_CACHE_REGIONS",
    "PROFILE_FREQUENCIES_GHZ",
    "ApplicationProfileTable",
    "Sensitivities",
    "profile_application",
    "sensitivities",
    "classify",
    "classify_suite",
    "BUNDLE_CATEGORIES",
    "BUNDLES_PER_CATEGORY",
    "Bundle",
    "generate_bundle",
    "generate_bundles",
    "generate_all_bundles",
    "paper_bbpc_bundle",
]
