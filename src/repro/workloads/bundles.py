"""Multiprogrammed workload construction (Section 5).

Six bundle categories are evaluated — *CPBN*, *CCPP*, *CPBB*, *BBNN*,
*BBPN*, *BBCN* — each letter naming one quarter of the bundle's cores.
For an 8-core (64-core) chip, each letter contributes 2 (16)
applications drawn uniformly at random from the applications in that
class; 40 random bundles are generated per category, yielding the 240
bundles of Figure 4.  Sampling is with replacement (the paper's example
BBPC bundle contains two copies each of *apsi*, *swim* and *mcf*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cmp.application import AppProfile
from ..cmp.spec_suite import apps_in_class

__all__ = [
    "BUNDLE_CATEGORIES",
    "BUNDLES_PER_CATEGORY",
    "Bundle",
    "category_fingerprint",
    "bundle_seed_sequence",
    "generate_bundle",
    "generate_bundles",
    "generate_all_bundles",
    "paper_bbpc_bundle",
]

#: The paper's six workload categories.
BUNDLE_CATEGORIES = ("CPBN", "CCPP", "CPBB", "BBNN", "BBPN", "BBCN")

#: Bundles generated per category (Section 5: 40).
BUNDLES_PER_CATEGORY = 40


@dataclass(frozen=True)
class Bundle:
    """One multiprogrammed workload: an ordered list of applications."""

    category: str
    index: int
    apps: tuple

    @property
    def name(self) -> str:
        return f"{self.category}-{self.index:02d}"

    @property
    def num_cores(self) -> int:
        return len(self.apps)

    def app_names(self) -> List[str]:
        return [app.name for app in self.apps]


def category_fingerprint(category: str) -> int:
    """A stable integer identity for a category string.

    The built-in ``hash()`` is salted per process, so it cannot seed
    RNGs reproducibly; this positional character sum can.
    """
    return sum(ord(c) * 31 ** k for k, c in enumerate(category))


def bundle_seed_sequence(
    seed: int, category: str, index: int, num_cores: int = 0
) -> np.random.SeedSequence:
    """A per-bundle :class:`~numpy.random.SeedSequence` for sweep cells.

    The sequence depends only on the bundle's identity ``(category,
    index)`` and the sweep seed — never on which categories or bundles
    share the sweep, or on how a parallel executor sharded the cells —
    so per-cell entropy (e.g. the simulator's monitoring noise) is
    reproducible under any subsetting or worker count.  Spawn one child
    per mechanism to seed the individual (bundle, mechanism) cells.
    """
    return np.random.SeedSequence(
        [seed, category_fingerprint(category), index, num_cores]
    )


def generate_bundle(
    category: str,
    num_cores: int,
    rng: np.random.Generator,
    index: int = 0,
) -> Bundle:
    """Draw one bundle: ``num_cores / 4`` apps per category letter."""
    if len(category) != 4 or any(c not in "CPBN" for c in category):
        raise ValueError(f"category must be 4 letters from CPBN, got {category!r}")
    if num_cores % 4 != 0:
        raise ValueError("num_cores must be divisible by 4")
    per_letter = num_cores // 4
    apps: List[AppProfile] = []
    for letter in category:
        pool = apps_in_class(letter)
        picks = rng.integers(0, len(pool), size=per_letter)
        apps.extend(pool[k] for k in picks)
    return Bundle(category=category, index=index, apps=tuple(apps))


def generate_bundles(
    category: str,
    num_cores: int,
    count: int = BUNDLES_PER_CATEGORY,
    seed: int = 2016,
) -> List[Bundle]:
    """The ``count`` random bundles of one category (deterministic seed)."""
    rng = np.random.default_rng([seed, category_fingerprint(category), num_cores])
    return [generate_bundle(category, num_cores, rng, index=k) for k in range(count)]


def generate_all_bundles(
    num_cores: int,
    count: int = BUNDLES_PER_CATEGORY,
    seed: int = 2016,
    categories: Optional[Sequence[str]] = None,
) -> Dict[str, List[Bundle]]:
    """All six categories (240 bundles at the default count)."""
    categories = categories or BUNDLE_CATEGORIES
    return {
        category: generate_bundles(category, num_cores, count=count, seed=seed)
        for category in categories
    }


def paper_bbpc_bundle() -> Bundle:
    """The 8-core BBPC case study of Section 6.1.1 / Figure 3.

    Four "B" apps (two copies each of *apsi* and *swim*), two "C" apps
    (two copies of *mcf*), and two "P" apps (*hmmer* and *sixtrack*).
    """
    from ..cmp.spec_suite import app_by_name

    apps = (
        app_by_name("apsi"),
        app_by_name("apsi"),
        app_by_name("swim"),
        app_by_name("swim"),
        app_by_name("mcf"),
        app_by_name("mcf"),
        app_by_name("hmmer"),
        app_by_name("sixtrack"),
    )
    return Bundle(category="BBPC", index=0, apps=apps)
