"""Execution-driven epoch simulation: program phases, online monitoring,
1 ms market re-allocation, Futility-Scaling partition dynamics, DVFS with
thermal feedback, and DRAM contention (the paper's SESC substitute)."""

from .engine import (
    ContextSwitch,
    ExecutionDrivenSimulator,
    SimulationConfig,
    SimulationResult,
)
from .phases import PhaseState, PhaseTracker
from .trace import EpochRecord, SimulationTrace

__all__ = [
    "ContextSwitch",
    "ExecutionDrivenSimulator",
    "SimulationConfig",
    "SimulationResult",
    "PhaseState",
    "PhaseTracker",
    "EpochRecord",
    "SimulationTrace",
]
