"""The execution-driven CMP simulator (the paper's phase-2 evaluation).

This is the SESC-substitute: a discrete-epoch simulation of a chip
multiprocessor in which

* every core runs its application through cyclic program phases;
* UMON shadow tags sample the (synthetic) access stream and produce
  noisy online miss-curve estimates;
* the allocation mechanism (EqualBudget, ReBudget, ...) re-runs every
  1 ms epoch on the *monitored* utilities, exactly as Section 4.3
  piggybacks the market on the kernel's timer interrupt — warm-started
  from the previous epoch's equilibrium bids, and re-searched from
  scratch whenever a context switch replaces a market player;
* Futility Scaling slews the physical cache partitions toward the
  market's targets with finite eviction bandwidth;
* per-core DVFS resolves purchased watts into frequency, with static
  power riding on an RC thermal model (HotSpot-style);
* DRAM channel contention feeds back into next epoch's miss latency.

Performance is *measured* by retiring instructions at the operating
points the hardware actually reached — not at the points the market
believed in — which is what separates Figure 5 from Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..cmp.chip import ChipModel
from ..cmp.config import CMPConfig
from ..cmp.futility import FutilityScalingController
from ..cmp.monitor import RuntimeMonitor
from ..cmp.talus import TalusController
from ..cmp.thermal import ThermalModel
from ..cmp.utility_builder import build_true_utility
from ..core.mechanisms import AllocationMechanism, AllocationProblem
from ..core.metrics import envy_freeness
from .phases import PhaseTracker
from .trace import EpochRecord, SimulationTrace

__all__ = [
    "ContextSwitch",
    "SimulationConfig",
    "SimulationResult",
    "ExecutionDrivenSimulator",
]


@dataclass(frozen=True)
class ContextSwitch:
    """Replace the application on one core at a given time.

    Context switches are the paper's stated reason (Section 4.3) for
    re-running the market every millisecond: the demand profile of a
    core changes instantly, and the monitors must re-learn it.
    """

    time_ms: float
    core_index: int
    app: object  # AppProfile


@dataclass
class SimulationConfig:
    """Knobs of one simulation run."""

    duration_ms: float = 30.0
    epoch_ms: float = 1.0
    #: Use runtime monitors (phase 2).  False runs the market on the
    #: true analytic utilities — useful to isolate monitoring noise.
    use_monitors: bool = True
    #: Re-run the allocation mechanism every this many epochs.
    reallocation_period_epochs: int = 1
    #: Per-core instruction rate assumed for stream synthesis is derived
    #: from the model; this seed drives all monitoring noise.
    seed: int = 1
    #: Enable the RC thermal model (False pins the leakage reference).
    thermal: bool = True
    #: Optimum-search quanta for mechanisms that need them (MaxEfficiency);
    #: coarser than the RAPL default to keep per-epoch cost sane.
    power_quantum_watts: float = 0.5
    #: Scheduled context switches (see :class:`ContextSwitch`).
    context_switches: tuple = ()

    def __post_init__(self) -> None:
        if not np.isfinite(self.epoch_ms) or self.epoch_ms <= 0.0:
            raise ValueError(f"epoch_ms must be positive, got {self.epoch_ms!r}")
        if not np.isfinite(self.duration_ms) or self.duration_ms <= 0.0:
            raise ValueError(f"duration_ms must be positive, got {self.duration_ms!r}")
        if self.num_epochs < 1:
            raise ValueError(
                f"duration_ms={self.duration_ms!r} rounds to zero epochs of "
                f"epoch_ms={self.epoch_ms!r}; utilities would be 0/0"
            )
        if self.reallocation_period_epochs < 1:
            raise ValueError(
                "reallocation_period_epochs must be >= 1, got "
                f"{self.reallocation_period_epochs!r}"
            )

    @property
    def num_epochs(self) -> int:
        """Epochs in one run; guaranteed >= 1 by construction."""
        return int(round(self.duration_ms / self.epoch_ms))


@dataclass
class SimulationResult:
    """Measured outcome of one run (what Figure 5 plots)."""

    mechanism: str
    trace: SimulationTrace
    utilities: np.ndarray          # measured: instr / standalone instr
    alone_instructions: np.ndarray
    envy_freeness: float
    converged_fraction: float

    @property
    def efficiency(self) -> float:
        """Measured weighted speedup (Equation 5 over retired instructions)."""
        return float(self.utilities.sum())

    @property
    def mean_market_iterations(self) -> float:
        iters = self.trace.market_iterations()
        return float(np.mean(iters)) if iters else 0.0


class ExecutionDrivenSimulator:
    """Simulates one mechanism on one chip/bundle combination."""

    def __init__(
        self,
        chip: ChipModel,
        mechanism: AllocationMechanism,
        config: Optional[SimulationConfig] = None,
    ):
        self.chip = chip
        self.mechanism = mechanism
        self.config = config or SimulationConfig()
        self.num_cores = chip.config.num_cores
        for switch in self.config.context_switches:
            if not 0 <= switch.core_index < self.num_cores:
                raise ValueError(f"context switch core {switch.core_index} out of range")
        # Per-core state is owned by the simulator (not the shared chip)
        # so context switches can replace applications mid-run.
        self._cores = list(chip.cores)
        self._switch_time_ms = [0.0] * self.num_cores
        self._trackers = [PhaseTracker(app) for app in chip.apps]
        # Talus shadow partitioning: the cache each core *experiences*
        # at a partition size between two points of interest is the
        # interleaving of two shadow partitions, so its effective miss
        # rate is the hull's linear interpolation — not the raw curve's
        # value mid-cliff.
        self._talus = [self._build_talus(core.app) for core in self._cores]

    def _build_talus(self, app) -> TalusController:
        region = self.chip.config.cache_region_bytes
        sizes = np.arange(1, self.chip.config.umon_max_regions + 1) * float(region)
        hits = np.array([1.0 - app.mrc.miss_fraction(s) for s in sizes])
        return TalusController(sizes, hits)

    def _effective_miss(self, core_index: int, cache_bytes: float) -> float:
        """Talus-realized miss fraction at an arbitrary partition size."""
        talus = self._talus[core_index]
        clamped = min(cache_bytes, float(self.chip.config.umon_max_bytes))
        return float(min(max(1.0 - talus.value_at(clamped), 0.0), 1.0))

    def _phase_state(self, core_index: int, time_ms: float):
        """Phase multipliers, measured from the app's arrival on the core."""
        local = time_ms - self._switch_time_ms[core_index]
        return self._trackers[core_index].state_at(max(local, 0.0))

    def _apply_context_switches(self, time_ms: float, pending, monitors, rng) -> bool:
        """Swap applications whose switch time has arrived.

        Returns True when at least one core changed hands, so the caller
        can force a market re-run this epoch.
        """
        from ..cmp.core_model import CoreModel

        switched = False
        while pending and pending[0].time_ms <= time_ms + 1e-9:
            switch = pending.pop(0)
            i = switch.core_index
            old = self._cores[i]
            self._cores[i] = CoreModel(
                switch.app, self.chip.config, power_model=old.power_model, dram=old.dram
            )
            self._switch_time_ms[i] = time_ms
            self._trackers[i] = PhaseTracker(switch.app)
            self._talus[i] = self._build_talus(switch.app)
            # Fresh monitors: the shadow tags know nothing about the
            # incoming application and must re-learn its miss curve.
            monitors[i] = RuntimeMonitor(
                self._cores[i],
                self.chip.config,
                rng=np.random.default_rng(rng.integers(2**32)),
            )
            switched = True
        if switched:
            # The market player on the switched core changed identity:
            # its carried bids describe the departed application, so the
            # next allocation must re-search from scratch.
            self.mechanism.reset_warm_state()
        return switched

    def run(self) -> SimulationResult:
        cfg = self.config
        chip_cfg: CMPConfig = self.chip.config
        n = self.num_cores
        rng = np.random.default_rng(cfg.seed)
        pending_switches = sorted(cfg.context_switches, key=lambda s: s.time_ms)
        # A fresh run must not inherit equilibrium state from a previous
        # run of the same mechanism instance (possibly on another chip).
        self.mechanism.reset_warm_state()

        monitors = [
            RuntimeMonitor(core, chip_cfg, rng=np.random.default_rng(rng.integers(2**32)))
            for core in self._cores
        ]
        futility = FutilityScalingController(
            capacity_bytes=chip_cfg.l2_capacity_bytes, num_partitions=n
        )
        thermal = ThermalModel(n)
        dram = self._cores[0].dram
        dram_latency = dram.uncontended_latency_ns()

        region = float(chip_cfg.cache_region_bytes)
        extras = self._equal_share_extras()
        trace = SimulationTrace()
        converged_epochs = 0
        market_epochs = 0
        alone = np.zeros(n)

        # Warm-up: let the monitors see one epoch of execution at the
        # equal-share allocation before the first market run.
        self._warmup(monitors, extras, dram_latency)

        num_epochs = cfg.num_epochs
        alloc_result = None
        for epoch in range(num_epochs):
            time_ms = epoch * cfg.epoch_ms
            if self._apply_context_switches(time_ms, pending_switches, monitors, rng):
                # Section 4.3: the incoming application must not execute
                # under the departed one's allocation, even between the
                # scheduled market epochs of reallocation_period_epochs.
                alloc_result = None
            states = [self._phase_state(i, time_ms) for i in range(n)]

            # (1) Allocation: re-run the market on monitored utilities.
            if epoch % cfg.reallocation_period_epochs == 0 or alloc_result is None:
                problem = self._build_problem(monitors)
                alloc_result = self.mechanism.allocate(problem)
                market_epochs += 1
                if alloc_result.converged:
                    converged_epochs += 1
                extras = alloc_result.allocations

            # (2) Cache partitioning: Futility Scaling slews occupancy.
            targets = region + extras[:, 0]
            access_rates = np.array(
                [
                    core.app.apki * states[i].apki_scale
                    for i, core in enumerate(self._cores)
                ]
            )
            occupancy = futility.step(targets, access_rates)

            # (3) DVFS: resolve purchased watts into frequency at the
            # current temperature (leakage rises with heat).
            temps = thermal.temperatures_c if cfg.thermal else [None] * n
            frequencies = np.empty(n)
            powers = np.empty(n)
            for i, core in enumerate(self._cores):
                activity = core.app.activity * states[i].activity_scale
                budget_w = core.min_power_watts(temps[i]) + extras[i, 1]
                f = core.power_model.frequency_for_power(budget_w, activity, temps[i])
                frequencies[i] = f
                powers[i] = core.power_model.total_power(f, activity, temps[i])

            # (4) Execution: retire instructions at the *actual* points,
            # with Talus delivering the hull-effective miss rate at the
            # occupancy Futility Scaling realized.
            perf = np.empty(n)
            misses_per_instr = np.empty(n)
            for i, core in enumerate(self._cores):
                miss = self._effective_miss(i, occupancy[i])
                mpi = core.app.apki * states[i].apki_scale / 1000.0 * miss
                misses_per_instr[i] = mpi
                time_ns = (
                    core.app.cpi_exe * states[i].cpi_scale / frequencies[i]
                    + mpi * dram_latency
                )
                perf[i] = 1.0 / time_ns
            instructions = perf * cfg.epoch_ms * 1e-3  # giga-instructions

            # Standalone reference for the same epoch and phase mix.
            for i, core in enumerate(self._cores):
                alone[i] += (
                    core.performance_gips(
                        chip_cfg.umon_max_bytes,
                        chip_cfg.core.max_frequency_ghz,
                        cpi_scale=states[i].cpi_scale,
                        apki_scale=states[i].apki_scale,
                    )
                    * cfg.epoch_ms
                    * 1e-3
                )

            # (5) Feedback: thermals and DRAM contention for next epoch.
            if cfg.thermal:
                thermal.step(powers, cfg.epoch_ms * 1e-3)
            miss_bw_gbps = float(np.sum(perf * misses_per_instr) * dram.line_bytes)
            dram_latency = dram.latency_ns(miss_bw_gbps)

            # (6) Monitoring: shadow tags ingest this epoch's stream.
            if cfg.use_monitors:
                for i, monitor in enumerate(monitors):
                    monitor.observe_epoch(
                        instructions[i] * 1e9, apki_scale=states[i].apki_scale
                    )

            trace.append(
                EpochRecord(
                    epoch=epoch,
                    time_ms=time_ms,
                    extras=extras.copy(),
                    cache_occupancy=occupancy.copy(),
                    frequencies_ghz=frequencies,
                    instructions=instructions,
                    powers_w=powers,
                    temperatures_c=np.array(thermal.temperatures_c),
                    dram_latency_ns=dram_latency,
                    market_iterations=alloc_result.iterations,
                    market_converged=alloc_result.converged,
                )
            )

        totals = trace.total_instructions()
        utilities = totals / alone
        ef = self._score_envy_freeness(trace.mean_allocation())
        return SimulationResult(
            mechanism=self.mechanism.name,
            trace=trace,
            utilities=utilities,
            alone_instructions=alone,
            envy_freeness=ef,
            converged_fraction=converged_epochs / max(market_epochs, 1),
        )

    # ------------------------------------------------------------------

    def _equal_share_extras(self) -> np.ndarray:
        n = self.num_cores
        return np.column_stack(
            [
                np.full(n, self.chip.extra_cache_capacity / n),
                np.full(n, self._extra_power_capacity() / n),
            ]
        )

    def _extra_power_capacity(self) -> float:
        """Watts beyond the free minimums of the *current* applications."""
        free = sum(core.min_power_watts() for core in self._cores)
        return float(self.chip.config.power_budget_watts - free)

    def _warmup(self, monitors, extras, dram_latency) -> None:
        if not self.config.use_monitors:
            return
        for i, core in enumerate(self._cores):
            f = core.frequency_for_power(core.min_power_watts() + extras[i, 1])
            perf = core.performance_gips(
                self.chip.free.cache_bytes + extras[i, 0], f, latency_ns=dram_latency
            )
            monitors[i].observe_epoch(perf * self.config.epoch_ms * 1e6)

    def _build_problem(self, monitors) -> AllocationProblem:
        from ..cmp.utility_builder import extra_capacity_for

        if self.config.use_monitors:
            utilities = [m.estimated_utility() for m in monitors]
        else:
            utilities = [
                build_true_utility(core, self.chip.config) for core in self._cores
            ]
        caps = np.array(
            [extra_capacity_for(core, self.chip.config) for core in self._cores]
        )
        return AllocationProblem(
            utilities=utilities,
            capacities=np.array(
                [self.chip.extra_cache_capacity, self._extra_power_capacity()]
            ),
            resource_names=["cache_bytes", "power_watts"],
            player_names=[core.app.name for core in self._cores],
            quanta=np.array(
                [
                    float(self.chip.config.cache_region_bytes),
                    self.config.power_quantum_watts,
                ]
            ),
            per_player_caps=caps,
        )

    def _score_envy_freeness(self, mean_extras: np.ndarray) -> float:
        """EF of the time-averaged allocation under the (final) true utilities.

        With context switches the scoring uses the applications resident
        at the end of the run.
        """
        true_utilities = [
            build_true_utility(core, self.chip.config) for core in self._cores
        ]
        return envy_freeness(true_utilities, mean_extras)
