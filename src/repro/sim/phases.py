"""Program-phase tracking for the execution-driven simulator.

Applications may declare a cyclic list of phases (compute-heavy,
memory-heavy, ...) with per-phase multipliers on CPI, L2 access
intensity and power activity.  Phase changes are the reason the paper
re-runs the allocation market every millisecond, so the simulator needs
to know each application's live multipliers at any simulation time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cmp.application import AppProfile, Phase

__all__ = ["PhaseState", "PhaseTracker"]

#: Multipliers of an application without declared phases.
_STATIONARY = Phase(duration_ms=float("inf"))


@dataclass(frozen=True)
class PhaseState:
    """The live multipliers of one application at one instant."""

    phase_index: int
    apki_scale: float
    cpi_scale: float
    activity_scale: float


class PhaseTracker:
    """Maps simulation time to the active phase of one application."""

    def __init__(self, app: AppProfile):
        self.app = app
        self.phases = list(app.phases) if app.phases else [_STATIONARY]
        self.cycle_ms = sum(p.duration_ms for p in self.phases)

    def state_at(self, time_ms: float) -> PhaseState:
        """Phase multipliers active at ``time_ms`` (phases cycle forever)."""
        if len(self.phases) == 1:
            phase = self.phases[0]
            return PhaseState(0, phase.apki_scale, phase.cpi_scale, phase.activity_scale)
        t = time_ms % self.cycle_ms
        elapsed = 0.0
        for index, phase in enumerate(self.phases):
            elapsed += phase.duration_ms
            if t < elapsed:
                return PhaseState(
                    index, phase.apki_scale, phase.cpi_scale, phase.activity_scale
                )
        last = self.phases[-1]
        return PhaseState(
            len(self.phases) - 1, last.apki_scale, last.cpi_scale, last.activity_scale
        )

    def changes_between(self, start_ms: float, end_ms: float) -> bool:
        """True when a phase boundary falls inside ``[start_ms, end_ms)``."""
        return self.state_at(start_ms).phase_index != self.state_at(end_ms).phase_index
