"""Simulation traces: per-epoch records and end-of-run summaries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = ["EpochRecord", "SimulationTrace"]


@dataclass
class EpochRecord:
    """Everything measured in one allocation epoch."""

    epoch: int
    time_ms: float
    extras: np.ndarray            # (N, 2) market allocation targets
    cache_occupancy: np.ndarray   # (N,) actual bytes after Futility Scaling
    frequencies_ghz: np.ndarray   # (N,)
    instructions: np.ndarray      # (N,) retired this epoch (giga-instr)
    powers_w: np.ndarray          # (N,)
    temperatures_c: np.ndarray    # (N,)
    dram_latency_ns: float
    market_iterations: int
    market_converged: bool


@dataclass
class SimulationTrace:
    """Accumulated epoch records plus derived aggregates."""

    epochs: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.epochs.append(record)

    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    def total_instructions(self) -> np.ndarray:
        """Per-core instructions retired over the whole run."""
        return np.sum([e.instructions for e in self.epochs], axis=0)

    def mean_power(self) -> float:
        """Chip-level average power across epochs."""
        return float(np.mean([e.powers_w.sum() for e in self.epochs]))

    def peak_temperature(self) -> float:
        return float(np.max([e.temperatures_c.max() for e in self.epochs]))

    def mean_allocation(self) -> np.ndarray:
        """Time-averaged extras allocation (N, 2)."""
        return np.mean([e.extras for e in self.epochs], axis=0)

    def market_iterations(self) -> List[int]:
        return [e.market_iterations for e in self.epochs]
