"""The AST lint engine behind ``repro lint`` (see ``docs/QA.md``).

The engine is deliberately self-contained — Python's :mod:`ast` plus the
standard library, no third-party linter frameworks — because the paper's
correctness properties are *domain* invariants (Theorem 1/2 domains,
budget conservation, cross-process determinism) that generic linters
cannot express.  The pieces:

* :class:`SourceModule` — one parsed file: source, AST, and the
  ``# repro: noqa[RULE]`` suppression map.
* :class:`ModuleRule` / :class:`ProjectRule` — rule interfaces.  Module
  rules see one file at a time; project rules (e.g. the worker-process
  race detector) see the whole linted file set so they can walk call
  graphs across modules.
* :class:`Linter` — parses paths, runs every registered rule, applies
  suppressions, and returns a :class:`LintReport` with a deterministic
  finding order and an exit-code contract
  (``report.exit_code(fail_on)``).

Suppressions are line-anchored: ``# repro: noqa[REPRO105]`` on the line
a finding is reported at silences exactly that rule there (an optional
justification may follow the bracket); a bare ``# repro: noqa``
silences every rule on its line.  Suppressed findings are counted, not
silently dropped.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from enum import IntEnum
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Severity",
    "Finding",
    "SourceModule",
    "Rule",
    "ModuleRule",
    "ProjectRule",
    "LintReport",
    "Linter",
    "PARSE_ERROR_RULE",
]

#: Rule id attached to files the engine cannot parse.
PARSE_ERROR_RULE = "REPRO100"


class Severity(IntEnum):
    """Finding severity, ordered so thresholds compare naturally."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "warning" / "error" in reports
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[str(text).upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[str(s) for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a file position."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> Tuple:
        return (self.path, self.line, self.col, self.rule)


_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)


def _noqa_map(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Line -> suppressed rule ids (``None`` means every rule).

    Comments are located with :mod:`tokenize` so a ``# repro: noqa``
    inside a string literal is never treated as a suppression.
    """
    out: Dict[int, Optional[FrozenSet[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files surface as REPRO100; no suppressions apply.
        return out
    for line, comment in comments:
        match = _NOQA_RE.search(comment)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            out[line] = None
        else:
            ids = frozenset(r.strip().upper() for r in rules.split(",") if r.strip())
            previous = out.get(line, frozenset())
            out[line] = None if previous is None else (previous | ids)
    return out


@dataclass
class SourceModule:
    """One file under lint: path, source text, AST and suppression map."""

    path: str
    source: str
    tree: ast.Module
    noqa: Dict[int, Optional[FrozenSet[str]]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: Optional[str] = None) -> "SourceModule":
        if source is None:
            source = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=str(path), source=source, tree=tree, noqa=_noqa_map(source)
        )

    @property
    def name(self) -> str:
        """Best-effort dotted module name (``repro.core.market``)."""
        parts = list(Path(self.path).with_suffix("").parts)
        if "repro" in parts:
            parts = parts[parts.index("repro"):]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts) if parts else Path(self.path).stem

    @property
    def is_package_init(self) -> bool:
        return Path(self.path).name == "__init__.py"

    @property
    def basename(self) -> str:
        return Path(self.path).name

    def suppresses(self, rule_id: str, line: int) -> bool:
        entry = self.noqa.get(line, frozenset())
        return entry is None or rule_id.upper() in entry


class Rule:
    """Common rule metadata; subclasses implement one ``check`` flavor."""

    id: str = "REPRO000"
    name: str = "rule"
    severity: Severity = Severity.WARNING
    #: One-line rationale surfaced in ``docs/QA.md`` and reports.
    rationale: str = ""

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ModuleRule(Rule):
    """A rule evaluated one module at a time."""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs the whole linted file set (call-graph walks)."""

    def check_project(self, modules: Sequence[SourceModule]) -> Iterator[Finding]:
        raise NotImplementedError


@dataclass
class LintReport:
    """All findings of one lint run, already suppression-filtered."""

    findings: List[Finding] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    suppressed: int = 0

    def counts(self) -> Dict[str, int]:
        out = {str(s): 0 for s in Severity}
        for finding in self.findings:
            out[str(finding.severity)] += 1
        return out

    def by_rule(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return out

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        """The CLI contract: 1 iff any finding reaches ``fail_on``."""
        return int(any(f.severity >= fail_on for f in self.findings))


class Linter:
    """Parse files, run rules, apply suppressions.

    ``rules`` defaults to the full domain registry in
    :mod:`repro.qa.rules`.
    """

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        if rules is None:
            from .rules import default_rules

            rules = default_rules()
        self.rules: List[Rule] = list(rules)

    # -- entry points ---------------------------------------------------

    def lint_paths(self, paths: Iterable[str]) -> LintReport:
        """Lint files and/or directories (``*.py``, recursively)."""
        files = self._collect(paths)
        modules: List[SourceModule] = []
        parse_failures: List[Finding] = []
        for file in files:
            try:
                modules.append(SourceModule.parse(file))
            except SyntaxError as exc:
                parse_failures.append(
                    Finding(
                        rule=PARSE_ERROR_RULE,
                        severity=Severity.ERROR,
                        path=str(file),
                        line=int(exc.lineno or 1),
                        col=int(exc.offset or 0),
                        message=f"file does not parse: {exc.msg}",
                    )
                )
        report = self._run(modules)
        report.findings = sorted(
            report.findings + parse_failures, key=Finding.sort_key
        )
        report.files = [str(f) for f in files]
        return report

    def lint_sources(
        self, named_sources: Sequence[Tuple[str, str]]
    ) -> LintReport:
        """Lint in-memory ``(path, source)`` pairs (the test seam)."""
        modules = [
            SourceModule.parse(path, source) for path, source in named_sources
        ]
        report = self._run(modules)
        report.findings.sort(key=Finding.sort_key)
        report.files = [m.path for m in modules]
        return report

    # -- internals ------------------------------------------------------

    @staticmethod
    def _collect(paths: Iterable[str]) -> List[str]:
        files: List[str] = []
        for path in paths:
            p = Path(path)
            if p.is_dir():
                files.extend(
                    str(f)
                    for f in sorted(p.rglob("*.py"))
                    if "__pycache__" not in f.parts
                )
            else:
                files.append(str(p))
        return files

    def _run(self, modules: Sequence[SourceModule]) -> LintReport:
        raw: List[Finding] = []
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                raw.extend(rule.check_project(modules))
            elif isinstance(rule, ModuleRule):
                for module in modules:
                    raw.extend(rule.check(module))
        by_path = {m.path: m for m in modules}
        kept: List[Finding] = []
        suppressed = 0
        for finding in raw:
            module = by_path.get(finding.path)
            if module is not None and module.suppresses(finding.rule, finding.line):
                suppressed += 1
            else:
                kept.append(finding)
        return LintReport(findings=kept, suppressed=suppressed)
