"""Lint-report renderers: human-oriented text and machine-oriented JSON.

The JSON document is the stable interface for CI (``repro lint
--format json``); its schema is versioned and tested::

    {
      "version": 1,
      "files": <int>,                 # files linted
      "suppressed": <int>,            # findings silenced by noqa
      "summary": {"error": n, "warning": m},
      "by_rule": {"REPRO105": k, ...},
      "findings": [
        {"rule": "REPRO101", "severity": "warning", "path": "...",
         "line": 66, "col": 15, "message": "..."},
        ...
      ]
    }
"""

from __future__ import annotations

import json

from .engine import LintReport

__all__ = ["JSON_SCHEMA_VERSION", "render_json", "render_text"]

#: Bump when the JSON document shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport) -> str:
    """One ``path:line:col rule severity message`` line per finding."""
    lines = []
    for finding in report.findings:
        lines.append(
            f"{finding.location} {finding.rule} "
            f"[{finding.severity}] {finding.message}"
        )
    counts = report.counts()
    lines.append(
        f"{len(report.files)} file(s) linted: "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{report.suppressed} suppressed"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files": len(report.files),
        "suppressed": report.suppressed,
        "summary": report.counts(),
        "by_rule": report.by_rule(),
        "findings": [
            {
                "rule": f.rule,
                "severity": str(f.severity),
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in report.findings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
