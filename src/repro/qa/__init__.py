"""Correctness tooling for the reproduction: a static domain linter and
a runtime invariant sanitizer (``docs/QA.md`` is the full catalogue).

* :mod:`repro.qa.engine` / :mod:`repro.qa.rules` — an AST rule engine
  (registry, severities, ``# repro: noqa[RULE]`` suppressions) with
  domain-specific rules: float equality, mutable defaults, overbroad
  excepts, unseeded RNG state, a worker-process race detector that
  walks the call graph from :class:`~repro.exec.SweepExecutor` entry
  points, and ``__all__`` drift.  Run it with ``repro lint``.
* :mod:`repro.qa.sanitize` — ``REPRO_SANITIZE=1``-gated contract checks
  (prices, budgets, capacities, MUR/MBR domains, the ReBudget floor,
  convergence-flag consistency) at the market/equilibrium/rebudget/
  metrics seams; compiled out to a single attribute read otherwise.
"""

from .engine import (
    Finding,
    Linter,
    LintReport,
    ModuleRule,
    ProjectRule,
    Rule,
    Severity,
    SourceModule,
)
from .reporters import JSON_SCHEMA_VERSION, render_json, render_text
from .rules import default_rules
from .sanitize import SanitizerError

__all__ = [
    "Finding",
    "Linter",
    "LintReport",
    "ModuleRule",
    "ProjectRule",
    "Rule",
    "Severity",
    "SourceModule",
    "JSON_SCHEMA_VERSION",
    "render_json",
    "render_text",
    "default_rules",
    "SanitizerError",
]
