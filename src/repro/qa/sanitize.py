"""Runtime invariant sanitizer for the market stack (see ``docs/QA.md``).

The paper's guarantees are quantitative domain invariants: Theorem 1/2
bounds only apply for MUR/MBR in [0, 1], ReBudget must never cut a
budget below its MBR floor, and every market clearing must conserve
budgets and capacities.  This module turns those invariants into cheap
contract checks attached at the ``market`` / ``equilibrium`` /
``rebudget`` / ``metrics`` seams.

The checks are **compiled out by default**: every call site guards with
``if sanitize.ACTIVE:`` — a single module-attribute read — so the hot
path pays nothing measurable when sanitizing is off.  Set
``REPRO_SANITIZE=1`` in the environment (as the sanitized CI job does)
to arm every check; a violation raises :class:`SanitizerError` naming
the violated invariant.

Invariants enforced (identifier -> paper anchor):

* ``price-nonnegative``          — Eq. 1: ``p_j = sum_i b_ij / C_j`` with
  non-negative bids.
* ``spending-within-budget``     — Sec. 2.1: each player's bids sum to at
  most its budget.
* ``allocation-within-capacity`` — Eq. 2: allocations are non-negative
  and per-resource totals never exceed capacity.  The bidding seams
  (scalar and batched alike) apply the per-player form: no single
  player's allocation may exceed a resource's capacity either.
* ``marginal-finite``             — Eq. 7: the marginal utilities the
  hill climb compares must be finite (the first-bid ``y_j == 0`` case is
  mapped to a large finite sentinel before comparison).
* ``mur-in-unit-interval`` / ``mbr-in-unit-interval`` — Defs. 5/6 and
  Theorems 1/2, whose bounds are only defined on [0, 1].
* ``rebudget-budget-floor``      — Sec. 4.2: budgets never fall below
  ``MBR * B`` (nor rise above the initial budget).
* ``equilibrium-convergence-flag`` — Sec. 2.1: a search reported as
  converged must end with round-over-round price stability.

Toggling: ``ACTIVE`` is resolved from the environment at import;
:func:`refresh` re-reads it and :func:`enabled` is a context manager
that forces it for a scope (the test seam).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

import numpy as np

from ..exceptions import SanitizerError

__all__ = [
    "ACTIVE",
    "TOLERANCE",
    "SanitizerError",
    "refresh",
    "enabled",
    "check_prices",
    "check_spending",
    "check_allocation",
    "check_player_allocations",
    "check_marginals",
    "check_unit_interval",
    "check_budget_floor",
    "check_convergence",
]

#: Absolute slack granted to every comparison: the market stack works in
#: float64 and the invariants are exact only in real arithmetic.
TOLERANCE = 1e-6


def _env_active() -> bool:
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in (
        "", "0", "false", "off", "no",
    )


#: The master switch call sites guard on.  Module-level so the disabled
#: fast path is a single attribute read.
ACTIVE: bool = _env_active()


def refresh() -> bool:
    """Re-read ``REPRO_SANITIZE`` from the environment."""
    global ACTIVE
    ACTIVE = _env_active()
    return ACTIVE


@contextmanager
def enabled(value: bool = True) -> Iterator[None]:
    """Force the sanitizer on (or off) for a scope — the test seam."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = bool(value)
    try:
        yield
    finally:
        ACTIVE = previous


def _fail(invariant: str, detail: str) -> None:
    raise SanitizerError(
        f"invariant {invariant!r} violated: {detail}", invariant=invariant
    )


def check_prices(prices: np.ndarray) -> None:
    """``price-nonnegative``: every resource price is finite and >= 0."""
    prices = np.asarray(prices, dtype=float)
    if not np.all(np.isfinite(prices)):
        _fail("price-nonnegative", f"non-finite price in {prices!r}")
    if np.any(prices < -TOLERANCE):
        _fail(
            "price-nonnegative",
            f"negative price {float(prices.min()):.6g} (Equation 1 requires "
            f"p_j = sum_i b_ij / C_j >= 0)",
        )


def check_spending(bids: np.ndarray, budgets: np.ndarray) -> None:
    """``spending-within-budget``: per-player bid totals <= budget."""
    spending = np.asarray(bids, dtype=float).sum(axis=1)
    budgets = np.asarray(budgets, dtype=float)
    slack = TOLERANCE * np.maximum(1.0, np.abs(budgets))
    over = spending > budgets + slack
    if np.any(over):
        i = int(np.argmax(spending - budgets))
        _fail(
            "spending-within-budget",
            f"player {i} spends {float(spending[i]):.6g} of a "
            f"{float(budgets[i]):.6g} budget",
        )


def check_allocation(allocations: np.ndarray, capacities: np.ndarray) -> None:
    """``allocation-within-capacity``: r >= 0, column sums <= capacity."""
    allocations = np.asarray(allocations, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    if np.any(allocations < -TOLERANCE):
        _fail(
            "allocation-within-capacity",
            f"negative allocation {float(allocations.min()):.6g}",
        )
    totals = allocations.sum(axis=0)
    slack = TOLERANCE * np.maximum(1.0, np.abs(capacities))
    over = totals > capacities + slack
    if np.any(over):
        j = int(np.argmax(totals - capacities))
        _fail(
            "allocation-within-capacity",
            f"resource {j} allocates {float(totals[j]):.6g} of capacity "
            f"{float(capacities[j]):.6g}",
        )


def check_player_allocations(allocations: np.ndarray, capacities: np.ndarray) -> None:
    """``allocation-within-capacity``, per-player form.

    The bid-to-allocation seams hand out one row per player (or per
    batched climb point); each row must be non-negative and elementwise
    within capacity.  Shared by the scalar and batched paths so a
    vectorized rewrite cannot silently relax the Eq. 2 contract.
    """
    allocations = np.asarray(allocations, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    if np.any(allocations < -TOLERANCE):
        _fail(
            "allocation-within-capacity",
            f"negative per-player allocation {float(allocations.min()):.6g}",
        )
    slack = TOLERANCE * np.maximum(1.0, np.abs(capacities))
    if np.any(allocations > capacities + slack):
        excess = allocations - capacities
        j = int(np.argmax(excess.max(axis=0) if excess.ndim == 2 else excess))
        _fail(
            "allocation-within-capacity",
            f"a player's allocation on resource {j} exceeds its capacity "
            f"{float(capacities[j]):.6g} (Eq. 2 shares lie in [0, 1])",
        )


def check_marginals(marginals: np.ndarray) -> None:
    """``marginal-finite``: every marginal the climb compares is finite.

    A NaN or infinity here means a utility gradient blew up (or the
    first-bid sentinel substitution was skipped); argmax/argmin over such
    values silently corrupts the climb's donor/recipient choices.
    """
    marginals = np.asarray(marginals, dtype=float)
    if not np.all(np.isfinite(marginals)):
        bad = marginals[~np.isfinite(marginals)]
        _fail(
            "marginal-finite",
            f"non-finite marginal utility {bad.ravel()[0]!r} reached the "
            f"hill climb's comparison step",
        )


def check_unit_interval(name: str, value: float) -> None:
    """``mur/mbr-in-unit-interval``: Definition 5/6 ranges, Theorem 1/2
    domains."""
    invariant = f"{name.strip().lower()}-in-unit-interval"
    value = float(value)
    if not np.isfinite(value) or value < -TOLERANCE or value > 1.0 + TOLERANCE:
        _fail(
            invariant,
            f"{name} = {value!r} outside [0, 1]; Theorem 1/2 bounds are "
            f"undefined there",
        )


def check_budget_floor(
    budgets: np.ndarray,
    floor: float,
    initial_budget: Optional[float] = None,
) -> None:
    """``rebudget-budget-floor``: no budget below ``MBR * B`` (nor above
    the initial budget — ReBudget only ever cuts)."""
    budgets = np.asarray(budgets, dtype=float)
    slack = TOLERANCE * max(1.0, abs(float(floor)))
    if np.any(budgets < floor - slack):
        _fail(
            "rebudget-budget-floor",
            f"budget {float(budgets.min()):.6g} below the MBR floor "
            f"{float(floor):.6g} — the Theorem 2 fairness knob is broken",
        )
    if initial_budget is not None:
        slack = TOLERANCE * max(1.0, abs(float(initial_budget)))
        if np.any(budgets > initial_budget + slack):
            _fail(
                "rebudget-budget-floor",
                f"budget {float(budgets.max()):.6g} above the initial "
                f"budget {float(initial_budget):.6g} — ReBudget only cuts",
            )


def check_convergence(
    converged: bool,
    price_history: Sequence[np.ndarray],
    tolerance: float,
) -> None:
    """``equilibrium-convergence-flag``: converged implies the last two
    price vectors are stable within the search tolerance."""
    if not converged or len(price_history) < 2:
        return
    old = np.asarray(price_history[-2], dtype=float)
    new = np.asarray(price_history[-1], dtype=float)
    reference = np.maximum(np.abs(old), np.abs(new))
    stable = np.abs(new - old) <= (tolerance + TOLERANCE) * np.where(
        reference > 0.0, reference, 1.0
    )
    if not np.all(stable):
        j = int(np.argmax(np.abs(new - old)))
        _fail(
            "equilibrium-convergence-flag",
            f"search reported converged but price {j} moved "
            f"{float(old[j]):.6g} -> {float(new[j]):.6g} in the final "
            f"round (tolerance {tolerance:g})",
        )
