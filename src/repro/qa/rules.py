"""Domain lint rules for the ReBudget reproduction (see ``docs/QA.md``).

Every rule encodes a correctness property this codebase has actually
been burned by (or is structurally exposed to):

* ``REPRO101`` float-equality — Theorem 1/2 quantities are floats;
  ``==``/``!=`` on them silently flips under fp noise.
* ``REPRO102`` mutable-default-arg — shared-state bugs across calls.
* ``REPRO103`` overbroad-except — swallowed tracebacks hide the exact
  silent-domain-violation class PR 2/3 shipped fixes for.
* ``REPRO104`` unseeded-rng — module-level ``np.random.*`` / ``random.*``
  state breaks the executor's per-item ``SeedSequence`` determinism
  contract.
* ``REPRO105`` worker-nondeterminism — a process-parallelism "race
  detector": walks the call graph from ``SweepExecutor`` worker entry
  points and flags module-level mutable-global access, wall-clock
  reads, and unordered-set iteration reachable inside workers.
* ``REPRO106`` dunder-all-drift — ``__all__`` must exist and agree with
  the module's public names, so ``from repro.x import *`` and the docs
  stay truthful.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import Finding, ModuleRule, ProjectRule, Severity, SourceModule

__all__ = [
    "FloatEqualityRule",
    "MutableDefaultArgRule",
    "OverbroadExceptRule",
    "UnseededRngRule",
    "WorkerNondeterminismRule",
    "DunderAllDriftRule",
    "default_rules",
]


# ----------------------------------------------------------------------
# REPRO101: float equality
# ----------------------------------------------------------------------

def _is_floatish(node: ast.AST) -> bool:
    """Heuristic: does this expression obviously produce a float?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_floatish(node.left) or _is_floatish(node.right)
    return False


class FloatEqualityRule(ModuleRule):
    id = "REPRO101"
    name = "float-equality"
    severity = Severity.WARNING
    rationale = (
        "MUR/MBR/price/budget quantities are floats; == and != on them "
        "flip under rounding noise — use math.isclose (or an explicit "
        "exact-identity comparison with rel_tol=abs_tol=0, documented)."
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left) or _is_floatish(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        module,
                        node,
                        f"float {symbol} comparison; use math.isclose with an "
                        f"explicit tolerance (rel_tol=abs_tol=0 for documented "
                        f"exact identity)",
                    )
                    break


# ----------------------------------------------------------------------
# REPRO102: mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_FACTORIES = {
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter",
}


def _is_mutable_literal(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_FACTORIES
    return False


class MutableDefaultArgRule(ModuleRule):
    id = "REPRO102"
    name = "mutable-default-arg"
    severity = Severity.ERROR
    rationale = (
        "A mutable default is shared across every call; state leaks "
        "between epochs/sweep cells — default to None and materialize "
        "inside the function."
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {node.name}(); shared "
                        f"across calls — default to None instead",
                    )


# ----------------------------------------------------------------------
# REPRO103: bare / overbroad except that swallows the traceback
# ----------------------------------------------------------------------

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _handler_names(type_node: Optional[ast.AST]) -> List[str]:
    if type_node is None:
        return []
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    names = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _handler_preserves_error(handler: ast.ExceptHandler) -> bool:
    """Does the handler re-raise, log, or otherwise keep the traceback?"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if handler.name and isinstance(node, ast.Name) and node.id == handler.name:
            return True  # the bound exception object is used
        if isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id in (
                "traceback", "logging", "logger", "log", "sys",
            ):
                return True
    return False


class OverbroadExceptRule(ModuleRule):
    id = "REPRO103"
    name = "overbroad-except"
    severity = Severity.WARNING
    rationale = (
        "bare/overbroad handlers that drop the exception hide silent "
        "domain violations (the executor's error isolation must capture "
        "the traceback, never discard it)."
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except: catches everything (including "
                    "KeyboardInterrupt) and hides the cause — name the "
                    "exception type",
                )
                continue
            if any(n in _BROAD_EXCEPTIONS for n in _handler_names(node.type)):
                if not _handler_preserves_error(node):
                    yield self.finding(
                        module,
                        node,
                        "except Exception that neither re-raises nor records "
                        "the traceback — the failure disappears silently",
                    )


# ----------------------------------------------------------------------
# REPRO104: unseeded nondeterminism via module-level RNG state
# ----------------------------------------------------------------------

#: numpy.random attributes that are *not* the legacy global-state API.
_NP_RANDOM_ALLOWED = {
    "SeedSequence", "default_rng", "Generator", "BitGenerator",
    "RandomState",  # explicit instance, caller controls the seed
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

#: stdlib ``random`` attributes acceptable without a seed argument.
_STDLIB_RANDOM_ALLOWED = {"Random", "SystemRandom"}


class UnseededRngRule(ModuleRule):
    id = "REPRO104"
    name = "unseeded-rng"
    severity = Severity.ERROR
    rationale = (
        "module-level np.random.* / random.* state is invisible to the "
        "SweepExecutor's per-item SeedSequence contract: results would "
        "depend on sharding and interleaving — route entropy through "
        "the seed_seq handed to each cell."
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        numpy_aliases = {"numpy"}
        np_random_aliases: Set[str] = set()
        random_aliases: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                    elif alias.name == "numpy.random" and alias.asname:
                        np_random_aliases.add(alias.asname)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    for alias in node.names:
                        yield self.finding(
                            module,
                            node,
                            f"'from random import {alias.name}' pulls "
                            f"module-level RNG state — use the per-cell "
                            f"numpy SeedSequence instead",
                        )
                elif node.module == "numpy.random" and node.level == 0:
                    for alias in node.names:
                        if alias.name not in _NP_RANDOM_ALLOWED:
                            yield self.finding(
                                module,
                                node,
                                f"'from numpy.random import {alias.name}' "
                                f"uses the legacy global RNG — use "
                                f"default_rng/SeedSequence",
                            )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            # np.random.<attr> where np is a numpy alias
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in numpy_aliases
            ) or (
                isinstance(value, ast.Name) and value.id in np_random_aliases
            ):
                if node.attr not in _NP_RANDOM_ALLOWED:
                    yield self.finding(
                        module,
                        node,
                        f"np.random.{node.attr} touches numpy's module-level "
                        f"global RNG — spawn entropy from the cell's "
                        f"SeedSequence (np.random.default_rng(seed_seq))",
                    )
            # random.<attr> where random is the stdlib module
            elif (
                isinstance(value, ast.Name)
                and value.id in random_aliases
                and node.attr not in _STDLIB_RANDOM_ALLOWED
            ):
                yield self.finding(
                    module,
                    node,
                    f"random.{node.attr} uses the stdlib's module-level RNG "
                    f"state — derive a seeded generator instead",
                )


# ----------------------------------------------------------------------
# REPRO105: worker-process nondeterminism (call-graph race detector)
# ----------------------------------------------------------------------

def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


class _ModuleIndex:
    """Per-module facts the race detector needs."""

    def __init__(self, module: SourceModule):
        self.module = module
        self.functions: Dict[str, ast.AST] = {}
        self.imported_functions: Dict[str, Tuple[str, str]] = {}
        self.mutable_globals: Dict[str, int] = {}
        self.executor_names: Set[str] = set()
        self.worker_entries: List[str] = []

        tree = module.tree
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and _is_mutable_literal(
                        node.value
                    ):
                        self.mutable_globals[target.id] = node.lineno
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and _is_mutable_literal(
                    node.value
                ):
                    self.mutable_globals[node.target.id] = node.lineno
            elif isinstance(node, ast.ImportFrom):
                suffix = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imported_functions[alias.asname or alias.name] = (
                        suffix,
                        alias.name,
                    )

        # SweepExecutor(...) bindings and .run(<fn>, ...) call sites —
        # anywhere in the module, including inside functions.
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _call_name(node.value) == "SweepExecutor":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.executor_names.add(target.id)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr != "run" or not node.args:
                continue
            owner = node.func.value
            is_executor = (
                isinstance(owner, ast.Name) and owner.id in self.executor_names
            ) or (
                isinstance(owner, ast.Call)
                and _call_name(owner) == "SweepExecutor"
            )
            if is_executor and isinstance(node.args[0], ast.Name):
                self.worker_entries.append(node.args[0].id)


class WorkerNondeterminismRule(ProjectRule):
    id = "REPRO105"
    name = "worker-nondeterminism"
    severity = Severity.ERROR
    rationale = (
        "code reachable from a SweepExecutor worker entry runs in N "
        "processes: module-level mutable globals silently fork per "
        "process, wall clocks and unordered-set iteration differ per "
        "worker — any of them breaks the workers=1 == workers=N "
        "determinism contract."
    )

    def check_project(self, modules: Sequence[SourceModule]) -> Iterator[Finding]:
        indexes = {m.name: _ModuleIndex(m) for m in modules}

        # Resolve a called simple name to (module_name, function_name).
        def resolve(index: _ModuleIndex, name: str) -> Optional[Tuple[str, str]]:
            if name in index.functions:
                return (index.module.name, name)
            if name in index.imported_functions:
                suffix, original = index.imported_functions[name]
                tail = suffix.split(".")[-1] if suffix else ""
                for mod_name, other in indexes.items():
                    if original in other.functions and (
                        not tail
                        or mod_name == suffix
                        or mod_name.endswith("." + tail)
                        or mod_name.split(".")[-1] == tail
                    ):
                        return (mod_name, original)
            return None

        # Breadth-first over the project call graph from worker entries.
        queue: List[Tuple[str, str, str]] = []  # (module, function, entry)
        for index in indexes.values():
            for entry in index.worker_entries:
                target = resolve(index, entry)
                if target is not None:
                    queue.append((*target, entry))
        visited: Set[Tuple[str, str]] = set()
        reachable: List[Tuple[str, str, str]] = []
        while queue:
            mod_name, fn_name, entry = queue.pop(0)
            if (mod_name, fn_name) in visited:
                continue
            visited.add((mod_name, fn_name))
            reachable.append((mod_name, fn_name, entry))
            index = indexes[mod_name]
            fn = index.functions[fn_name]
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    name = _call_name(node)
                    if name:
                        target = resolve(index, name)
                        if target is not None and target not in visited:
                            queue.append((*target, entry))

        for mod_name, fn_name, entry in reachable:
            index = indexes[mod_name]
            yield from self._check_function(
                index.module, index, fn_name, entry
            )

    def _check_function(
        self,
        module: SourceModule,
        index: _ModuleIndex,
        fn_name: str,
        entry: str,
    ) -> Iterator[Finding]:
        fn = index.functions[fn_name]
        via = f" (reachable from worker entry '{entry}')"
        # Names shadowed by parameters or local binds are not globals.
        local_names: Set[str] = set()
        args = fn.args
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            local_names.add(a.arg)
        if args.vararg:
            local_names.add(args.vararg.arg)
        if args.kwarg:
            local_names.add(args.kwarg.arg)
        declared_global: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                local_names.add(node.id)
        local_names -= declared_global

        flagged: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and node.id in index.mutable_globals:
                if node.id in local_names or node.id in flagged:
                    continue
                flagged.add(node.id)
                yield self.finding(
                    module,
                    node,
                    f"worker-reachable function '{fn_name}' touches "
                    f"module-level mutable global '{node.id}'{via}: each "
                    f"pool process sees its own copy and results may "
                    f"depend on sharding",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "time"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "time"
            ):
                yield self.finding(
                    module,
                    node,
                    f"worker-reachable function '{fn_name}' reads the wall "
                    f"clock (time.time){via}: worker-dependent values leak "
                    f"into results — pass timestamps in from the parent",
                )
            elif isinstance(node, ast.For) and self._iterates_set(node.iter):
                yield self.finding(
                    module,
                    node,
                    f"worker-reachable function '{fn_name}' iterates an "
                    f"unordered set{via}: iteration order varies per "
                    f"process (PYTHONHASHSEED) — sort first",
                )

    @staticmethod
    def _iterates_set(iter_node: ast.AST) -> bool:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("set", "frozenset")
        )


# ----------------------------------------------------------------------
# REPRO106: __all__ vs. public-name drift
# ----------------------------------------------------------------------

#: Script-style files conventionally exempt from the __all__ contract.
_ALL_EXEMPT_BASENAMES = {"__main__.py", "conftest.py", "setup.py"}


class DunderAllDriftRule(ModuleRule):
    id = "REPRO106"
    name = "dunder-all-drift"
    severity = Severity.WARNING
    rationale = (
        "__all__ is the package's public-API contract: stale names break "
        "star-imports, missing names hide API from docs and from this "
        "linter's downstream consumers."
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.basename in _ALL_EXEMPT_BASENAMES:
            return

        bound: Set[str] = set()
        public: List[Tuple[str, ast.AST]] = []
        reexported: List[Tuple[str, ast.AST]] = []
        all_node: Optional[ast.AST] = None
        all_names: Optional[List[str]] = None

        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
                if not node.name.startswith("_"):
                    public.append((node.name, node))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "__all__":
                        all_node = node
                        try:
                            value = ast.literal_eval(node.value)
                            all_names = [str(v) for v in value]
                        except (ValueError, TypeError):
                            all_names = None  # dynamic __all__: skip checks
                        continue
                    bound.add(target.id)
                    if not target.id.startswith("_"):
                        public.append((target.id, node))
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if node.target.id != "__all__":
                    bound.add(node.target.id)
                    if not node.target.id.startswith("_"):
                        public.append((node.target.id, node))
                else:
                    all_node = node
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    bound.add(local)
                    if not local.startswith("_"):
                        reexported.append((local, node))

        if all_node is None or all_names is None:
            exported = public + (reexported if module.is_package_init else [])
            if all_names is None and all_node is not None:
                return  # dynamic __all__ — nothing checkable
            if exported:
                yield Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=module.path,
                    line=1,
                    col=0,
                    message=(
                        f"module defines {len(exported)} public name(s) but "
                        f"no __all__ — declare the public API explicitly"
                    ),
                )
            return

        seen_all = set(all_names)
        for name in all_names:
            if name not in bound:
                yield self.finding(
                    module,
                    all_node,
                    f"__all__ lists {name!r} but the module never binds it "
                    f"(stale export breaks 'from {module.name} import *')",
                )
        candidates = public + (reexported if module.is_package_init else [])
        reported: Set[str] = set()
        for name, node in candidates:
            if name not in seen_all and name not in reported:
                reported.add(name)
                yield self.finding(
                    module,
                    node,
                    f"public name {name!r} is missing from __all__ "
                    f"(API drift)",
                )


def default_rules() -> List[Rule]:
    """The full domain registry, in rule-id order."""
    return [
        FloatEqualityRule(),
        MutableDefaultArgRule(),
        OverbroadExceptRule(),
        UnseededRngRule(),
        WorkerNondeterminismRule(),
        DunderAllDriftRule(),
    ]
