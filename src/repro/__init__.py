"""repro — a full reproduction of *ReBudget: Trading Off Efficiency vs.
Fairness in Market-Based Multicore Resource Allocation via Runtime Budget
Reassignment* (Wang & Martínez, ASPLOS 2016).

Subpackages
-----------
``repro.core``
    The proportional-share market, equilibrium search, MUR/MBR metrics,
    theoretical bounds (Theorems 1 & 2), the ReBudget loop, and all
    baseline mechanisms.
``repro.utility``
    Concave utility-function framework, including Talus-style upper
    convex hulls of sampled curves.
``repro.cmp``
    The multicore substrate: cache models (UMON shadow tags, Talus,
    Futility Scaling), DVFS power/thermal models, DRAM timing, an
    analytic core model, and the SPEC-like synthetic application suite.
``repro.workloads``
    C/P/B/N application classification and multiprogrammed bundle
    generation (6 categories x 40 bundles).
``repro.sim``
    The execution-driven epoch simulator with 1 ms re-allocation.
``repro.analysis``
    Experiment harness regenerating every figure and table in the
    paper's evaluation.
"""

from . import analysis, cmp, core, sim, utility, workloads
from .core import (
    AllocationProblem,
    EqualBudget,
    EqualShare,
    Market,
    MaxEfficiency,
    Player,
    ReBudgetConfig,
    ReBudgetMechanism,
    Resource,
    ResourceSet,
    ef_lower_bound,
    envy_freeness,
    find_equilibrium,
    market_budget_range,
    market_utility_range,
    poa_lower_bound,
    run_rebudget,
    standard_mechanism_suite,
)
from .exceptions import ConvergenceError, MarketConfigurationError, ReproError

__version__ = "1.0.0"

__all__ = [
    "core",
    "utility",
    "cmp",
    "workloads",
    "sim",
    "analysis",
    "Market",
    "Player",
    "Resource",
    "ResourceSet",
    "find_equilibrium",
    "run_rebudget",
    "ReBudgetConfig",
    "ReBudgetMechanism",
    "AllocationProblem",
    "EqualShare",
    "EqualBudget",
    "MaxEfficiency",
    "standard_mechanism_suite",
    "envy_freeness",
    "market_utility_range",
    "market_budget_range",
    "poa_lower_bound",
    "ef_lower_bound",
    "ReproError",
    "MarketConfigurationError",
    "ConvergenceError",
    "__version__",
]
