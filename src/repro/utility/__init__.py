"""Utility-function framework: interfaces, parametric families, tabulated
curves, and upper-convex-hull (Talus-style) convexification."""

from .base import (
    EVAL_COUNTERS,
    EvalCounters,
    UtilityFunction,
    is_concave_on_grid,
    is_nondecreasing_on_grid,
    numeric_gradient,
    numeric_gradient_batch,
)
from .batch import BatchedUtilitySet, StackedGrids
from .convex_hull import PiecewiseLinearConcave, hull_interpolate, upper_convex_hull
from .functions import (
    AdditiveUtility,
    CobbDouglasUtility,
    LinearUtility,
    LogUtility,
    PowerUtility,
    SaturatingUtility,
    ScaledUtility,
)
from .tabular import GridUtility2D, HullUtility1D, TabularUtility1D, grid_bilinear_batch

__all__ = [
    "UtilityFunction",
    "EvalCounters",
    "EVAL_COUNTERS",
    "numeric_gradient",
    "numeric_gradient_batch",
    "BatchedUtilitySet",
    "StackedGrids",
    "grid_bilinear_batch",
    "is_concave_on_grid",
    "is_nondecreasing_on_grid",
    "upper_convex_hull",
    "hull_interpolate",
    "PiecewiseLinearConcave",
    "LinearUtility",
    "LogUtility",
    "PowerUtility",
    "CobbDouglasUtility",
    "SaturatingUtility",
    "AdditiveUtility",
    "ScaledUtility",
    "TabularUtility1D",
    "HullUtility1D",
    "GridUtility2D",
]
