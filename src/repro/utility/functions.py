"""Parametric utility-function families.

These closed-form concave utilities serve three purposes:

* unit and property tests of the market core against functions whose
  equilibria can be reasoned about analytically;
* synthetic markets for the theory benchmarks (Zhang's ``1/sqrt(N)``
  Price-of-Anarchy scaling, Theorem 1/2 bound checks);
* the Cobb-Douglas family doubles as the model class fitted by the
  Elasticities-Proportional baseline of Zahedi & Lee, which the paper
  discusses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import EVAL_COUNTERS, UtilityFunction

__all__ = [
    "LinearUtility",
    "LogUtility",
    "PowerUtility",
    "CobbDouglasUtility",
    "SaturatingUtility",
    "AdditiveUtility",
    "ScaledUtility",
]


class LinearUtility(UtilityFunction):
    """``U(r) = sum_j w_j * r_j`` — the hardest case for proportional markets.

    Linear utilities are exactly the ``W_i`` functions used in the proof of
    Theorem 1; markets of linear players achieve the PoA bound tightly.
    """

    def __init__(self, weights: Sequence[float]):
        self.weights = np.asarray(weights, dtype=float)
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")
        self.num_resources = self.weights.size

    def value(self, allocation: Sequence[float]) -> float:
        return float(np.dot(self.weights, np.asarray(allocation, dtype=float)))

    def gradient(self, allocation: Sequence[float]) -> np.ndarray:
        return self.weights.copy()

    def value_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_value_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return points @ self.weights

    def gradient_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_gradient_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return np.tile(self.weights, (points.shape[0], 1))

    def __repr__(self) -> str:
        return f"LinearUtility(weights={self.weights.tolist()})"


class LogUtility(UtilityFunction):
    """``U(r) = sum_j w_j * log(1 + r_j / s_j)`` — strictly concave."""

    def __init__(self, weights: Sequence[float], scales: Sequence[float] | None = None):
        self.weights = np.asarray(weights, dtype=float)
        self.scales = (
            np.ones_like(self.weights)
            if scales is None
            else np.asarray(scales, dtype=float)
        )
        if np.any(self.weights < 0) or np.any(self.scales <= 0):
            raise ValueError("weights must be >= 0 and scales > 0")
        self.num_resources = self.weights.size

    def value(self, allocation: Sequence[float]) -> float:
        r = np.asarray(allocation, dtype=float)
        return float(np.sum(self.weights * np.log1p(r / self.scales)))

    def gradient(self, allocation: Sequence[float]) -> np.ndarray:
        r = np.asarray(allocation, dtype=float)
        return self.weights / (self.scales + r)

    def value_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_value_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return np.sum(self.weights * np.log1p(points / self.scales), axis=-1)

    def gradient_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_gradient_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return self.weights / (self.scales + points)

    def __repr__(self) -> str:
        return f"LogUtility(weights={self.weights.tolist()}, scales={self.scales.tolist()})"


class PowerUtility(UtilityFunction):
    """``U(r) = sum_j w_j * r_j ** a_j`` with exponents ``0 < a_j <= 1``."""

    def __init__(self, weights: Sequence[float], exponents: Sequence[float]):
        self.weights = np.asarray(weights, dtype=float)
        self.exponents = np.asarray(exponents, dtype=float)
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")
        if np.any(self.exponents <= 0) or np.any(self.exponents > 1):
            raise ValueError("exponents must lie in (0, 1] for concavity")
        self.num_resources = self.weights.size

    def value(self, allocation: Sequence[float]) -> float:
        r = np.asarray(allocation, dtype=float)
        return float(np.sum(self.weights * np.power(np.maximum(r, 0.0), self.exponents)))

    def gradient(self, allocation: Sequence[float]) -> np.ndarray:
        r = np.maximum(np.asarray(allocation, dtype=float), 1e-12)
        return self.weights * self.exponents * np.power(r, self.exponents - 1.0)

    def value_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_value_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return np.sum(
            self.weights * np.power(np.maximum(points, 0.0), self.exponents), axis=-1
        )

    def gradient_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.maximum(np.asarray(allocations, dtype=float), 1e-12)
        EVAL_COUNTERS.batch_gradient_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return self.weights * self.exponents * np.power(points, self.exponents - 1.0)

    def __repr__(self) -> str:
        return f"PowerUtility(weights={self.weights.tolist()}, exponents={self.exponents.tolist()})"


class CobbDouglasUtility(UtilityFunction):
    """``U(r) = A * prod_j r_j ** e_j`` with elasticities ``e_j >= 0``.

    Concave when ``sum_j e_j <= 1``.  This is the model class assumed by
    the Elasticities-Proportional mechanism [Zahedi & Lee, ASPLOS'14];
    the paper's critique is that real cache/power utilities do not always
    curve-fit well to it.
    """

    def __init__(self, elasticities: Sequence[float], scale: float = 1.0):
        self.elasticities = np.asarray(elasticities, dtype=float)
        if np.any(self.elasticities < 0):
            raise ValueError("elasticities must be non-negative")
        if self.elasticities.sum() > 1.0 + 1e-12:
            raise ValueError("sum of elasticities must be <= 1 for concavity")
        self.scale = float(scale)
        self.num_resources = self.elasticities.size

    def value(self, allocation: Sequence[float]) -> float:
        r = np.maximum(np.asarray(allocation, dtype=float), 0.0)
        return float(self.scale * np.prod(np.power(r, self.elasticities)))

    def gradient(self, allocation: Sequence[float]) -> np.ndarray:
        r = np.maximum(np.asarray(allocation, dtype=float), 1e-12)
        u = self.scale * np.prod(np.power(r, self.elasticities))
        return u * self.elasticities / r

    def value_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.maximum(np.asarray(allocations, dtype=float), 0.0)
        EVAL_COUNTERS.batch_value_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return self.scale * np.prod(np.power(points, self.elasticities), axis=-1)

    def gradient_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.maximum(np.asarray(allocations, dtype=float), 1e-12)
        EVAL_COUNTERS.batch_gradient_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        u = self.scale * np.prod(np.power(points, self.elasticities), axis=-1)
        return u[:, None] * self.elasticities / points

    def __repr__(self) -> str:
        return f"CobbDouglasUtility(elasticities={self.elasticities.tolist()}, scale={self.scale})"


class SaturatingUtility(UtilityFunction):
    """``U(r) = sum_j w_j * min(r_j, cap_j) / cap_j`` — ramps then saturates.

    Piecewise-linear concave.  This is the shape of a *convexified*
    working-set cliff (what Talus produces for an mcf-like application),
    so it appears frequently in tests.
    """

    def __init__(self, weights: Sequence[float], caps: Sequence[float]):
        self.weights = np.asarray(weights, dtype=float)
        self.caps = np.asarray(caps, dtype=float)
        if np.any(self.caps <= 0):
            raise ValueError("caps must be positive")
        self.num_resources = self.weights.size

    def value(self, allocation: Sequence[float]) -> float:
        r = np.asarray(allocation, dtype=float)
        return float(np.sum(self.weights * np.minimum(r, self.caps) / self.caps))

    def gradient(self, allocation: Sequence[float]) -> np.ndarray:
        r = np.asarray(allocation, dtype=float)
        return np.where(r < self.caps, self.weights / self.caps, 0.0)

    def value_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_value_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return np.sum(self.weights * np.minimum(points, self.caps) / self.caps, axis=-1)

    def gradient_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_gradient_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return np.where(points < self.caps, self.weights / self.caps, 0.0)

    def __repr__(self) -> str:
        return f"SaturatingUtility(weights={self.weights.tolist()}, caps={self.caps.tolist()})"


class AdditiveUtility(UtilityFunction):
    """Sum of independent single-resource utilities, one per resource.

    Composes 1-D utilities (e.g. a tabulated cache curve and an analytic
    power curve) into one multi-resource player utility.
    """

    def __init__(self, components: Sequence[UtilityFunction]):
        for c in components:
            if c.num_resources != 1:
                raise ValueError("AdditiveUtility components must be single-resource")
        self.components = list(components)
        self.num_resources = len(self.components)

    def value(self, allocation: Sequence[float]) -> float:
        return float(sum(c.value((r,)) for c, r in zip(self.components, allocation)))

    def gradient(self, allocation: Sequence[float]) -> np.ndarray:
        return np.array(
            [c.gradient((r,))[0] for c, r in zip(self.components, allocation)]
        )

    def value_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_value_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        # Left-to-right accumulation matches the scalar sum() order.
        total = np.zeros(points.shape[0])
        for j, component in enumerate(self.components):
            total = total + component.value_batch(points[:, j : j + 1])
        return total

    def gradient_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_gradient_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        columns = [
            component.gradient_batch(points[:, j : j + 1])[:, 0]
            for j, component in enumerate(self.components)
        ]
        return np.stack(columns, axis=1)

    def __repr__(self) -> str:
        return f"AdditiveUtility({self.components!r})"


class ScaledUtility(UtilityFunction):
    """``U(r) = scale * inner(r) + offset`` — affine wrapper.

    Used for normalizing utilities (e.g. to IPC_alone) without touching the
    wrapped implementation; preserves concavity for ``scale >= 0``.
    """

    def __init__(self, inner: UtilityFunction, scale: float = 1.0, offset: float = 0.0):
        if scale < 0:
            raise ValueError("scale must be non-negative to preserve concavity")
        self.inner = inner
        self.scale = float(scale)
        self.offset = float(offset)
        self.num_resources = inner.num_resources

    def value(self, allocation: Sequence[float]) -> float:
        return self.scale * self.inner.value(allocation) + self.offset

    def gradient(self, allocation: Sequence[float]) -> np.ndarray:
        return self.scale * self.inner.gradient(allocation)

    def value_batch(self, allocations: np.ndarray) -> np.ndarray:
        EVAL_COUNTERS.batch_value_calls += 1
        EVAL_COUNTERS.batch_points += np.asarray(allocations).shape[0]
        return self.scale * self.inner.value_batch(allocations) + self.offset

    def gradient_batch(self, allocations: np.ndarray) -> np.ndarray:
        EVAL_COUNTERS.batch_gradient_calls += 1
        EVAL_COUNTERS.batch_points += np.asarray(allocations).shape[0]
        return self.scale * self.inner.gradient_batch(allocations)

    def __repr__(self) -> str:
        return f"ScaledUtility({self.inner!r}, scale={self.scale}, offset={self.offset})"
