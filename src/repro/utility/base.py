"""Utility-function framework.

The market framework of Section 2 of the paper assumes each player has a
utility function ``U_i(r_i)`` over a vector of resource allocations that is
concave, non-decreasing, and continuous.  This module defines the abstract
interface every utility implementation in this package satisfies, plus
generic numeric helpers (gradients, concavity probes) shared by the
parametric and tabulated implementations.

A :class:`UtilityFunction` maps an allocation vector ``r`` (one entry per
resource, in resource units such as bytes of cache or watts of power) to a
scalar utility.  In the multicore instantiation utilities are normalized
IPC, so values lie in ``[0, 1]``, but the core market code never relies on
that range.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

__all__ = [
    "UtilityFunction",
    "numeric_gradient",
    "is_concave_on_grid",
    "is_nondecreasing_on_grid",
]

#: Default relative step used by the numeric differentiator.
_GRADIENT_EPS = 1e-6


class UtilityFunction(abc.ABC):
    """A concave, non-decreasing, continuous utility over M resources.

    Subclasses must implement :meth:`value`; :meth:`gradient` has a numeric
    default that subclasses with analytic derivatives should override.
    """

    #: Number of resources this utility is defined over.
    num_resources: int = 1

    @abc.abstractmethod
    def value(self, allocation: Sequence[float]) -> float:
        """Return the utility of ``allocation`` (length ``num_resources``)."""

    def gradient(self, allocation: Sequence[float]) -> np.ndarray:
        """Return the marginal utility of each resource at ``allocation``.

        The default implementation is a central finite difference that
        falls back to one-sided differences at the domain boundary (we
        never evaluate at negative allocations).
        """
        return numeric_gradient(self.value, allocation)

    def marginal(self, allocation: Sequence[float], resource: int) -> float:
        """Marginal utility of a single ``resource`` at ``allocation``."""
        return float(self.gradient(allocation)[resource])

    def __call__(self, allocation: Sequence[float]) -> float:
        return self.value(allocation)


def numeric_gradient(func, allocation: Sequence[float], eps: float = _GRADIENT_EPS) -> np.ndarray:
    """Central-difference gradient of ``func`` at ``allocation``.

    Steps are scaled to the magnitude of each coordinate so that the
    differentiator behaves sensibly for resources measured in bytes
    (~1e6) and in watts (~1e0) alike.  Coordinates are clamped at zero:
    if a backward step would go negative we use a forward difference.
    """
    point = np.asarray(allocation, dtype=float)
    grad = np.empty_like(point)
    for j in range(point.size):
        step = eps * max(1.0, abs(point[j]))
        lo = point.copy()
        hi = point.copy()
        if point[j] - step >= 0.0:
            lo[j] -= step
            hi[j] += step
            grad[j] = (func(hi) - func(lo)) / (2.0 * step)
        else:
            hi[j] += step
            grad[j] = (func(hi) - func(point)) / step
    return grad


def is_nondecreasing_on_grid(func, grids: Sequence[np.ndarray], tol: float = 1e-9) -> bool:
    """Check that ``func`` is non-decreasing along each axis of a grid.

    ``grids`` holds one sorted 1-D sample array per resource.  Every grid
    point is evaluated; the check passes if increasing any single
    coordinate never decreases utility by more than ``tol``.
    """
    values = _tabulate(func, grids)
    for axis in range(values.ndim):
        diffs = np.diff(values, axis=axis)
        if np.any(diffs < -tol):
            return False
    return True


def is_concave_on_grid(func, grids: Sequence[np.ndarray], tol: float = 1e-9) -> bool:
    """Check midpoint concavity of ``func`` on the cartesian grid.

    For every pair of grid points ``a, b`` whose midpoint is evaluable we
    require ``f((a+b)/2) >= (f(a)+f(b))/2 - tol``.  For 1-D grids this
    reduces to the standard second-difference test, which we use directly
    because it is much cheaper.
    """
    if len(grids) == 1:
        xs = np.asarray(grids[0], dtype=float)
        ys = np.array([func((x,)) for x in xs])
        # Slopes between consecutive samples must be non-increasing.
        slopes = np.diff(ys) / np.diff(xs)
        return bool(np.all(np.diff(slopes) <= tol))

    points = _grid_points(grids)
    values = np.array([func(p) for p in points])
    rng = np.random.default_rng(0)
    n = len(points)
    # Exhaustive pairing is quadratic; sample pairs for large grids.
    max_pairs = 2000
    if n * (n - 1) // 2 <= max_pairs:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    else:
        pairs = [tuple(sorted(rng.choice(n, size=2, replace=False))) for _ in range(max_pairs)]
    for i, j in pairs:
        mid = (points[i] + points[j]) / 2.0
        if func(mid) < (values[i] + values[j]) / 2.0 - tol:
            return False
    return True


def _grid_points(grids: Sequence[np.ndarray]) -> np.ndarray:
    mesh = np.meshgrid(*[np.asarray(g, dtype=float) for g in grids], indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=-1)


def _tabulate(func, grids: Sequence[np.ndarray]) -> np.ndarray:
    points = _grid_points(grids)
    shape = tuple(len(g) for g in grids)
    return np.array([func(p) for p in points]).reshape(shape)
