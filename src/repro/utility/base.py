"""Utility-function framework.

The market framework of Section 2 of the paper assumes each player has a
utility function ``U_i(r_i)`` over a vector of resource allocations that is
concave, non-decreasing, and continuous.  This module defines the abstract
interface every utility implementation in this package satisfies, plus
generic numeric helpers (gradients, concavity probes) shared by the
parametric and tabulated implementations.

A :class:`UtilityFunction` maps an allocation vector ``r`` (one entry per
resource, in resource units such as bytes of cache or watts of power) to a
scalar utility.  In the multicore instantiation utilities are normalized
IPC, so values lie in ``[0, 1]``, but the core market code never relies on
that range.
"""

from __future__ import annotations

import abc
from typing import Dict, Sequence

import numpy as np

__all__ = [
    "UtilityFunction",
    "EvalCounters",
    "EVAL_COUNTERS",
    "numeric_gradient",
    "numeric_gradient_batch",
    "is_concave_on_grid",
    "is_nondecreasing_on_grid",
]

#: Default relative step used by the numeric differentiator.
_GRADIENT_EPS = 1e-6


class EvalCounters:
    """Running tally of utility-layer evaluations made by the market stack.

    The equilibrium search snapshots these around every run so
    :class:`~repro.core.equilibrium.EquilibriumResult` can report how many
    Python-level utility evaluations the search cost — benches and
    profilers read the result instead of monkeypatching the utility
    classes.  Counting semantics:

    * ``scalar_value_calls`` / ``scalar_gradient_calls`` — one per scalar
      ``value()`` / ``gradient()`` dispatch made through the market seams
      (``marginal_utility_of_bids``, ``Market.utilities``) or by numeric
      differentiation, and one per point when a batched entry point has
      to fall back to the scalar loop.
    * ``batch_value_calls`` / ``batch_gradient_calls`` — one per
      *vectorized* dispatch (``value_batch`` / ``gradient_batch`` with a
      fast override, or a stacked-grid group evaluation), however many
      points it covers.
    * ``batch_points`` — total points covered by those vectorized
      dispatches.

    Counters are per-process (each :class:`~repro.exec.SweepExecutor`
    worker tallies its own) and are never consulted by the allocation
    logic, so they cannot affect results.
    """

    __slots__ = (
        "scalar_value_calls",
        "scalar_gradient_calls",
        "batch_value_calls",
        "batch_gradient_calls",
        "batch_points",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.scalar_value_calls = 0
        self.scalar_gradient_calls = 0
        self.batch_value_calls = 0
        self.batch_gradient_calls = 0
        self.batch_points = 0

    def snapshot(self) -> Dict[str, int]:
        """The current tallies as a plain dict (JSON-ready)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def since(self, snapshot: Dict[str, int]) -> Dict[str, int]:
        """Per-field deltas accumulated after ``snapshot`` was taken.

        The returned dict additionally carries ``scalar_calls`` /
        ``batch_calls`` / ``total_calls`` roll-ups, which is what the
        hot-loop bench's ">= 3x fewer Python-level utility calls" claim
        is measured on.
        """
        delta = {
            name: getattr(self, name) - snapshot.get(name, 0)
            for name in self.__slots__
        }
        delta["scalar_calls"] = (
            delta["scalar_value_calls"] + delta["scalar_gradient_calls"]
        )
        delta["batch_calls"] = (
            delta["batch_value_calls"] + delta["batch_gradient_calls"]
        )
        delta["total_calls"] = delta["scalar_calls"] + delta["batch_calls"]
        return delta


#: Process-global tally every seam increments.  A plain attribute-bearing
#: object (not a dict) so the hot path pays one attribute add per event.
EVAL_COUNTERS = EvalCounters()


class UtilityFunction(abc.ABC):
    """A concave, non-decreasing, continuous utility over M resources.

    Subclasses must implement :meth:`value`; :meth:`gradient` has a numeric
    default that subclasses with analytic derivatives should override.
    """

    #: Number of resources this utility is defined over.
    num_resources: int = 1

    @abc.abstractmethod
    def value(self, allocation: Sequence[float]) -> float:
        """Return the utility of ``allocation`` (length ``num_resources``)."""

    def gradient(self, allocation: Sequence[float]) -> np.ndarray:
        """Return the marginal utility of each resource at ``allocation``.

        The default implementation is a central finite difference that
        falls back to one-sided differences at the domain boundary (we
        never evaluate at negative allocations).
        """
        return numeric_gradient(self.value, allocation)

    def marginal(self, allocation: Sequence[float], resource: int) -> float:
        """Marginal utility of a single ``resource`` at ``allocation``."""
        return float(self.gradient(allocation)[resource])

    def value_batch(self, allocations: np.ndarray) -> np.ndarray:
        """Utilities of a ``(K, num_resources)`` batch of allocations.

        Returns a ``(K,)`` vector.  Point ``k`` of the result equals
        ``value(allocations[k])`` exactly — subclasses with vectorized
        overrides mirror the scalar arithmetic (same clamping, same
        operation order) so the two paths agree bitwise; the generic
        fallback here simply loops the scalar method (and counts each
        point as a scalar evaluation, so batched callers that land on it
        do not under-report their cost).
        """
        points = _as_point_matrix(allocations, self.num_resources)
        EVAL_COUNTERS.scalar_value_calls += points.shape[0]
        return np.array([self.value(p) for p in points], dtype=float)

    def gradient_batch(self, allocations: np.ndarray) -> np.ndarray:
        """Per-resource marginals of a ``(K, num_resources)`` batch.

        Returns a ``(K, num_resources)`` matrix; row ``k`` equals
        ``gradient(allocations[k])`` exactly.  The generic fallback loops
        the scalar method, so every subclass — including external ones
        that only implement the scalar interface — is batch-callable.
        """
        points = _as_point_matrix(allocations, self.num_resources)
        EVAL_COUNTERS.scalar_gradient_calls += points.shape[0]
        if points.shape[0] == 0:
            return np.zeros_like(points)
        return np.stack([np.asarray(self.gradient(p), dtype=float) for p in points])

    def __call__(self, allocation: Sequence[float]) -> float:
        return self.value(allocation)


def _as_point_matrix(allocations: np.ndarray, num_resources: int) -> np.ndarray:
    """Validate a batched-evaluation input as a ``(K, M)`` float matrix."""
    points = np.asarray(allocations, dtype=float)
    if points.ndim != 2 or points.shape[1] != num_resources:
        raise ValueError(
            f"batched evaluation expects a (K, {num_resources}) matrix, "
            f"got shape {points.shape}"
        )
    return points


def numeric_gradient(func, allocation: Sequence[float], eps: float = _GRADIENT_EPS) -> np.ndarray:
    """Central-difference gradient of ``func`` at ``allocation``.

    Steps are scaled to the magnitude of each coordinate so that the
    differentiator behaves sensibly for resources measured in bytes
    (~1e6) and in watts (~1e0) alike.  Coordinates are clamped at zero:
    if a backward step would go negative we use a forward difference.
    """
    point = np.asarray(allocation, dtype=float)
    grad = np.empty_like(point)
    for j in range(point.size):
        step = eps * max(1.0, abs(point[j]))
        lo = point.copy()
        hi = point.copy()
        EVAL_COUNTERS.scalar_value_calls += 2
        if point[j] - step >= 0.0:
            lo[j] -= step
            hi[j] += step
            grad[j] = (func(hi) - func(lo)) / (2.0 * step)
        else:
            hi[j] += step
            grad[j] = (func(hi) - func(point)) / step
    return grad


def numeric_gradient_batch(
    value_batch, points: np.ndarray, eps: float = _GRADIENT_EPS
) -> np.ndarray:
    """Vectorized central-difference gradients at a ``(K, M)`` batch.

    Mirrors :func:`numeric_gradient` coordinate for coordinate — the same
    relative step, the same forward-difference fallback at the zero
    boundary, the same operation order — so the batched gradients agree
    bitwise with the scalar ones whenever ``value_batch`` agrees bitwise
    with the scalar ``value``.  All ``2 * K * M`` probe points are
    evaluated in a single ``value_batch`` dispatch.
    """
    points = np.asarray(points, dtype=float)
    n_points, n_dims = points.shape
    if n_points == 0:
        return np.zeros_like(points)
    steps = eps * np.maximum(1.0, np.abs(points))          # (K, M)
    forward = points - steps < 0.0                          # (K, M)
    # Probe layout: for each dim j, K hi-points then K lo-points.  The
    # lo-point of a forward-difference coordinate is the point itself.
    probes = np.empty((2 * n_dims * n_points, n_dims), dtype=float)
    for j in range(n_dims):
        hi = points.copy()
        hi[:, j] += steps[:, j]
        lo = points.copy()
        lo[:, j] -= np.where(forward[:, j], 0.0, steps[:, j])
        base = 2 * j * n_points
        probes[base : base + n_points] = hi
        probes[base + n_points : base + 2 * n_points] = lo
    values = np.asarray(value_batch(probes), dtype=float)
    grad = np.empty_like(points)
    for j in range(n_dims):
        base = 2 * j * n_points
        f_hi = values[base : base + n_points]
        f_lo = values[base + n_points : base + 2 * n_points]
        grad[:, j] = np.where(
            forward[:, j],
            (f_hi - f_lo) / steps[:, j],
            (f_hi - f_lo) / (2.0 * steps[:, j]),
        )
    return grad


def is_nondecreasing_on_grid(func, grids: Sequence[np.ndarray], tol: float = 1e-9) -> bool:
    """Check that ``func`` is non-decreasing along each axis of a grid.

    ``grids`` holds one sorted 1-D sample array per resource.  Every grid
    point is evaluated; the check passes if increasing any single
    coordinate never decreases utility by more than ``tol``.
    """
    values = _tabulate(func, grids)
    for axis in range(values.ndim):
        diffs = np.diff(values, axis=axis)
        if np.any(diffs < -tol):
            return False
    return True


def is_concave_on_grid(func, grids: Sequence[np.ndarray], tol: float = 1e-9) -> bool:
    """Check midpoint concavity of ``func`` on the cartesian grid.

    For every pair of grid points ``a, b`` whose midpoint is evaluable we
    require ``f((a+b)/2) >= (f(a)+f(b))/2 - tol``.  For 1-D grids this
    reduces to the standard second-difference test, which we use directly
    because it is much cheaper.
    """
    if len(grids) == 1:
        xs = np.asarray(grids[0], dtype=float)
        ys = np.array([func((x,)) for x in xs])
        # Slopes between consecutive samples must be non-increasing.
        slopes = np.diff(ys) / np.diff(xs)
        return bool(np.all(np.diff(slopes) <= tol))

    points = _grid_points(grids)
    values = np.array([func(p) for p in points])
    rng = np.random.default_rng(0)
    n = len(points)
    # Exhaustive pairing is quadratic; sample pairs for large grids.
    max_pairs = 2000
    if n * (n - 1) // 2 <= max_pairs:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    else:
        pairs = [tuple(sorted(rng.choice(n, size=2, replace=False))) for _ in range(max_pairs)]
    for i, j in pairs:
        mid = (points[i] + points[j]) / 2.0
        if func(mid) < (values[i] + values[j]) / 2.0 - tol:
            return False
    return True


def _grid_points(grids: Sequence[np.ndarray]) -> np.ndarray:
    mesh = np.meshgrid(*[np.asarray(g, dtype=float) for g in grids], indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=-1)


def _tabulate(func, grids: Sequence[np.ndarray]) -> np.ndarray:
    points = _grid_points(grids)
    shape = tuple(len(g) for g in grids)
    return np.array([func(p) for p in points]).reshape(shape)
