"""Cross-player batched utility evaluation (the hot-loop fast path).

A market clearing evaluates marginal utilities for *every* player at
every hill-climb step.  The per-player scalar path pays a stack of tiny
Python/numpy calls per player per step; this module compiles a fixed
player list into a :class:`BatchedUtilitySet` that answers "gradients of
players ``I`` at allocations ``A``" in as few vectorized dispatches as
possible:

* **Stacked grids** — :class:`~repro.utility.tabular.GridUtility2D`
  players whose grids share a *shape* (every core of a homogeneous chip,
  i.e. every Fig-4/Fig-5 player — the cache axis is common, the power
  axis is per-app) are stacked into ``(G, nx)`` / ``(G, ny)`` axis
  matrices and one ``(G, nx, ny)`` value tensor.  One vectorized
  central-difference evaluation then serves the whole group, however
  many players are active — the dominant-cell case collapses from ``N``
  numeric gradients (each 2M scalar ``value()`` calls) to two
  utility-layer dispatches total.
* **Shared objects** — players holding the *same* utility object (the
  synthetic theory markets) are evaluated with a single
  ``gradient_batch`` call.
* **Everything else** — one ``gradient_batch`` call per distinct
  utility; utilities without a vectorized override fall back to the
  scalar loop inside :meth:`UtilityFunction.gradient_batch`, so results
  are always defined (and counted honestly).

Every group path mirrors the scalar arithmetic operation for operation,
so batched gradients agree bitwise with per-player scalar gradients —
the property the lockstep bidder's strict mode asserts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .base import EVAL_COUNTERS, UtilityFunction, _GRADIENT_EPS
from .tabular import GridUtility2D

__all__ = ["BatchedUtilitySet", "StackedGrids"]


class StackedGrids:
    """Several same-shape 2-D grid utilities fused into one value tensor.

    Every grid contributes its own axes — only the sample *counts* must
    match — so one stack covers a whole heterogeneous-workload chip even
    though each app's power axis is scaled differently.
    """

    def __init__(self, grids: Sequence[GridUtility2D]):
        self.xs = np.stack([g.xs for g in grids])          # (G, nx)
        self.ys = np.stack([g.ys for g in grids])          # (G, ny)
        self.values = np.stack([g.values for g in grids])  # (G, nx, ny)

    def value_points(self, points: np.ndarray, owners: np.ndarray) -> np.ndarray:
        """Values of ``points[k]`` under grid ``owners[k]``.

        Mirrors :meth:`GridUtility2D.value` (clamp, clamped-index lookup,
        four-term bilinear blend) elementwise.  The cell index uses a
        broadcast count ``sum(axis <= x)`` — exactly
        ``searchsorted(axis, x, side="right")`` for a sorted axis — since
        numpy's searchsorted cannot look up a different axis per point.
        """
        EVAL_COUNTERS.batch_value_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        xs = self.xs[owners]                               # (K, nx)
        ys = self.ys[owners]                               # (K, ny)
        xc = np.clip(points[:, 0], xs[:, 0], xs[:, -1])
        yc = np.clip(points[:, 1], ys[:, 0], ys[:, -1])
        i = np.clip(np.sum(xs <= xc[:, None], axis=1) - 1, 0, xs.shape[1] - 2)
        j = np.clip(np.sum(ys <= yc[:, None], axis=1) - 1, 0, ys.shape[1] - 2)
        span = np.arange(points.shape[0])
        x0, x1 = xs[span, i], xs[span, i + 1]
        y0, y1 = ys[span, j], ys[span, j + 1]
        tx = (xc - x0) / (x1 - x0)
        ty = (yc - y0) / (y1 - y0)
        v00 = self.values[owners, i, j]
        v01 = self.values[owners, i, j + 1]
        v10 = self.values[owners, i + 1, j]
        v11 = self.values[owners, i + 1, j + 1]
        return (
            v00 * (1 - tx) * (1 - ty)
            + v10 * tx * (1 - ty)
            + v01 * (1 - tx) * ty
            + v11 * tx * ty
        )

    def gradient_points(self, points: np.ndarray, owners: np.ndarray) -> np.ndarray:
        """Numeric gradients of ``points[k]`` under grid ``owners[k]``.

        Mirrors :func:`~repro.utility.base.numeric_gradient` (the scalar
        default for :class:`GridUtility2D`): same relative step, same
        forward-difference fallback at zero, same operation order, with
        all ``4K`` probes evaluated in one :meth:`value_points` call.
        """
        EVAL_COUNTERS.batch_gradient_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        n_points, n_dims = points.shape
        steps = _GRADIENT_EPS * np.maximum(1.0, np.abs(points))
        forward = points - steps < 0.0
        probes = np.empty((2 * n_dims * n_points, n_dims), dtype=float)
        for j in range(n_dims):
            hi = points.copy()
            hi[:, j] += steps[:, j]
            lo = points.copy()
            lo[:, j] -= np.where(forward[:, j], 0.0, steps[:, j])
            base = 2 * j * n_points
            probes[base : base + n_points] = hi
            probes[base + n_points : base + 2 * n_points] = lo
        values = self.value_points(probes, np.tile(owners, 2 * n_dims))
        grad = np.empty_like(points)
        for j in range(n_dims):
            base = 2 * j * n_points
            f_hi = values[base : base + n_points]
            f_lo = values[base + n_points : base + 2 * n_points]
            grad[:, j] = np.where(
                forward[:, j],
                (f_hi - f_lo) / steps[:, j],
                (f_hi - f_lo) / (2.0 * steps[:, j]),
            )
        return grad


#: Group kinds in a compiled plan.
_STACKED = 0
_SHARED = 1


class BatchedUtilitySet:
    """A compiled batched-gradient evaluator for a fixed utility list.

    Build once per equilibrium search (the player list is fixed for the
    search's lifetime), then call :meth:`gradients` every lockstep
    iteration with whatever subset of players is still climbing.
    """

    def __init__(self, utilities: Sequence[UtilityFunction]):
        self.utilities: List[UtilityFunction] = list(utilities)
        if not self.utilities:
            raise ValueError("need at least one utility")
        self.num_resources = self.utilities[0].num_resources
        #: Group index of every player and the player's slot inside it.
        self._group_of = np.empty(len(self.utilities), dtype=np.intp)
        self._slot_of = np.zeros(len(self.utilities), dtype=np.intp)
        self._groups: List[tuple] = []
        self._compile()

    def _compile(self) -> None:
        # Stackable 2-D grids, one stack per grid shape (degenerate
        # single-sample axes take the np.interp branches in the scalar
        # path, so those grids stay out); same-object grids share a slot.
        stacks: dict = {}
        remaining: List[int] = []
        for idx, utility in enumerate(self.utilities):
            if (
                isinstance(utility, GridUtility2D)
                and utility.xs.size > 1
                and utility.ys.size > 1
            ):
                members, slot_by_id, rows = stacks.setdefault(
                    utility.values.shape, ([], {}, [])
                )
                slot = slot_by_id.get(id(utility))
                if slot is None:
                    slot = len(members)
                    slot_by_id[id(utility)] = slot
                    members.append(utility)
                rows.append(idx)
                self._slot_of[idx] = slot
            else:
                remaining.append(idx)

        for members, _, rows in stacks.values():
            group = len(self._groups)
            self._groups.append((_STACKED, StackedGrids(members)))
            self._group_of[rows] = group

        # Remaining players: one group per distinct utility object.
        group_by_id: dict = {}
        for idx in remaining:
            utility = self.utilities[idx]
            group = group_by_id.get(id(utility))
            if group is None:
                group = len(self._groups)
                group_by_id[id(utility)] = group
                self._groups.append((_SHARED, utility))
            self._group_of[idx] = group

    def gradients(
        self, allocations: np.ndarray, players: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``dU_i/dr`` for ``players[k]`` at allocation row ``k``.

        ``allocations`` is ``(K, M)`` with row ``k`` belonging to player
        ``players[k]`` (default: players ``0..K-1``).  Row ``k`` of the
        result equals ``utilities[players[k]].gradient(allocations[k])``
        bitwise for every built-in utility family.
        """
        allocations = np.asarray(allocations, dtype=float)
        if players is None:
            players = np.arange(allocations.shape[0])
        out = np.empty_like(allocations)
        group_of = self._group_of[players]
        if len(self._groups) == 1:
            selections = [np.arange(players.size)]
        else:
            selections = [
                np.flatnonzero(group_of == g) for g in range(len(self._groups))
            ]
        for group, rows in zip(self._groups, selections):
            if rows.size == 0:
                continue
            kind, evaluator = group
            if kind == _STACKED:
                out[rows] = evaluator.gradient_points(
                    allocations[rows], self._slot_of[players[rows]]
                )
            else:
                out[rows] = evaluator.gradient_batch(allocations[rows])
        return out
