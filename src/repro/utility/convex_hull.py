"""Upper-convex-hull computation for sampled 1-D utility curves.

This is the mathematical heart of the Talus convexification step
(Section 4.1.1 of the paper): given a cache utility sampled at discrete
partition sizes — which may be cliffy and non-concave, like *mcf*'s
working-set step — derive the *upper convex hull* (the smallest concave
majorant through a subset of sample points).  The hull vertices are the
"points of interest" (PoIs); Talus realizes any allocation between two
PoIs by time/stream-interleaving two shadow partitions, which makes the
achievable utility exactly the linear interpolation between the PoIs.

The hull of a set of ``(x, y)`` samples is computed with a monotone-chain
scan, keeping the points whose incremental slopes are strictly
decreasing.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["upper_convex_hull", "hull_interpolate", "PiecewiseLinearConcave"]


def upper_convex_hull(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Return the vertices of the upper convex hull of ``(xs, ys)``.

    ``xs`` must be strictly increasing.  The returned vertex arrays always
    include the first and last sample, and the piecewise-linear function
    through them is the least concave function that dominates every
    sample (``hull(x) >= y`` for all samples, with slopes non-increasing).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.ndim != 1 or xs.size != ys.size:
        raise ValueError("xs and ys must be 1-D arrays of equal length")
    if xs.size == 0:
        raise ValueError("need at least one sample")
    if np.any(np.diff(xs) <= 0):
        raise ValueError("xs must be strictly increasing")
    if xs.size == 1:
        return xs.copy(), ys.copy()

    # Monotone chain over points sorted by x: keep a stack whose
    # consecutive slopes are non-increasing (concave chain from above).
    stack: list[int] = []
    for k in range(xs.size):
        while len(stack) >= 2 and _turns_up(xs, ys, stack[-2], stack[-1], k):
            stack.pop()
        stack.append(k)
    idx = np.array(stack)
    return xs[idx], ys[idx]


def _turns_up(xs: np.ndarray, ys: np.ndarray, a: int, b: int, c: int) -> bool:
    """True if point ``b`` lies (weakly) below the chord ``a -> c``.

    In that case ``b`` is not a hull vertex of the *upper* hull.
    """
    cross = (xs[b] - xs[a]) * (ys[c] - ys[a]) - (ys[b] - ys[a]) * (xs[c] - xs[a])
    return cross >= 0.0


def hull_interpolate(
    hull_x: np.ndarray, hull_y: np.ndarray, x: float
) -> float:
    """Evaluate the piecewise-linear hull at ``x``.

    Values outside the sampled range are clamped to the end-point values:
    below the first PoI the utility is the first sample's (a player can
    always leave capacity unused), above the last PoI it saturates.
    """
    if x <= hull_x[0]:
        return float(hull_y[0])
    if x >= hull_x[-1]:
        return float(hull_y[-1])
    return float(np.interp(x, hull_x, hull_y))


class PiecewiseLinearConcave:
    """A concave piecewise-linear function defined by hull vertices.

    This is what the Talus layer hands to the market: continuous,
    non-decreasing (when built from a non-decreasing curve's hull) and
    concave, with O(log n) evaluation and exact sub-gradients.
    """

    def __init__(self, xs: Sequence[float], ys: Sequence[float]):
        hx, hy = upper_convex_hull(xs, ys)
        self.xs = hx
        self.ys = hy
        # Slopes of each hull segment; one fewer entry than vertices.
        if hx.size > 1:
            self.slopes = np.diff(hy) / np.diff(hx)
        else:
            self.slopes = np.zeros(0)

    @property
    def points_of_interest(self) -> Tuple[np.ndarray, np.ndarray]:
        """The Talus PoIs: hull vertex coordinates ``(x, y)``."""
        return self.xs.copy(), self.ys.copy()

    def value(self, x: float) -> float:
        return hull_interpolate(self.xs, self.ys, x)

    def value_batch(self, x: np.ndarray) -> np.ndarray:
        """Hull values at a 1-D batch of points.

        ``np.interp`` clamps to the end-point values exactly like
        :func:`hull_interpolate`, so this is the scalar path vectorized —
        the two agree bitwise.
        """
        return np.interp(np.asarray(x, dtype=float), self.xs, self.ys)

    def derivative_batch(self, x: np.ndarray) -> np.ndarray:
        """Right-derivatives at a 1-D batch of points (0 past the last PoI)."""
        x = np.asarray(x, dtype=float)
        if self.slopes.size == 0:
            return np.zeros_like(x)
        seg = np.clip(
            np.searchsorted(self.xs, x, side="right") - 1, 0, self.slopes.size - 1
        )
        return np.where(
            x >= self.xs[-1],
            0.0,
            np.where(x < self.xs[0], self.slopes[0], self.slopes[seg]),
        )

    def derivative(self, x: float) -> float:
        """Right-derivative at ``x`` (0 beyond the last vertex).

        Using the right-derivative makes the marginal utility reported at
        a vertex the gain from *adding* resources, which is what the
        bidding hill climb and ReBudget's lambda comparisons need.
        """
        if self.slopes.size == 0 or x >= self.xs[-1]:
            return 0.0
        if x < self.xs[0]:
            return float(self.slopes[0])
        seg = int(np.searchsorted(self.xs, x, side="right") - 1)
        seg = min(seg, self.slopes.size - 1)
        return float(self.slopes[seg])

    def bracketing_pois(self, x: float) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        """The two neighbouring PoIs around ``x`` (Talus shadow targets)."""
        if x <= self.xs[0]:
            return (self.xs[0], self.ys[0]), (self.xs[0], self.ys[0])
        if x >= self.xs[-1]:
            return (self.xs[-1], self.ys[-1]), (self.xs[-1], self.ys[-1])
        hi = int(np.searchsorted(self.xs, x, side="right"))
        lo = hi - 1
        return (self.xs[lo], self.ys[lo]), (self.xs[hi], self.ys[hi])

    def __call__(self, x: float) -> float:
        return self.value(x)
