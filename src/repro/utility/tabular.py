"""Tabulated utility functions built from sampled profiles.

The multicore substrate produces utilities as samples on a grid (IPC at
each cache-size x frequency point, Section 6's 90-point profile).  The
classes here wrap such samples into :class:`~repro.utility.base.UtilityFunction`
objects the market can consume:

* :class:`TabularUtility1D` — raw linear interpolation of a 1-D curve
  (possibly non-concave; what the cache looks like *before* Talus).
* :class:`HullUtility1D` — the Talus-convexified version.
* :class:`GridUtility2D` — bilinear interpolation over a 2-D sample grid,
  used for joint cache x power utilities.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import EVAL_COUNTERS, UtilityFunction, numeric_gradient_batch
from .convex_hull import PiecewiseLinearConcave

__all__ = ["TabularUtility1D", "HullUtility1D", "GridUtility2D", "grid_bilinear_batch"]


class TabularUtility1D(UtilityFunction):
    """Linear interpolation through ``(xs, ys)`` samples, clamped outside.

    Makes no concavity promise — it faithfully represents cliffy cache
    curves.  Use :class:`HullUtility1D` when the market needs concavity.
    """

    num_resources = 1

    def __init__(self, xs: Sequence[float], ys: Sequence[float]):
        self.xs = np.asarray(xs, dtype=float)
        self.ys = np.asarray(ys, dtype=float)
        if self.xs.ndim != 1 or self.xs.size != self.ys.size or self.xs.size == 0:
            raise ValueError("xs and ys must be non-empty 1-D arrays of equal length")
        if np.any(np.diff(self.xs) <= 0):
            raise ValueError("xs must be strictly increasing")

    def value(self, allocation: Sequence[float]) -> float:
        x = float(allocation[0])
        return float(np.interp(x, self.xs, self.ys))

    def gradient(self, allocation: Sequence[float]) -> np.ndarray:
        x = float(allocation[0])
        if x >= self.xs[-1] or self.xs.size == 1:
            return np.array([0.0])
        if x < self.xs[0]:
            return np.array([0.0])
        seg = int(np.searchsorted(self.xs, x, side="right") - 1)
        seg = min(seg, self.xs.size - 2)
        slope = (self.ys[seg + 1] - self.ys[seg]) / (self.xs[seg + 1] - self.xs[seg])
        return np.array([slope])

    def value_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_value_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return np.interp(points[:, 0], self.xs, self.ys)

    def gradient_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_gradient_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        x = points[:, 0]
        if self.xs.size == 1:
            return np.zeros_like(points)
        seg = np.clip(
            np.searchsorted(self.xs, x, side="right") - 1, 0, self.xs.size - 2
        )
        slopes = (self.ys[seg + 1] - self.ys[seg]) / (self.xs[seg + 1] - self.xs[seg])
        inside = (x >= self.xs[0]) & (x < self.xs[-1])
        return np.where(inside, slopes, 0.0)[:, None]

    def __repr__(self) -> str:
        return f"TabularUtility1D({self.xs.size} samples on [{self.xs[0]}, {self.xs[-1]}])"


class HullUtility1D(UtilityFunction):
    """The upper convex hull of a sampled curve — concave and continuous.

    This is the utility the market sees after Talus: linear between
    points of interest, saturating past the last one.
    """

    num_resources = 1

    def __init__(self, xs: Sequence[float], ys: Sequence[float]):
        self.hull = PiecewiseLinearConcave(xs, ys)

    def value(self, allocation: Sequence[float]) -> float:
        return self.hull.value(float(allocation[0]))

    def gradient(self, allocation: Sequence[float]) -> np.ndarray:
        return np.array([self.hull.derivative(float(allocation[0]))])

    def value_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_value_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return self.hull.value_batch(points[:, 0])

    def gradient_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_gradient_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return self.hull.derivative_batch(points[:, 0])[:, None]

    @property
    def points_of_interest(self):
        return self.hull.points_of_interest

    def __repr__(self) -> str:
        xs, _ = self.hull.points_of_interest
        return f"HullUtility1D({xs.size} PoIs on [{xs[0]}, {xs[-1]}])"


class GridUtility2D(UtilityFunction):
    """Bilinear interpolation of samples on a 2-D grid.

    ``values[i, j]`` is the utility at ``(xs[i], ys[j])``.  Evaluation is
    clamped to the grid's bounding box, so the function saturates (stays
    constant) outside the sampled range — matching the paper's assumption
    that more than 16 cache regions yields no additional utility.
    """

    num_resources = 2

    def __init__(self, xs: Sequence[float], ys: Sequence[float], values: np.ndarray):
        self.xs = np.asarray(xs, dtype=float)
        self.ys = np.asarray(ys, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.values.shape != (self.xs.size, self.ys.size):
            raise ValueError("values must have shape (len(xs), len(ys))")
        if np.any(np.diff(self.xs) <= 0) or np.any(np.diff(self.ys) <= 0):
            raise ValueError("grid axes must be strictly increasing")

    def value(self, allocation: Sequence[float]) -> float:
        x = float(np.clip(allocation[0], self.xs[0], self.xs[-1]))
        y = float(np.clip(allocation[1], self.ys[0], self.ys[-1]))
        i = int(np.clip(np.searchsorted(self.xs, x, side="right") - 1, 0, self.xs.size - 2)) \
            if self.xs.size > 1 else 0
        j = int(np.clip(np.searchsorted(self.ys, y, side="right") - 1, 0, self.ys.size - 2)) \
            if self.ys.size > 1 else 0
        if self.xs.size == 1 and self.ys.size == 1:
            return float(self.values[0, 0])
        if self.xs.size == 1:
            return float(np.interp(y, self.ys, self.values[0, :]))
        if self.ys.size == 1:
            return float(np.interp(x, self.xs, self.values[:, 0]))
        x0, x1 = self.xs[i], self.xs[i + 1]
        y0, y1 = self.ys[j], self.ys[j + 1]
        tx = (x - x0) / (x1 - x0)
        ty = (y - y0) / (y1 - y0)
        v00, v01 = self.values[i, j], self.values[i, j + 1]
        v10, v11 = self.values[i + 1, j], self.values[i + 1, j + 1]
        return float(
            v00 * (1 - tx) * (1 - ty)
            + v10 * tx * (1 - ty)
            + v01 * (1 - tx) * ty
            + v11 * tx * ty
        )

    def value_batch(self, allocations: np.ndarray) -> np.ndarray:
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_value_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        if self.xs.size == 1 and self.ys.size == 1:
            return np.full(points.shape[0], float(self.values[0, 0]))
        xc = np.clip(points[:, 0], self.xs[0], self.xs[-1])
        yc = np.clip(points[:, 1], self.ys[0], self.ys[-1])
        if self.xs.size == 1:
            return np.interp(yc, self.ys, self.values[0, :])
        if self.ys.size == 1:
            return np.interp(xc, self.xs, self.values[:, 0])
        return grid_bilinear_batch(self.xs, self.ys, self.values, xc, yc)

    def gradient_batch(self, allocations: np.ndarray) -> np.ndarray:
        # The scalar gradient is the generic numeric differentiator over
        # value(); mirror it exactly, with all probe points evaluated in
        # one vectorized value_batch dispatch.
        points = np.asarray(allocations, dtype=float)
        EVAL_COUNTERS.batch_gradient_calls += 1
        EVAL_COUNTERS.batch_points += points.shape[0]
        return numeric_gradient_batch(self.value_batch, points)

    def __repr__(self) -> str:
        return f"GridUtility2D({self.xs.size}x{self.ys.size} grid)"


def grid_bilinear_batch(
    xs: np.ndarray,
    ys: np.ndarray,
    values: np.ndarray,
    xc: np.ndarray,
    yc: np.ndarray,
    owners: np.ndarray | None = None,
) -> np.ndarray:
    """Bilinear interpolation of pre-clamped points, vectorized.

    This is :meth:`GridUtility2D.value` applied elementwise — identical
    clamped-index lookups and the identical four-term blend, so results
    agree bitwise with the scalar path.  ``values`` is ``(nx, ny)`` for a
    single grid, or ``(G, nx, ny)`` with ``owners[k]`` selecting the grid
    evaluated at point ``k`` (the stacked multi-player fast path).  Both
    axes must have at least two samples.
    """
    i = np.clip(np.searchsorted(xs, xc, side="right") - 1, 0, xs.size - 2)
    j = np.clip(np.searchsorted(ys, yc, side="right") - 1, 0, ys.size - 2)
    x0, x1 = xs[i], xs[i + 1]
    y0, y1 = ys[j], ys[j + 1]
    tx = (xc - x0) / (x1 - x0)
    ty = (yc - y0) / (y1 - y0)
    if owners is None:
        v00, v01 = values[i, j], values[i, j + 1]
        v10, v11 = values[i + 1, j], values[i + 1, j + 1]
    else:
        v00, v01 = values[owners, i, j], values[owners, i, j + 1]
        v10, v11 = values[owners, i + 1, j], values[owners, i + 1, j + 1]
    return (
        v00 * (1 - tx) * (1 - ty)
        + v10 * tx * (1 - ty)
        + v01 * (1 - tx) * ty
        + v11 * tx * ty
    )
