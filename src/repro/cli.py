"""Command-line harness: regenerate any of the paper's figures.

Usage::

    python -m repro fig1
    python -m repro fig2
    python -m repro fig3 [--bundle-category CPBN]
    python -m repro fig4 [--bundles 3] [--cores 64]
    python -m repro fig5 [--epochs 8] [--categories CPBN BBPN]
    python -m repro convergence [--bundles 3]
    python -m repro lint [paths ...] [--format json] [--fail-on warning]

Every figure subcommand prints the figure's rows/series in plain text
(the same output the benchmarks archive under ``benchmarks/_results``).
``lint`` runs the :mod:`repro.qa` static domain linter and exits 1 when
findings at or above the ``--fail-on`` severity remain (see
``docs/QA.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .analysis import (
    fig1_data,
    fig2_data,
    fig3_data,
    format_series,
    format_table,
    run_analytic_sweep,
    run_simulation_experiment,
    summarize_simulation,
    summarize_sweep,
)
from .cmp import cmp_8core, cmp_64core
from .sim import SimulationConfig
from .workloads import generate_bundles

__all__ = ["build_parser", "main"]


def _cmd_fig1(_args) -> None:
    data = fig1_data()
    print("Figure 1 (left): PoA lower bound vs MUR (Theorem 1)")
    print(format_series("PoA", data["mur"], data["poa_bound"], max_points=21))
    print("\nFigure 1 (right): envy-freeness lower bound vs MBR (Theorem 2)")
    print(format_series("EF", data["mbr"], data["ef_bound"], max_points=21))


def _cmd_fig2(_args) -> None:
    data = fig2_data()
    print("Figure 2: normalized utility vs cache regions (max frequency)")
    for name, curves in data.items():
        print(format_series(f"{name} raw ", curves["regions"], curves["raw"], 16))
        print(format_series(f"{name} hull", curves["regions"], curves["hull"], 16))


def _cmd_fig3(args) -> None:
    bundle = None
    if args.bundle_category:
        bundle = generate_bundles(args.bundle_category, 8, count=1, seed=args.seed)[0]
    data = fig3_data(bundle=bundle)
    mechanisms = list(data["lambdas"].keys())
    rows = [
        [app] + [data["lambdas"][m][app] for m in mechanisms] for app in data["apps"]
    ]
    rows.append(["MUR"] + [data["summary"][m]["mur"] for m in mechanisms])
    rows.append(
        ["eff/OPT"] + [data["summary"][m]["efficiency_vs_opt"] for m in mechanisms]
    )
    print(
        format_table(
            ["app"] + mechanisms,
            rows,
            title="Figure 3: normalized lambda_i per application",
        )
    )


def _cmd_fig4(args) -> None:
    config = cmp_64core() if args.cores == 64 else cmp_8core()
    sweep = run_analytic_sweep(
        config=config,
        bundles_per_category=args.bundles,
        progress=lambda name: print(f"  {name}", file=sys.stderr),
        workers=args.workers,
    )
    for failure in sweep.failures:
        print(f"  FAILED {failure.bundle}/{failure.mechanism}", file=sys.stderr)
    print(summarize_sweep(sweep))
    x = np.arange(len(sweep.scores), dtype=float)
    print("\nFigure 4a series (ordered by EqualShare efficiency):")
    for mech in sweep.mechanisms:
        print(format_series(f"  {mech:13s}", x, sweep.efficiency_series(mech)))
    print("\nFigure 4b series (envy-freeness):")
    for mech in sweep.mechanisms:
        print(format_series(f"  {mech:13s}", x, sweep.envy_freeness_series(mech)))


def _cmd_fig5(args) -> None:
    config = cmp_64core() if args.cores == 64 else cmp_8core()
    scores = run_simulation_experiment(
        config=config,
        categories=tuple(args.categories),
        sim_config=SimulationConfig(duration_ms=float(args.epochs), seed=args.seed),
        workers=args.workers,
    )
    for failure in scores.failures:
        print(f"  FAILED {failure.bundle}/{failure.mechanism}", file=sys.stderr)
    print(summarize_simulation(scores))


def _cmd_suite(args) -> None:
    from .analysis import characterize_suite

    rows = [
        [r.name, r.suite, r.cls, r.cpi_exe, r.apki, r.footprint_mb,
         r.cache_sensitivity, r.power_sensitivity]
        for r in sorted(
            characterize_suite(workers=args.workers), key=lambda r: (r.cls, r.name)
        )
    ]
    print(
        format_table(
            ["app", "suite", "class", "CPI", "APKI", "footprint MB",
             "cache sens", "power sens"],
            rows,
            title="The 24-application suite (classes derived by profiling)",
        )
    )


def _cmd_validate(_args) -> None:
    from .analysis import (
        dram_contention_study,
        futility_convergence_study,
        umon_error_study,
    )

    umon = umon_error_study()
    print(
        f"UMON miss-curve error: suite mean |err| = "
        f"{float(np.mean([r.mean_abs_error for r in umon])):.4f}, "
        f"worst app max |err| = {max(r.max_abs_error for r in umon):.4f}"
    )
    epochs = futility_convergence_study()
    print(
        f"Futility Scaling: median {float(np.median(epochs)):.0f} epochs to 5% "
        f"occupancy error (max {max(epochs)})"
    )
    print("DRAM contention (utilization -> ns):")
    for u, lat in dram_contention_study():
        print(f"  {u:.2f} -> {lat:.1f}")


def _cmd_lint(args) -> int:
    from .qa import Linter, Severity, render_json, render_text

    report = Linter().lint_paths(args.paths)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code(fail_on=Severity.parse(args.fail_on))


def _cmd_convergence(args) -> None:
    from .core import BalancedBudget, EqualBudget, ReBudgetMechanism

    sweep = run_analytic_sweep(
        config=cmp_64core(),
        bundles_per_category=args.bundles,
        mechanisms_factory=lambda: [
            EqualBudget(),
            BalancedBudget(),
            ReBudgetMechanism(step=20),
            ReBudgetMechanism(step=40),
        ],
        workers=args.workers,
    )
    rows = []
    for mech in sweep.mechanisms:
        stats = sweep.convergence_stats(mech)
        rows.append(
            [
                mech,
                stats["mean_iterations"],
                stats["max_iterations"],
                stats["fraction_within_3"],
                stats["converged_fraction"],
            ]
        )
    print(
        format_table(
            ["mechanism", "mean iters", "max iters", "frac <=3", "converged"],
            rows,
            title="Section 6.4: convergence statistics",
        )
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the ReBudget paper's figures."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="Theorem 1/2 bound curves").set_defaults(func=_cmd_fig1)
    sub.add_parser("fig2", help="mcf/vpr cache utility + Talus hull").set_defaults(
        func=_cmd_fig2
    )

    p3 = sub.add_parser("fig3", help="lambda profile of an 8-core bundle")
    p3.add_argument(
        "--bundle-category",
        default=None,
        help="generate a bundle of this category instead of the paper's BBPC",
    )
    p3.add_argument("--seed", type=int, default=9)
    p3.set_defaults(func=_cmd_fig3)

    workers_help = "worker processes for the sweep (1 = serial in-process)"

    p4 = sub.add_parser("fig4", help="analytic efficiency/fairness sweep")
    p4.add_argument("--bundles", type=int, default=3, help="bundles per category (paper: 40)")
    p4.add_argument("--cores", type=int, default=64, choices=(8, 64))
    p4.add_argument("--workers", type=int, default=1, help=workers_help)
    p4.set_defaults(func=_cmd_fig4)

    p5 = sub.add_parser("fig5", help="execution-driven simulation runs")
    p5.add_argument("--epochs", type=int, default=8, help="simulated milliseconds")
    p5.add_argument(
        "--categories", nargs="+", default=["CPBN", "BBPN"], metavar="CAT"
    )
    p5.add_argument("--cores", type=int, default=64, choices=(8, 64))
    p5.add_argument("--seed", type=int, default=2016)
    p5.add_argument("--workers", type=int, default=1, help=workers_help)
    p5.set_defaults(func=_cmd_fig5)

    pc = sub.add_parser("convergence", help="Section 6.4 iteration statistics")
    pc.add_argument("--bundles", type=int, default=3)
    pc.add_argument("--workers", type=int, default=1, help=workers_help)
    pc.set_defaults(func=_cmd_convergence)

    ps = sub.add_parser("suite", help="the 24-application workload table")
    ps.add_argument("--workers", type=int, default=1, help=workers_help)
    ps.set_defaults(func=_cmd_suite)
    sub.add_parser("validate", help="substrate-quality studies").set_defaults(
        func=_cmd_validate
    )

    pl = sub.add_parser("lint", help="run the repro.qa static domain linter")
    pl.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to lint (default: src)",
    )
    pl.add_argument("--format", choices=("text", "json"), default="text")
    pl.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default="error",
        help="lowest severity that makes the exit code nonzero",
    )
    pl.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args) or 0)


if __name__ == "__main__":
    raise SystemExit(main())
