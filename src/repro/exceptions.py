"""Exception hierarchy for the repro package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MarketConfigurationError",
    "ConvergenceError",
    "SanitizerError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MarketConfigurationError(ReproError):
    """A market, player, or mechanism was configured inconsistently."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge and no fail-safe was allowed."""


class SanitizerError(ReproError):
    """A runtime invariant check (``repro.qa.sanitize``) failed.

    ``invariant`` names the violated contract (e.g.
    ``"rebudget-budget-floor"``) so tests and CI logs can assert on the
    exact guarantee that broke, not just the message text.
    """

    def __init__(self, message: str, invariant: str = ""):
        super().__init__(message)
        self.invariant = invariant
