"""Exception hierarchy for the repro package."""

from __future__ import annotations

__all__ = ["ReproError", "MarketConfigurationError", "ConvergenceError"]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MarketConfigurationError(ReproError):
    """A market, player, or mechanism was configured inconsistently."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge and no fail-safe was allowed."""
