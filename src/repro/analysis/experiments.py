"""Experiment harness: one entry point per figure/table of the paper.

* :func:`fig1_data` — the theoretical bound curves (Figure 1).
* :func:`fig2_data` — raw vs. convexified cache utility of *mcf*/*vpr*
  (Figure 2).
* :func:`fig3_data` — per-application lambda profile of the 8-core BBPC
  bundle under EqualBudget / ReBudget-20 / ReBudget-40 (Figure 3).
* :func:`run_analytic_sweep` — the phase-1 sweep over N bundles per
  category scoring every mechanism (Figures 4a/4b), plus convergence
  statistics (Section 6.4).
* :func:`run_simulation_experiment` — the phase-2 execution-driven runs,
  one bundle per category (Figures 5a/5b).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..cmp.chip import ChipModel
from ..cmp.config import CMPConfig, cmp_8core, cmp_64core
from ..cmp.core_model import CoreModel
from ..cmp.spec_suite import app_by_name
from ..cmp.utility_builder import convexify_grid
from ..core.mechanisms import (
    AllocationMechanism,
    MechanismResult,
    standard_mechanism_suite,
)
from ..core.theory import ef_lower_bound, poa_lower_bound
from ..exec import SweepExecutor, SweepProgress
from ..sim.engine import ExecutionDrivenSimulator, SimulationConfig
from ..workloads.bundles import (
    BUNDLE_CATEGORIES,
    Bundle,
    bundle_seed_sequence,
    generate_bundles,
    paper_bbpc_bundle,
)

__all__ = [
    "fig1_data",
    "fig2_data",
    "fig3_data",
    "BundleScore",
    "SweepFailure",
    "SweepResult",
    "run_analytic_bundle",
    "run_analytic_sweep",
    "SimulationScore",
    "SimulationSweepResult",
    "run_simulation_experiment",
]


# ----------------------------------------------------------------------
# Figure 1: theory curves
# ----------------------------------------------------------------------

def fig1_data(points: int = 101) -> Dict[str, np.ndarray]:
    """The PoA-vs-MUR and EF-vs-MBR bound series of Figure 1."""
    xs = np.linspace(0.0, 1.0, points)
    return {
        "mur": xs,
        "poa_bound": np.array([poa_lower_bound(x) for x in xs]),
        "mbr": xs,
        "ef_bound": np.array([ef_lower_bound(x) for x in xs]),
    }


# ----------------------------------------------------------------------
# Figure 2: cache utility, raw vs Talus hull
# ----------------------------------------------------------------------

def fig2_data(
    app_names: Sequence[str] = ("mcf", "vpr"),
    config: Optional[CMPConfig] = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Normalized utility vs cache regions at maximum frequency.

    Returns, per application, the region axis, the raw (possibly cliffy)
    utility samples, and the Talus convex hull through them — the two
    curves of Figure 2.
    """
    config = config or cmp_8core()
    out: Dict[str, Dict[str, np.ndarray]] = {}
    for name in app_names:
        core = CoreModel(app_by_name(name), config)
        regions = np.arange(1, config.umon_max_regions + 1, dtype=float)
        raw = np.array(
            [
                core.utility(r * config.cache_region_bytes, config.core.max_frequency_ghz)
                for r in regions
            ]
        )
        hull = convexify_grid(regions, np.array([0.0]), raw[:, None])[:, 0]
        out[name] = {"regions": regions, "raw": raw, "hull": hull}
    return out


# ----------------------------------------------------------------------
# Figure 3: lambda profile of the BBPC case study
# ----------------------------------------------------------------------

def fig3_data(
    config: Optional[CMPConfig] = None,
    steps: Sequence[float] = (20.0, 40.0),
    bundle: Optional[Bundle] = None,
) -> Dict[str, object]:
    """Per-app normalized lambda_i under EqualBudget and ReBudget-step.

    Follows Figure 3: by default the paper's 8-core BBPC bundle, one
    entry per distinct application, lambdas normalized to the in-bundle
    maximum, plus the resulting MUR, budgets and efficiency of every
    mechanism.  Pass another ``bundle`` to study the reassignment
    dynamics on workloads where the lambda spread is wider (in our
    substrate, bundles containing N-class applications).
    """
    from ..core.mechanisms import EqualBudget, MaxEfficiency, ReBudgetMechanism

    config = config or cmp_8core()
    bundle = bundle or paper_bbpc_bundle()
    chip = ChipModel(config, bundle.apps)
    problem = chip.build_problem()

    mechanisms: List[AllocationMechanism] = [EqualBudget()]
    mechanisms += [ReBudgetMechanism(step=s) for s in steps]
    opt = MaxEfficiency().allocate(problem)

    names = [app.name for app in bundle.apps]
    series: Dict[str, Dict[str, float]] = {}
    summary: Dict[str, Dict[str, float]] = {}
    for mech in mechanisms:
        result = mech.allocate(problem)
        top = max(float(result.lambdas.max()), 1e-12)
        per_app: Dict[str, float] = {}
        budgets: Dict[str, float] = {}
        for i, name in enumerate(names):
            # Copies of the same app behave identically; keep one each.
            per_app.setdefault(name, float(result.lambdas[i] / top))
            budgets.setdefault(name, float(result.budgets[i]))
        series[mech.name] = per_app
        summary[mech.name] = {
            "mur": float(result.mur),
            "mbr": float(result.mbr),
            "efficiency": float(result.efficiency),
            "efficiency_vs_opt": float(result.efficiency / opt.efficiency),
            "budgets": budgets,
        }
    return {
        "apps": sorted(set(names), key=names.index),
        "lambdas": series,
        "summary": summary,
        "opt_efficiency": float(opt.efficiency),
    }


# ----------------------------------------------------------------------
# Figures 4a/4b: the analytic (phase-1) sweep
# ----------------------------------------------------------------------

@dataclass
class BundleScore:
    """All mechanisms' metrics on one bundle."""

    bundle: str
    category: str
    results: Dict[str, MechanismResult]

    def efficiency_vs_opt(self, mechanism: str, reference: str = "MaxEfficiency") -> float:
        return self.results[mechanism].efficiency / self.results[reference].efficiency


@dataclass(frozen=True)
class SweepFailure:
    """One (bundle, mechanism) cell that raised instead of scoring."""

    bundle: str
    category: str
    mechanism: str
    #: Formatted traceback from the worker that ran the cell.
    error: str


@dataclass
class SweepResult:
    """Phase-1 sweep output: one :class:`BundleScore` per bundle.

    A bundle whose cells all succeed contributes a :class:`BundleScore`;
    a bundle with any failed cell is excluded from ``scores`` (a partial
    mechanism line-up would poison every cross-mechanism series) and its
    failing cells are recorded in ``failures`` instead.
    """

    scores: List[BundleScore] = field(default_factory=list)
    failures: List[SweepFailure] = field(default_factory=list)

    @property
    def mechanisms(self) -> List[str]:
        return list(self.scores[0].results.keys()) if self.scores else []

    def ordered_by_equalshare(self) -> List[BundleScore]:
        """Bundles ordered by EqualShare efficiency (Figure 4's x-axis)."""
        return sorted(
            self.scores, key=lambda s: s.efficiency_vs_opt("EqualShare")
        )

    def efficiency_series(self, mechanism: str) -> np.ndarray:
        """Normalized efficiency across bundles, in Figure-4 order."""
        return np.array(
            [s.efficiency_vs_opt(mechanism) for s in self.ordered_by_equalshare()]
        )

    def envy_freeness_series(self, mechanism: str) -> np.ndarray:
        return np.array(
            [
                s.results[mechanism].envy_freeness
                for s in self.ordered_by_equalshare()
            ]
        )

    def fraction_at_least(self, mechanism: str, threshold: float) -> float:
        """Fraction of bundles where a mechanism reaches ``threshold`` of OPT."""
        series = self.efficiency_series(mechanism)
        return float(np.mean(series >= threshold))

    def worst_envy_freeness(self, mechanism: str) -> float:
        return float(self.envy_freeness_series(mechanism).min())

    def median_envy_freeness(self, mechanism: str) -> float:
        return float(np.median(self.envy_freeness_series(mechanism)))

    def theorem2_violations(self) -> List[str]:
        """Bundles/mechanisms whose realized EF falls below Theorem 2."""
        violations = []
        for score in self.scores:
            for name, result in score.results.items():
                if result.mbr is None:
                    continue
                if result.envy_freeness < ef_lower_bound(result.mbr) - 1e-9:
                    violations.append(f"{score.bundle}/{name}")
        return violations

    def convergence_stats(self, mechanism: str) -> Dict[str, float]:
        """Pricing-iteration statistics for Section 6.4."""
        iters = np.array(
            [s.results[mechanism].iterations for s in self.scores], dtype=float
        )
        converged = np.array(
            [s.results[mechanism].converged for s in self.scores], dtype=float
        )
        return {
            "mean_iterations": float(iters.mean()),
            "p95_iterations": float(np.percentile(iters, 95)),
            "max_iterations": float(iters.max()),
            "fraction_within_3": float(np.mean(iters <= 3)),
            "fraction_within_5": float(np.mean(iters <= 5)),
            "converged_fraction": float(converged.mean()),
        }


def run_analytic_bundle(
    bundle: Bundle,
    config: CMPConfig,
    mechanisms: Optional[Sequence[AllocationMechanism]] = None,
) -> BundleScore:
    """Score every mechanism on one bundle with true convexified utilities."""
    mechanisms = mechanisms if mechanisms is not None else standard_mechanism_suite()
    chip = ChipModel(config, bundle.apps)
    problem = chip.build_problem()
    results = {mech.name: mech.allocate(problem) for mech in mechanisms}
    return BundleScore(bundle=bundle.name, category=bundle.category, results=results)


# One sweep-cell shards per (bundle, mechanism), so the mechanisms of a
# bundle share its convexified AllocationProblem through a small
# per-process cache instead of each rebuilding it.  Entries are keyed by
# a token unique to the parent sweep invocation: a long-lived process
# running several sweeps (different chips, same bundle names) can never
# hit a stale problem.
_PROBLEM_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_PROBLEM_CACHE_SIZE = 4
_SWEEP_TOKENS = itertools.count()


def _cached_problem(token, config: CMPConfig, bundle: Bundle):
    key = (token, bundle.category, bundle.name)
    # Deliberate per-process memo: the cached AllocationProblem is a
    # pure function of (token, bundle) — every process that rebuilds it
    # gets a bitwise-identical object, so cell results cannot depend on
    # sharding (determinism covered by tests/analysis/test_parallel_sweep.py
    # and the sweep bench), hence the suppression:
    problem = _PROBLEM_CACHE.get(key)  # repro: noqa[REPRO105] pure per-process memo
    if problem is None:
        problem = ChipModel(config, bundle.apps).build_problem()
        _PROBLEM_CACHE[key] = problem
        while len(_PROBLEM_CACHE) > _PROBLEM_CACHE_SIZE:
            _PROBLEM_CACHE.popitem(last=False)
    return problem


def _analytic_cell(spec, seed_seq: np.random.SeedSequence):
    """Score one (bundle, mechanism) cell; runs inside a sweep worker.

    The analytic pipeline is fully deterministic (the bidder and the
    greedy optimum use no randomness), so the executor-provided seed is
    unused; it is part of the cell signature so stochastic cells can be
    added without changing the executor contract.
    """
    token, config, bundle, mechanism = spec
    problem = _cached_problem(token, config, bundle)
    return mechanism.allocate(problem)


def _progress_adapter(
    progress: Optional[Callable[[str], None]]
) -> Optional[Callable[[SweepProgress], None]]:
    """Wrap the harness' line-oriented callback for the executor."""
    if progress is None:
        return None

    def emit(beat: SweepProgress) -> None:
        progress(beat.describe())

    return emit


def run_analytic_sweep(
    config: Optional[CMPConfig] = None,
    bundles_per_category: int = 40,
    categories: Sequence[str] = BUNDLE_CATEGORIES,
    mechanisms_factory: Optional[Callable[[], Sequence[AllocationMechanism]]] = None,
    seed: int = 2016,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
) -> SweepResult:
    """The phase-1 sweep behind Figures 4a/4b.

    With the default arguments this reproduces the paper's full setup:
    the 64-core chip, 6 categories x 40 bundles = 240 bundles, and the
    six-mechanism line-up.  ``bundles_per_category`` can be lowered for
    quick runs; the bundle *prefix* is stable for a given seed, so small
    sweeps are strict subsets of large ones.

    The (bundle, mechanism) cells shard over a
    :class:`~repro.exec.SweepExecutor` with ``workers`` processes;
    ``workers=1`` (the default) runs them serially in-process.  Scores
    are identical for any worker count, a cell that raises is recorded
    in :attr:`SweepResult.failures` instead of killing the sweep, and
    ``progress`` receives one completion line (with ETA) per cell.
    """
    config = config or cmp_64core()
    factory = mechanisms_factory or standard_mechanism_suite
    token = next(_SWEEP_TOKENS)

    specs: List[tuple] = []
    labels: List[str] = []
    keys: List[tuple] = []  # (bundle, category, mechanism) per cell
    lineup: List[tuple] = []  # (bundle, ordered mechanism names)
    for category in categories:
        bundles = generate_bundles(
            category, config.num_cores, count=bundles_per_category, seed=seed
        )
        for bundle in bundles:
            mechanisms = factory()
            lineup.append((bundle, [mech.name for mech in mechanisms]))
            for mech in mechanisms:
                specs.append((token, config, bundle, mech))
                labels.append(f"{bundle.name}/{mech.name}")
                keys.append((bundle.name, bundle.category, mech.name))

    executor = SweepExecutor(
        workers=workers, seed=seed, progress=_progress_adapter(progress)
    )
    run = executor.run(_analytic_cell, specs, labels=labels)

    sweep = SweepResult()
    by_bundle: Dict[str, Dict[str, MechanismResult]] = {}
    failed_bundles = set()
    for cell in run.cells:
        bundle_name, category, mech_name = keys[cell.index]
        if cell.ok:
            by_bundle.setdefault(bundle_name, {})[mech_name] = cell.value
        else:
            failed_bundles.add(bundle_name)
            sweep.failures.append(
                SweepFailure(
                    bundle=bundle_name,
                    category=category,
                    mechanism=mech_name,
                    error=cell.error,
                )
            )
    for bundle, mech_names in lineup:
        if bundle.name in failed_bundles:
            continue
        results = by_bundle.get(bundle.name, {})
        sweep.scores.append(
            BundleScore(
                bundle=bundle.name,
                category=bundle.category,
                results={name: results[name] for name in mech_names},
            )
        )
    return sweep


# ----------------------------------------------------------------------
# Figures 5a/5b: the execution-driven (phase-2) runs
# ----------------------------------------------------------------------

@dataclass
class SimulationScore:
    """Measured metrics of every mechanism on one simulated bundle."""

    bundle: str
    category: str
    efficiency: Dict[str, float]
    envy_freeness: Dict[str, float]
    mean_iterations: Dict[str, float]

    def efficiency_vs_opt(self, mechanism: str, reference: str = "MaxEfficiency") -> float:
        return self.efficiency[mechanism] / self.efficiency[reference]


class SimulationSweepResult(List[SimulationScore]):
    """Per-category simulation scores, plus any isolated cell failures.

    Behaves exactly like the plain list the harness used to return; a
    category with a failed (bundle, mechanism) cell is excluded from the
    list and recorded in :attr:`failures` instead.
    """

    def __init__(self, scores=(), failures=None):
        super().__init__(scores)
        self.failures: List[SweepFailure] = list(failures or [])


def _simulation_cell(spec, seed_seq: np.random.SeedSequence):
    """Simulate one (bundle, mechanism) cell; runs inside a sweep worker."""
    config, bundle, mechanism, sim_config = spec
    chip = ChipModel(config, bundle.apps)
    result = ExecutionDrivenSimulator(chip, mechanism, sim_config).run()
    # Only the figure-level aggregates travel back to the parent; the
    # full trace would be megabytes of IPC per cell for nothing.
    return {
        "efficiency": result.efficiency,
        "envy_freeness": result.envy_freeness,
        "mean_iterations": result.mean_market_iterations,
    }


def run_simulation_experiment(
    config: Optional[CMPConfig] = None,
    categories: Sequence[str] = BUNDLE_CATEGORIES,
    sim_config: Optional[SimulationConfig] = None,
    mechanisms_factory: Optional[Callable[[], Sequence[AllocationMechanism]]] = None,
    bundle_index: int = 0,
    seed: int = 2016,
    workers: int = 1,
    per_cell_seeds: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> SimulationSweepResult:
    """Phase-2: simulate one (randomly selected) bundle per category.

    This validates the analytic sweep with runtime-monitored utilities,
    Futility-Scaling partition dynamics, thermal feedback and DRAM
    contention, as in Section 6.3.

    The (bundle, mechanism) runs shard over a
    :class:`~repro.exec.SweepExecutor` with ``workers`` processes and
    produce identical scores for any worker count.  By default every
    cell simulates with ``sim_config.seed``, exactly as the serial
    harness always has; ``per_cell_seeds=True`` instead derives each
    cell's monitoring-noise seed from
    :func:`~repro.workloads.bundles.bundle_seed_sequence` — decorrelated
    across cells, yet stable under any worker count or category
    subsetting.
    """
    config = config or cmp_64core()
    sim_config = sim_config or SimulationConfig()
    factory = mechanisms_factory or standard_mechanism_suite

    specs: List[tuple] = []
    labels: List[str] = []
    keys: List[tuple] = []
    lineup: List[tuple] = []
    for category in categories:
        bundle = generate_bundles(
            category, config.num_cores, count=bundle_index + 1, seed=seed
        )[bundle_index]
        mechanisms = factory()
        lineup.append((bundle, [mech.name for mech in mechanisms]))
        cell_seeds = bundle_seed_sequence(
            sim_config.seed, category, bundle.index, config.num_cores
        ).spawn(len(mechanisms))
        for k, mech in enumerate(mechanisms):
            cell_config = sim_config
            if per_cell_seeds:
                derived = int(cell_seeds[k].generate_state(1, np.uint32)[0])
                cell_config = replace(sim_config, seed=derived)
            specs.append((config, bundle, mech, cell_config))
            labels.append(f"{bundle.name}/{mech.name}")
            keys.append((bundle.name, category, mech.name))

    executor = SweepExecutor(
        workers=workers, seed=seed, progress=_progress_adapter(progress)
    )
    run = executor.run(_simulation_cell, specs, labels=labels)

    by_bundle: Dict[str, Dict[str, Dict[str, float]]] = {}
    failures: List[SweepFailure] = []
    failed_bundles = set()
    for cell in run.cells:
        bundle_name, category, mech_name = keys[cell.index]
        if cell.ok:
            by_bundle.setdefault(bundle_name, {})[mech_name] = cell.value
        else:
            failed_bundles.add(bundle_name)
            failures.append(
                SweepFailure(
                    bundle=bundle_name,
                    category=category,
                    mechanism=mech_name,
                    error=cell.error,
                )
            )

    scores: List[SimulationScore] = []
    for bundle, mech_names in lineup:
        if bundle.name in failed_bundles:
            continue
        cells = by_bundle.get(bundle.name, {})
        scores.append(
            SimulationScore(
                bundle=bundle.name,
                category=bundle.category,
                efficiency={m: cells[m]["efficiency"] for m in mech_names},
                envy_freeness={m: cells[m]["envy_freeness"] for m in mech_names},
                mean_iterations={m: cells[m]["mean_iterations"] for m in mech_names},
            )
        )
    return SimulationSweepResult(scores, failures)
