"""Scalar-vs-batched hot-loop benchmark (the vectorization's receipts).

Every equilibrium search spends its time in per-player hill climbs, and
every climb step used to pay a chain of scalar Python calls into the
utility layer.  This module measures what the batched evaluation path
(:class:`~repro.core.bidding.VectorHillClimbBidder` over a
:class:`~repro.utility.batch.BatchedUtilitySet`) buys on Fig-4-sized
problems: per-equilibrium wall time and — via the
:class:`~repro.utility.base.EvalCounters` tallies every
:class:`~repro.core.equilibrium.EquilibriumResult` now carries —
Python-level utility-call counts for the scalar and lockstep paths.

Equivalence is checked alongside speed: the lockstep climb mirrors the
scalar arithmetic operation for operation, so bids, allocations,
iteration counts, and price-convergence flags must agree (allocations to
:data:`ALLOCATION_TOLERANCE` of capacity; flags exactly).

``run_hotloop_bench`` returns a JSON-ready dict;
``scripts/bench_hotloop.py`` and ``benchmarks/test_hotloop.py`` both
feed from it.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.cmp import ChipModel, CMPConfig, cmp_8core
from repro.core.bidding import HillClimbBidder, VectorHillClimbBidder
from repro.core.equilibrium import find_equilibrium
from repro.core.rebudget import ReBudgetConfig, run_rebudget
from repro.workloads import generate_bundles, paper_bbpc_bundle

__all__ = ["ALLOCATION_TOLERANCE", "DEFAULT_CATEGORIES", "run_hotloop_bench"]

#: Documented equivalence tolerance, as a fraction of each resource's
#: capacity.  The lockstep path is bitwise-identical to the scalar path
#: for every built-in utility family, so this is pure safety margin for
#: future utilities whose batched override reorders a summation.
ALLOCATION_TOLERANCE = 1e-9

#: Fig-4 workload categories benchmarked beside the paper's headline
#: bbpc mix (letters: Cache-, Power-sensitive, Both, Neither).
DEFAULT_CATEGORIES = ("CCCC", "PPPP", "BBNN", "CPBN")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_equilibria(market, bidder, repeats: int):
    """Best-of-``repeats`` cold equilibrium solve with the given bidder."""
    best = np.inf
    total = 0.0
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = find_equilibrium(market, bidder=bidder)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        total += elapsed
    return result, best, total / repeats


def _side_record(result, best: float, mean: float) -> Dict:
    counts = result.eval_counts
    return {
        "wall_ms_best": best * 1e3,
        "wall_ms_mean": mean * 1e3,
        "iterations": result.iterations,
        "converged": bool(result.converged),
        "utility_calls": counts["total_calls"],
        "eval_counts": counts,
    }


def run_hotloop_bench(
    config: Optional[CMPConfig] = None,
    categories: Sequence[str] = DEFAULT_CATEGORIES,
    repeats: int = 5,
    rebudget_rounds: int = 32,
    seed: int = 2016,
) -> Dict:
    """Benchmark scalar vs. lockstep equilibrium solves per Fig-4 bundle.

    For every bundle the same cold market is solved ``repeats`` times
    with the scalar :class:`HillClimbBidder` and with the lockstep
    :class:`VectorHillClimbBidder`; we record best/mean wall time, the
    utility-call tallies from ``EquilibriumResult.eval_counts``, and the
    divergence between the two solutions.  The dominant cell (the bbpc
    reference bundle) additionally times a full ReBudget run — the
    mechanism the epoch simulator spends its time in — under both
    bidders.
    """
    config = config or cmp_8core()
    problems = [("bbpc", paper_bbpc_bundle())]
    for index, category in enumerate(categories):
        bundle = generate_bundles(category, config.num_cores, count=1, seed=seed + index)[0]
        problems.append((category, bundle))

    scalar_bidder = HillClimbBidder()
    vector_bidder = VectorHillClimbBidder()
    per_problem: Dict[str, Dict] = {}
    scalar_calls_total = 0
    vector_calls_total = 0
    scalar_wall_total = 0.0
    vector_wall_total = 0.0
    worst_divergence = 0.0
    all_flags_match = True

    for name, bundle in problems:
        problem = ChipModel(config, bundle.apps).build_problem()
        market = problem.build_market(np.full(problem.num_players, 1.0))

        scalar_result, scalar_best, scalar_mean = _timed_equilibria(
            market, scalar_bidder, repeats
        )
        vector_result, vector_best, vector_mean = _timed_equilibria(
            market, vector_bidder, repeats
        )

        divergence = float(
            np.max(
                np.abs(vector_result.state.allocations - scalar_result.state.allocations)
                / market.capacities
            )
        )
        flags_match = (
            vector_result.converged == scalar_result.converged
            and vector_result.iterations == scalar_result.iterations
        )
        scalar_side = _side_record(scalar_result, scalar_best, scalar_mean)
        vector_side = _side_record(vector_result, vector_best, vector_mean)
        per_problem[name] = {
            "bundle": bundle.name,
            "num_players": problem.num_players,
            "num_resources": problem.num_resources,
            "scalar": scalar_side,
            "vector": vector_side,
            "call_reduction": scalar_side["utility_calls"]
            / max(vector_side["utility_calls"], 1),
            "wallclock_speedup": scalar_best / vector_best,
            "max_allocation_divergence": divergence,
            "bids_bitwise_equal": bool(
                np.array_equal(vector_result.state.bids, scalar_result.state.bids)
            ),
            "flags_match": bool(flags_match),
        }
        scalar_calls_total += scalar_side["utility_calls"]
        vector_calls_total += vector_side["utility_calls"]
        scalar_wall_total += scalar_best
        vector_wall_total += vector_best
        worst_divergence = max(worst_divergence, divergence)
        all_flags_match = all_flags_match and flags_match

    # ReBudget on a dominant multi-round cell: a cache-heavy/insensitive
    # split whose lambda spread forces several cut rounds (the bbpc mix
    # is balanced enough that ReBudget-40 accepts the first equilibrium),
    # ReBudget-40 config, warm-started round to round, under each bidder.
    rebudget_bundle = generate_bundles("CCNN", config.num_cores, count=1, seed=seed)[0]
    problem = ChipModel(config, rebudget_bundle.apps).build_problem()
    rebudget_config = ReBudgetConfig(step=40.0, max_rounds=rebudget_rounds)
    rebudget = {}
    for label, bidder in (("scalar", HillClimbBidder()), ("vector", VectorHillClimbBidder())):
        market = problem.build_market(
            np.full(problem.num_players, rebudget_config.initial_budget)
        )
        start = time.perf_counter()
        result = run_rebudget(market, config=rebudget_config, bidder=bidder)
        elapsed = time.perf_counter() - start
        rebudget[label] = {
            "wall_ms": elapsed * 1e3,
            "rounds": len(result.rounds),
            "final_budgets": [float(b) for b in result.final_budgets],
        }
    rebudget["wallclock_speedup"] = rebudget["scalar"]["wall_ms"] / rebudget["vector"]["wall_ms"]
    rebudget["budgets_match"] = bool(
        np.allclose(
            rebudget["scalar"]["final_budgets"],
            rebudget["vector"]["final_budgets"],
            rtol=0.0,
            atol=1e-9 * rebudget_config.initial_budget,
        )
    )

    return {
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "usable_cpus": _usable_cpus(),
        },
        "config": {
            "num_cores": config.num_cores,
            "repeats": repeats,
            "categories": list(categories),
            "allocation_tolerance": ALLOCATION_TOLERANCE,
        },
        "problems": per_problem,
        "rebudget": rebudget,
        "overall": {
            "scalar_utility_calls": scalar_calls_total,
            "vector_utility_calls": vector_calls_total,
            "call_reduction": scalar_calls_total / max(vector_calls_total, 1),
            "scalar_wall_ms": scalar_wall_total * 1e3,
            "vector_wall_ms": vector_wall_total * 1e3,
            "wallclock_speedup": scalar_wall_total / max(vector_wall_total, 1e-12),
            "max_allocation_divergence": worst_divergence,
            "all_flags_match": bool(all_flags_match),
        },
    }
