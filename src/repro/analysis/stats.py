"""Small statistics helpers shared by the analysis layer and benchmarks."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["series_summary", "fraction_at_least", "geometric_mean"]


def series_summary(values: Sequence[float]) -> Dict[str, float]:
    """min / p25 / median / p75 / max / mean of a series."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty series")
    return {
        "min": float(arr.min()),
        "p25": float(np.percentile(arr, 25)),
        "median": float(np.median(arr)),
        "p75": float(np.percentile(arr, 75)),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }


def fraction_at_least(values: Sequence[float], threshold: float) -> float:
    """Fraction of entries that are >= ``threshold``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty series")
    return float(np.mean(arr >= threshold))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (all entries must be positive)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty series")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
