"""Application-suite characterization (the workload table of Section 5).

Produces the per-application table architecture papers print alongside
their workload description: class, compute CPI, L2 intensity, working
set, sensitivities, standalone performance and peak power.  Used by the
suite-characterization benchmark and handy when adding applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cmp.application import AppProfile
from ..cmp.config import CMPConfig, MB, cmp_8core
from ..cmp.core_model import CoreModel
from ..workloads.classification import classify, profile_application, sensitivities

__all__ = ["AppCharacterization", "characterize_app", "characterize_suite"]


@dataclass(frozen=True)
class AppCharacterization:
    """One row of the suite table."""

    name: str
    suite: str
    cls: str
    cpi_exe: float
    apki: float
    footprint_mb: float
    cache_sensitivity: float
    power_sensitivity: float
    alone_gips: float
    peak_power_w: float


def characterize_app(app: AppProfile, config: Optional[CMPConfig] = None) -> AppCharacterization:
    """Profile one application into a characterization row."""
    config = config or cmp_8core()
    core = CoreModel(app, config)
    sens = sensitivities(profile_application(app, config))
    return AppCharacterization(
        name=app.name,
        suite=app.suite,
        cls=classify(app, config),
        cpi_exe=app.cpi_exe,
        apki=app.apki,
        footprint_mb=_footprint_mb(app, config),
        cache_sensitivity=sens.cache,
        power_sensitivity=sens.power,
        alone_gips=core.alone_performance_gips,
        peak_power_w=core.max_power_watts(),
    )


def _characterize_cell(spec, seed_seq) -> AppCharacterization:
    """Executor cell: profile one application (deterministic, seed unused)."""
    app, config = spec
    return characterize_app(app, config)


def characterize_suite(
    apps: Optional[List[AppProfile]] = None,
    config: Optional[CMPConfig] = None,
    workers: int = 1,
) -> List[AppCharacterization]:
    """Characterize a whole suite (defaults to the 24-app SPEC suite).

    ``workers > 1`` shards the per-application profiling over a process
    pool; rows come back in suite order either way.
    """
    if apps is None:
        from ..cmp.spec_suite import spec_suite

        apps = spec_suite()
    if workers <= 1:
        return [characterize_app(app, config) for app in apps]
    from ..exec import SweepExecutor

    run = SweepExecutor(workers=workers).run(
        _characterize_cell,
        [(app, config) for app in apps],
        labels=[app.name for app in apps],
    )
    run.raise_failures()
    return list(run.values())


def _footprint_mb(app: AppProfile, config: CMPConfig) -> float:
    """Capacity at which 90% of the cache-sensitive misses are gone."""
    lo, hi = 0.0, float(config.umon_max_bytes)
    span = app.mrc.ceiling - app.mrc.floor
    if span <= 1e-12:
        return 0.0  # flat MRC: no cache-sensitive misses at all
    target = app.mrc.floor + 0.1 * span
    if app.mrc.miss_fraction(hi) > target:
        return hi / MB
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        if app.mrc.miss_fraction(mid) > target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi) / MB
