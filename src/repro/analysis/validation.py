"""Substrate validation studies: how good are the models under the market?

Three quantitative checks that the modeling layers the allocation
mechanism depends on actually behave:

* :func:`umon_error_study` — UMON shadow-tag miss-curve error across the
  whole application suite (sampling 1 in 32, one epoch of stream);
* :func:`futility_convergence_study` — epochs Futility Scaling needs to
  bring partition occupancies within a tolerance of their targets;
* :func:`dram_contention_study` — miss-latency inflation as aggregate
  bandwidth approaches the channels' capacity.

These back the substitution arguments in DESIGN.md with numbers and are
printed by ``benchmarks/test_substrate_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..cmp.config import CMPConfig, cmp_8core
from ..cmp.core_model import CoreModel
from ..cmp.dram import DRAMModel
from ..cmp.futility import FutilityScalingController
from ..cmp.monitor import RuntimeMonitor

__all__ = [
    "UMONErrorRow",
    "umon_error_study",
    "futility_convergence_study",
    "dram_contention_study",
]


@dataclass(frozen=True)
class UMONErrorRow:
    """Shadow-tag estimation error for one application."""

    app: str
    mean_abs_error: float
    max_abs_error: float
    sampled_accesses: int


def umon_error_study(
    config: Optional[CMPConfig] = None,
    epochs: int = 4,
    instructions_per_epoch: float = 2e6,
    seed: int = 17,
) -> List[UMONErrorRow]:
    """Miss-curve estimation error per application, after ``epochs``."""
    from ..cmp.spec_suite import spec_suite

    config = config or cmp_8core()
    rows: List[UMONErrorRow] = []
    for app in spec_suite():
        core = CoreModel(app, config)
        monitor = RuntimeMonitor(core, config, rng=np.random.default_rng(seed))
        for _ in range(epochs):
            monitor.observe_epoch(instructions_per_epoch)
        true = np.array(
            [
                app.mrc.miss_fraction((k + 1) * config.cache_region_bytes)
                for k in range(config.umon_max_regions)
            ]
        )
        error = np.abs(monitor.miss_curve - true)
        rows.append(
            UMONErrorRow(
                app=app.name,
                mean_abs_error=float(error.mean()),
                max_abs_error=float(error.max()),
                sampled_accesses=monitor.umon.sampled_accesses,
            )
        )
    return rows


def futility_convergence_study(
    capacity_bytes: float = 4 << 20,
    num_partitions: int = 8,
    tolerance: float = 0.05,
    max_epochs: int = 200,
    seed: int = 3,
) -> List[int]:
    """Epochs to reach ``tolerance`` occupancy error, over random targets.

    Returns one epoch count per trial (20 trials of random target
    vectors and access rates).
    """
    rng = np.random.default_rng(seed)
    results: List[int] = []
    for _ in range(20):
        controller = FutilityScalingController(capacity_bytes, num_partitions)
        targets = rng.uniform(0.5, 2.0, size=num_partitions)
        targets *= capacity_bytes / targets.sum()
        rates = rng.uniform(0.5, 50.0, size=num_partitions)
        epochs = max_epochs
        for epoch in range(1, max_epochs + 1):
            controller.step(targets, rates)
            if controller.max_error_fraction(targets) < tolerance:
                epochs = epoch
                break
        results.append(epochs)
    return results


def dram_contention_study(channels: int = 2, points: int = 9) -> List[tuple]:
    """(utilization, latency ns) samples of the contention model."""
    dram = DRAMModel(channels=channels)
    peak = dram.peak_bandwidth_gbps()
    rows = []
    for utilization in np.linspace(0.0, 1.2, points):
        rows.append(
            (float(utilization), dram.latency_ns(utilization * peak))
        )
    return rows
