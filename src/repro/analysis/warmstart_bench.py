"""Cold-vs-warm equilibrium benchmark (the warm-start layer's receipts).

The epoch simulator re-solves the market every millisecond on utilities
that drift only slightly between epochs, which is exactly the situation
warm starts exploit.  This module measures the win: a
:class:`ColdVsWarmProbe` rides inside a Figure-5-style simulation and,
at every reallocation, solves the *same* problem twice —

* once with a fresh, cold mechanism (no carried state), and
* once with the persistent warm mechanism whose state survives from the
  previous epoch.

The warm result drives the simulation (so the trajectory is the warm
trajectory — the one production code would follow) while the cold solve
is a per-epoch control.  Per epoch we record equilibrium iterations,
wall-clock seconds and the worst allocation divergence between the two
solutions as a fraction of resource capacity.

``run_warmstart_bench`` aggregates this over one bundle per workload
category and returns a JSON-ready dict; ``scripts/bench_warmstart.py``
and ``benchmarks/test_warmstart.py`` both feed from it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cmp import ChipModel, CMPConfig, cmp_8core
from repro.core.mechanisms import (
    AllocationMechanism,
    AllocationProblem,
    EqualBudget,
    MechanismResult,
    ReBudgetMechanism,
)
from repro.sim import ExecutionDrivenSimulator, SimulationConfig
from repro.workloads import generate_bundles, paper_bbpc_bundle

__all__ = [
    "ColdVsWarmProbe",
    "EpochProbeRecord",
    "reference_invariance",
    "run_warmstart_bench",
]


@dataclass
class EpochProbeRecord:
    """One reallocation's cold-vs-warm measurements."""

    cold_iterations: int
    warm_iterations: int
    cold_seconds: float
    warm_seconds: float
    #: max_ij |warm - cold| / capacity_j over the allocation matrices.
    divergence: float
    #: max_j |p_warm - p_cold| / p_cold over equilibrium prices — the
    #: paper's own convergence metric (NaN for price-less mechanisms).
    price_divergence: float


class ColdVsWarmProbe:
    """Mechanism wrapper that shadows every allocate with a cold solve.

    Quacks like an :class:`AllocationMechanism` as far as the simulator
    is concerned (``name``, ``allocate``, ``reset_warm_state``).  The
    warm mechanism's result is returned, so the simulated trajectory is
    the warm one; the cold mechanism is rebuilt from ``factory`` on
    every call so it can never carry state.
    """

    def __init__(self, factory: Callable[[], AllocationMechanism]):
        self.factory = factory
        self.warm_mechanism = factory()
        self.records: List[EpochProbeRecord] = []
        self.resets = 0

    @property
    def name(self) -> str:
        return self.warm_mechanism.name

    def reset_warm_state(self) -> None:
        self.resets += 1
        self.warm_mechanism.reset_warm_state()

    def allocate(self, problem: AllocationProblem) -> MechanismResult:
        cold_mechanism = self.factory()
        t0 = time.perf_counter()
        cold = cold_mechanism.allocate(problem)
        t1 = time.perf_counter()
        warm = self.warm_mechanism.allocate(problem)
        t2 = time.perf_counter()
        divergence = float(
            (np.abs(warm.allocations - cold.allocations) / problem.capacities).max()
        )
        cold_prices = cold.details.get("prices")
        warm_prices = warm.details.get("prices")
        if cold_prices is None or warm_prices is None:
            price_divergence = float("nan")
        else:
            price_divergence = float(
                (np.abs(warm_prices - cold_prices) / cold_prices).max()
            )
        self.records.append(
            EpochProbeRecord(
                cold_iterations=cold.iterations,
                warm_iterations=warm.iterations,
                cold_seconds=t1 - t0,
                warm_seconds=t2 - t1,
                divergence=divergence,
                price_divergence=price_divergence,
            )
        )
        return warm


@dataclass
class _MechanismTally:
    records: List[EpochProbeRecord] = field(default_factory=list)

    def summary(self) -> Dict[str, float]:
        cold_it = sum(r.cold_iterations for r in self.records)
        warm_it = sum(r.warm_iterations for r in self.records)
        cold_s = sum(r.cold_seconds for r in self.records)
        warm_s = sum(r.warm_seconds for r in self.records)
        return {
            "epochs": len(self.records),
            "cold_iterations": cold_it,
            "warm_iterations": warm_it,
            "iteration_savings": 1.0 - warm_it / cold_it if cold_it else 0.0,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "wallclock_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
            "max_divergence": max((r.divergence for r in self.records), default=0.0),
            "mean_divergence": float(
                np.mean([r.divergence for r in self.records])
            )
            if self.records
            else 0.0,
            "max_price_divergence": float(
                np.nanmax([r.price_divergence for r in self.records])
            )
            if self.records
            else 0.0,
            "mean_price_divergence": float(
                np.nanmean([r.price_divergence for r in self.records])
            )
            if self.records
            else 0.0,
        }


def _default_factories() -> Dict[str, Callable[[], AllocationMechanism]]:
    return {
        "EqualBudget": EqualBudget,
        "ReBudget-40": lambda: ReBudgetMechanism(step=40.0),
    }


def reference_invariance(config: Optional[CMPConfig] = None) -> Dict[str, float]:
    """Warm-vs-cold on the paper's Figure-5 reference problem.

    The same static problem (the bbpc example bundle, true utilities —
    no monitoring drift) is solved cold and then warm from the cold
    result.  This isolates the invariance claim from workload dynamics:
    the warm restart must terminate in fewer rounds and land on the same
    equilibrium within the paper's 1% price tolerance.
    """
    config = config or cmp_8core()
    chip = ChipModel(config, paper_bbpc_bundle().apps)
    problem = chip.build_problem()
    mech = EqualBudget()
    cold = mech.allocate(problem)
    warm = mech.allocate(problem)
    return {
        "bundle": paper_bbpc_bundle().name,
        "cold_iterations": cold.iterations,
        "warm_iterations": warm.iterations,
        "iteration_savings": 1.0 - warm.iterations / cold.iterations,
        "max_divergence": float(
            (np.abs(warm.allocations - cold.allocations) / problem.capacities).max()
        ),
        "max_price_divergence": float(
            (
                np.abs(warm.details["prices"] - cold.details["prices"])
                / cold.details["prices"]
            ).max()
        ),
    }


def run_warmstart_bench(
    config: Optional[CMPConfig] = None,
    categories: Sequence[str] = ("CPBN", "CCPP"),
    sim_config: Optional[SimulationConfig] = None,
    mechanism_factories: Optional[Dict[str, Callable[[], AllocationMechanism]]] = None,
    seed: int = 2016,
) -> Dict[str, object]:
    """Run the warm-start benchmark: reference invariance + epoch study.

    Returns a JSON-serializable dict with (a) the static Figure-5
    reference check (warm restart must match the cold equilibrium within
    the paper's 1% price tolerance) and (b) the cold-vs-warm probe over
    one simulated bundle per category: per-mechanism and overall
    iteration/wall-clock totals plus the per-epoch divergence between
    the warm solution and its cold control (allocations as a fraction of
    capacity, prices relative).  In the simulation the divergence is
    bounded by one epoch of genuine utility drift, not by the price
    tolerance: a warm chain lags the moving equilibrium by at most one
    re-search while monitored utilities move several percent per epoch.
    """
    config = config or cmp_8core()
    sim_config = sim_config or SimulationConfig(duration_ms=8.0, seed=seed)
    factories = mechanism_factories or _default_factories()

    tallies: Dict[str, _MechanismTally] = {name: _MechanismTally() for name in factories}
    for category in categories:
        bundle = generate_bundles(category, config.num_cores, count=1, seed=seed)[0]
        chip = ChipModel(config, bundle.apps)
        for name, factory in factories.items():
            probe = ColdVsWarmProbe(factory)
            ExecutionDrivenSimulator(chip, probe, sim_config).run()
            tallies[name].records.extend(probe.records)

    mechanisms = {name: tally.summary() for name, tally in tallies.items()}
    cold_it = sum(m["cold_iterations"] for m in mechanisms.values())
    warm_it = sum(m["warm_iterations"] for m in mechanisms.values())
    return {
        "reference": reference_invariance(config),
        "config": {
            "cores": config.num_cores,
            "categories": list(categories),
            "duration_ms": sim_config.duration_ms,
            "epoch_ms": sim_config.epoch_ms,
            "seed": seed,
        },
        "mechanisms": mechanisms,
        "overall": {
            "cold_iterations": cold_it,
            "warm_iterations": warm_it,
            "iteration_savings": 1.0 - warm_it / cold_it if cold_it else 0.0,
            "cold_seconds": sum(m["cold_seconds"] for m in mechanisms.values()),
            "warm_seconds": sum(m["warm_seconds"] for m in mechanisms.values()),
            "max_divergence": max(m["max_divergence"] for m in mechanisms.values()),
            "max_price_divergence": max(
                m["max_price_divergence"] for m in mechanisms.values()
            ),
        },
    }
