"""Serial-vs-parallel benchmark of the Fig-4 sweep executor.

:func:`run_sweep_bench` runs the same analytic (phase-1) reference
sweep twice — once serially (``workers=1``) and once sharded over a
worker pool — wall-clocks both, and verifies the executor's determinism
contract: the parallel scores must be *identical* to the serial ones
(same seed, same submission order, same per-cell entropy).

The headline numbers land in ``BENCH_sweep_parallel.json`` at the
repository root (written by ``scripts/bench_sweep.py`` and
``benchmarks/test_sweep_parallel.py``).  The speedup is a property of
the host: it approaches the worker count on an otherwise-idle multicore
machine and degrades to ~1x when the cells are time-sliced onto a
single CPU, so the JSON records the machine context
(``cpu_count``/``usable_cpus``) alongside the measurement.
"""

from __future__ import annotations

import math
import os
import time
from typing import Callable, Optional, Sequence

import numpy as np

from ..cmp.config import CMPConfig, cmp_8core
from .experiments import SweepResult, run_analytic_sweep

__all__ = [
    "DEFAULT_CATEGORIES",
    "run_sweep_bench",
    "sweep_fingerprint",
    "sweeps_identical",
]

#: Reference sweep shape: Fig-4 structure at a size a CI smoke can afford.
DEFAULT_CATEGORIES = ("CPBN", "BBPN")


def sweep_fingerprint(sweep: SweepResult) -> dict:
    """Every score of a sweep, flattened to comparable floats.

    Keys are ``bundle/mechanism``; values carry the metrics that define
    a :class:`~repro.analysis.BundleScore` plus the full allocation
    matrix, so two fingerprints are equal iff the sweeps agree exactly.
    """
    out = {}
    for score in sweep.scores:
        for mech, result in score.results.items():
            out[f"{score.bundle}/{mech}"] = {
                "efficiency": float(result.efficiency),
                "envy_freeness": float(result.envy_freeness),
                "iterations": int(result.iterations),
                "allocations": np.asarray(result.allocations),
            }
    return out


def sweeps_identical(a: SweepResult, b: SweepResult) -> tuple:
    """``(identical, max_abs_divergence)`` between two sweeps' scores."""
    fa, fb = sweep_fingerprint(a), sweep_fingerprint(b)
    if set(fa) != set(fb):
        return False, float("inf")
    worst = 0.0
    identical = True
    for key, cell in fa.items():
        other = fb[key]
        for metric in ("efficiency", "envy_freeness", "iterations"):
            a_val, b_val = float(cell[metric]), float(other[metric])
            worst = max(worst, abs(a_val - b_val))
            # The executor's determinism contract is *bitwise* score
            # identity between workers=1 and workers=N, so the identity
            # test is exact on purpose: isclose with zero tolerances is
            # `a == b` spelled so the zero tolerance is explicit (and
            # REPRO101-clean), not an accidental fp comparison.
            if not math.isclose(a_val, b_val, rel_tol=0.0, abs_tol=0.0):
                identical = False
        if not np.array_equal(cell["allocations"], other["allocations"]):
            identical = False
            worst = max(
                worst,
                float(np.max(np.abs(cell["allocations"] - other["allocations"]))),
            )
    return identical, worst


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_sweep_bench(
    config: Optional[CMPConfig] = None,
    bundles_per_category: int = 3,
    categories: Sequence[str] = DEFAULT_CATEGORIES,
    workers: int = 4,
    seed: int = 2016,
    mechanisms_factory: Optional[Callable] = None,
) -> dict:
    """Measure the reference Fig-4-style sweep serially and in parallel.

    Returns a JSON-ready dict: per-arm wall-clocks, the speedup, the
    determinism verdict (``identical`` must always be True), failure
    counts, and the host context the speedup was measured under.
    """
    config = config or cmp_8core()

    t0 = time.perf_counter()
    serial = run_analytic_sweep(
        config=config,
        bundles_per_category=bundles_per_category,
        categories=categories,
        mechanisms_factory=mechanisms_factory,
        seed=seed,
        workers=1,
    )
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_analytic_sweep(
        config=config,
        bundles_per_category=bundles_per_category,
        categories=categories,
        mechanisms_factory=mechanisms_factory,
        seed=seed,
        workers=workers,
    )
    parallel_s = time.perf_counter() - t0

    identical, divergence = sweeps_identical(serial, parallel)
    mechanisms = serial.mechanisms
    return {
        "sweep": {
            "num_cores": config.num_cores,
            "bundles_per_category": bundles_per_category,
            "categories": list(categories),
            "mechanisms": mechanisms,
            "cells": len(serial.scores) * len(mechanisms),
            "seed": seed,
        },
        "serial": {"workers": 1, "wall_s": serial_s},
        "parallel": {"workers": workers, "wall_s": parallel_s},
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "identical": bool(identical),
        "max_abs_divergence": float(divergence),
        "failures": len(serial.failures) + len(parallel.failures),
        "machine": {
            "cpu_count": os.cpu_count() or 1,
            "usable_cpus": _usable_cpus(),
        },
    }
