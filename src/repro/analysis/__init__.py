"""Evaluation harness: per-figure experiment entry points, summary
statistics and plain-text reporting."""

from .characterization import (
    AppCharacterization,
    characterize_app,
    characterize_suite,
)
from .export import simulation_to_csv, sweep_to_csv, write_csv
from .experiments import (
    BundleScore,
    SimulationScore,
    SimulationSweepResult,
    SweepFailure,
    SweepResult,
    fig1_data,
    fig2_data,
    fig3_data,
    run_analytic_bundle,
    run_analytic_sweep,
    run_simulation_experiment,
)
from .hotloop_bench import ALLOCATION_TOLERANCE, run_hotloop_bench
from .reporting import format_series, format_table, summarize_simulation, summarize_sweep
from .stats import fraction_at_least, geometric_mean, series_summary
from .sweep_bench import run_sweep_bench, sweep_fingerprint, sweeps_identical
from .validation import (
    UMONErrorRow,
    dram_contention_study,
    futility_convergence_study,
    umon_error_study,
)
from .warmstart_bench import ColdVsWarmProbe, EpochProbeRecord, run_warmstart_bench

__all__ = [
    "AppCharacterization",
    "characterize_app",
    "characterize_suite",
    "fig1_data",
    "fig2_data",
    "fig3_data",
    "BundleScore",
    "SweepFailure",
    "SweepResult",
    "run_analytic_bundle",
    "run_analytic_sweep",
    "SimulationScore",
    "SimulationSweepResult",
    "run_simulation_experiment",
    "run_sweep_bench",
    "sweep_fingerprint",
    "sweeps_identical",
    "format_table",
    "format_series",
    "summarize_sweep",
    "summarize_simulation",
    "series_summary",
    "fraction_at_least",
    "geometric_mean",
    "sweep_to_csv",
    "simulation_to_csv",
    "write_csv",
    "UMONErrorRow",
    "umon_error_study",
    "futility_convergence_study",
    "dram_contention_study",
    "ColdVsWarmProbe",
    "EpochProbeRecord",
    "run_warmstart_bench",
    "run_hotloop_bench",
    "ALLOCATION_TOLERANCE",
]
