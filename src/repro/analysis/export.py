"""CSV export of experiment results (for external plotting).

The benchmarks print text; anyone wanting to re-plot Figures 4/5 in
their own tooling can export the raw series here.
"""

from __future__ import annotations

import csv
import io
from typing import List

__all__ = ["sweep_to_csv", "simulation_to_csv", "write_csv"]


def sweep_to_csv(sweep) -> str:
    """One row per (bundle, mechanism) of a phase-1 sweep, in Figure-4 order."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        [
            "order",
            "bundle",
            "category",
            "mechanism",
            "efficiency",
            "efficiency_vs_opt",
            "envy_freeness",
            "iterations",
            "converged",
            "mur",
            "mbr",
        ]
    )
    for order, score in enumerate(sweep.ordered_by_equalshare()):
        for mechanism, result in score.results.items():
            writer.writerow(
                [
                    order,
                    score.bundle,
                    score.category,
                    mechanism,
                    f"{result.efficiency:.6f}",
                    f"{score.efficiency_vs_opt(mechanism):.6f}",
                    f"{result.envy_freeness:.6f}",
                    result.iterations,
                    result.converged,
                    "" if result.mur is None else f"{result.mur:.6f}",
                    "" if result.mbr is None else f"{result.mbr:.6f}",
                ]
            )
    return out.getvalue()


def simulation_to_csv(scores) -> str:
    """One row per (bundle, mechanism) of a phase-2 experiment."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        ["bundle", "category", "mechanism", "efficiency", "efficiency_vs_opt",
         "envy_freeness", "mean_market_iterations"]
    )
    for score in scores:
        for mechanism in score.efficiency:
            writer.writerow(
                [
                    score.bundle,
                    score.category,
                    mechanism,
                    f"{score.efficiency[mechanism]:.6f}",
                    f"{score.efficiency_vs_opt(mechanism):.6f}",
                    f"{score.envy_freeness[mechanism]:.6f}",
                    f"{score.mean_iterations[mechanism]:.3f}",
                ]
            )
    return out.getvalue()


def write_csv(text: str, path) -> None:
    """Write exported CSV text to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(text)
