"""Plain-text reporting: the rows/series the paper's figures plot.

The benchmarks print through these helpers so that a run of the bench
suite regenerates, in text form, every figure and table of the paper's
evaluation section.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "summarize_sweep", "summarize_simulation"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A minimal fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[j]) for r in cells)) if cells else len(str(h))
        for j, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], max_points: int = 26
) -> str:
    """A compact ``x: y`` dump of one curve, subsampled if long."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size > max_points:
        idx = np.linspace(0, xs.size - 1, max_points).round().astype(int)
        xs, ys = xs[idx], ys[idx]
    pairs = " ".join(f"{x:g}:{y:.3f}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def summarize_sweep(sweep, reference: str = "MaxEfficiency") -> str:
    """The Figure 4 summary: efficiency and fairness per mechanism."""
    rows: List[List[object]] = []
    for mech in sweep.mechanisms:
        eff = sweep.efficiency_series(mech)
        ef = sweep.envy_freeness_series(mech)
        rows.append(
            [
                mech,
                float(np.median(eff)),
                float(eff.min()),
                sweep.fraction_at_least(mech, 0.95),
                sweep.fraction_at_least(mech, 0.90),
                float(np.median(ef)),
                float(ef.min()),
            ]
        )
    return format_table(
        [
            "mechanism",
            "median eff/OPT",
            "min eff/OPT",
            "frac >=95%",
            "frac >=90%",
            "median EF",
            "worst EF",
        ],
        rows,
        title=f"Figure 4 summary over {len(sweep.scores)} bundles "
        f"(normalized to {reference})",
    )


def summarize_simulation(scores) -> str:
    """The Figure 5 summary: per-category measured results."""
    mechanisms = list(scores[0].efficiency.keys()) if scores else []
    rows: List[List[object]] = []
    for score in scores:
        for mech in mechanisms:
            rows.append(
                [
                    score.bundle,
                    mech,
                    score.efficiency_vs_opt(mech),
                    score.envy_freeness[mech],
                    score.mean_iterations[mech],
                ]
            )
    return format_table(
        ["bundle", "mechanism", "eff/OPT", "EF", "mean market iters"],
        rows,
        title="Figure 5 summary (execution-driven simulation)",
    )
