"""The paper's core: proportional-share market, equilibrium search,
MUR/MBR metrics, theoretical bounds, and the ReBudget reassignment loop."""

from .bidding import BiddingStrategy, ExactBidder, HillClimbBidder, PriceTakingBidder
from .equilibrium import EquilibriumResult, WarmStart, find_equilibrium
from .market import Market, MarketState
from .mechanisms import (
    AllocationMechanism,
    AllocationProblem,
    BalancedBudget,
    ElasticitiesProportional,
    EqualBudget,
    EqualShare,
    MaxEfficiency,
    MechanismResult,
    MechanismWarmState,
    ReBudgetMechanism,
    clamp_to_per_player_caps,
    standard_mechanism_suite,
)
from .metrics import (
    efficiency,
    envy_freeness,
    envy_matrix,
    market_budget_range,
    market_utility_range,
    price_of_anarchy,
)
from .optimum import GreedyOptimum, max_efficiency_allocation
from .player import Player, bid_to_allocation, marginal_utility_of_bids
from .rebudget import ReBudgetConfig, ReBudgetResult, ReBudgetRound, run_rebudget
from .resources import Resource, ResourceSet
from .theory import (
    check_theorem1,
    check_theorem2,
    ef_lower_bound,
    fig1_ef_series,
    fig1_poa_series,
    min_mbr_for_envy_freeness,
    poa_lower_bound,
    zhang_equal_budget_ef_bound,
    zhang_poa_order,
)

__all__ = [
    "Resource",
    "ResourceSet",
    "Player",
    "bid_to_allocation",
    "marginal_utility_of_bids",
    "Market",
    "MarketState",
    "BiddingStrategy",
    "HillClimbBidder",
    "ExactBidder",
    "PriceTakingBidder",
    "EquilibriumResult",
    "WarmStart",
    "find_equilibrium",
    "efficiency",
    "envy_freeness",
    "envy_matrix",
    "price_of_anarchy",
    "market_utility_range",
    "market_budget_range",
    "poa_lower_bound",
    "ef_lower_bound",
    "min_mbr_for_envy_freeness",
    "zhang_equal_budget_ef_bound",
    "zhang_poa_order",
    "fig1_poa_series",
    "fig1_ef_series",
    "check_theorem1",
    "check_theorem2",
    "ReBudgetConfig",
    "ReBudgetResult",
    "ReBudgetRound",
    "run_rebudget",
    "GreedyOptimum",
    "max_efficiency_allocation",
    "AllocationProblem",
    "MechanismResult",
    "MechanismWarmState",
    "AllocationMechanism",
    "EqualShare",
    "EqualBudget",
    "BalancedBudget",
    "ReBudgetMechanism",
    "MaxEfficiency",
    "ElasticitiesProportional",
    "clamp_to_per_player_caps",
    "standard_mechanism_suite",
]
