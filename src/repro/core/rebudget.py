"""ReBudget: runtime budget reassignment (Section 4.2 of the paper).

ReBudget sits on top of the equilibrium finder.  Starting from equal
budgets, it repeatedly (1) lets the market reach equilibrium, (2)
collects every player's marginal utility of money ``lambda_i``, (3)
cuts the budget of every player whose ``lambda_i`` is below half the
market maximum by the current ``step``, and (4) halves ``step``.  The
loop stops when ``step`` falls below 1% of the initial budget or when a
round cuts nobody.

The knob is ``step`` (the paper evaluates ReBudget-20 and ReBudget-40
with an initial budget of 100).  Alternatively, the administrator can
set a minimum acceptable envy-freeness: Theorem 2 is inverted to an MBR
floor, budgets are never cut below ``MBR * B``, and the initial step is
``(1 - MBR) * B / 2`` — so the budget spread, and hence the fairness
guarantee, is maintained by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..exceptions import MarketConfigurationError
from ..qa import sanitize as _sanitize
from .bidding import BiddingStrategy, VectorHillClimbBidder
from .equilibrium import MAX_ITERATIONS, EquilibriumResult, WarmStart, find_equilibrium
from .market import Market
from .metrics import market_budget_range, market_utility_range
from .theory import ef_lower_bound, min_mbr_for_envy_freeness

__all__ = ["ReBudgetConfig", "ReBudgetRound", "ReBudgetResult", "run_rebudget"]


@dataclass
class ReBudgetConfig:
    """Tuning knobs of the ReBudget loop.

    Exactly one of ``step`` and ``min_envy_freeness`` should normally be
    set; when both are set the explicit ``step`` wins but the MBR floor
    derived from the fairness target is still enforced.  With only
    ``min_envy_freeness`` set, ``step`` defaults to
    ``(1 - MBR) * B / 2`` (the paper's initialization).
    """

    initial_budget: float = 100.0
    step: Optional[float] = None
    min_envy_freeness: Optional[float] = None
    lambda_threshold: float = 0.5
    step_stop_fraction: float = 0.01
    backoff: float = 0.5
    max_rounds: int = 32
    equilibrium_max_iterations: int = MAX_ITERATIONS

    def resolve(self) -> tuple:
        """Return ``(initial_step, budget_floor)`` for this configuration."""
        if self.initial_budget <= 0:
            raise MarketConfigurationError("initial budget must be positive")
        if not 0.0 < self.lambda_threshold < 1.0:
            raise MarketConfigurationError("lambda threshold must lie in (0, 1)")
        if not 0.0 < self.backoff < 1.0:
            raise MarketConfigurationError("backoff must lie in (0, 1)")

        floor = 0.0
        if self.min_envy_freeness is not None:
            mbr = min_mbr_for_envy_freeness(self.min_envy_freeness)
            floor = mbr * self.initial_budget

        if self.step is not None:
            if self.step <= 0:
                raise MarketConfigurationError("step must be positive")
            step = float(self.step)
        elif self.min_envy_freeness is not None:
            mbr = min_mbr_for_envy_freeness(self.min_envy_freeness)
            step = (1.0 - mbr) * self.initial_budget / 2.0
        else:
            raise MarketConfigurationError(
                "set either step (e.g. ReBudget-20) or min_envy_freeness"
            )
        return step, floor


@dataclass
class ReBudgetRound:
    """One outer iteration: an equilibrium plus the cuts it triggered."""

    round_index: int
    step: float
    budgets: np.ndarray
    lambdas: np.ndarray
    mur: float
    mbr: float
    efficiency: float
    cut_players: List[int]
    equilibrium: EquilibriumResult


@dataclass
class ReBudgetResult:
    """Outcome of the full ReBudget loop."""

    rounds: List[ReBudgetRound] = field(default_factory=list)

    @property
    def final(self) -> ReBudgetRound:
        return self.rounds[-1]

    @property
    def final_equilibrium(self) -> EquilibriumResult:
        return self.final.equilibrium

    @property
    def final_budgets(self) -> np.ndarray:
        return self.final.budgets

    @property
    def mur(self) -> float:
        return self.final.mur

    @property
    def mbr(self) -> float:
        return self.final.mbr

    @property
    def efficiency(self) -> float:
        return self.final.efficiency

    @property
    def guaranteed_envy_freeness(self) -> float:
        """Theorem 2 applied to the realized final MBR."""
        return ef_lower_bound(self.mbr)

    @property
    def total_equilibrium_iterations(self) -> int:
        """Pricing rounds summed over all outer iterations (Section 6.4)."""
        return sum(r.equilibrium.iterations for r in self.rounds)


def run_rebudget(
    market: Market,
    config: Optional[ReBudgetConfig] = None,
    bidder: Optional[BiddingStrategy] = None,
    warm_start: Optional[WarmStart] = None,
) -> ReBudgetResult:
    """Execute the ReBudget loop on ``market``.

    Player budgets on ``market`` are overwritten: they start at
    ``config.initial_budget`` for everyone and end at the reassigned
    values.  The result records every intermediate round so the
    efficiency/fairness trajectory can be inspected.

    ``warm_start`` seeds the *first* round's equilibrium search — in the
    epoch simulator this is the previous epoch's equal-budget
    equilibrium.  Every subsequent round is seeded from the previous
    round's equilibrium, rescaled to the post-cut budgets.
    """
    config = config or ReBudgetConfig()
    bidder = bidder or VectorHillClimbBidder()
    step, floor = config.resolve()
    initial_budget = config.initial_budget
    min_step = config.step_stop_fraction * initial_budget

    for player in market.players:
        player.budget = initial_budget

    result = ReBudgetResult()
    round_warm: Optional[WarmStart] = warm_start
    step_exhausted = False
    for round_index in range(config.max_rounds):
        equilibrium = find_equilibrium(
            market,
            bidder=bidder,
            warm_start=round_warm,
            max_iterations=config.equilibrium_max_iterations,
        )
        lambdas = equilibrium.lambdas
        budgets = market.budgets
        cut_players: List[int] = []

        # Step (3): cut the budget of every player whose lambda_i sits
        # below the threshold, but never below the MBR floor.  A player
        # whose full step would cross the floor is cut partially, onto
        # the floor itself — skipping it instead would leave low-lambda
        # players stranded just above the floor and the configured
        # fairness knob (min_envy_freeness -> MBR * B) never reached.
        # Once the step has shrunk below 1% of the initial budget, this
        # round's equilibrium is the final outcome and no more cuts are
        # made.
        if not step_exhausted:
            threshold = config.lambda_threshold * float(lambdas.max(initial=0.0))
            for i, player in enumerate(market.players):
                if lambdas[i] < threshold and player.budget > floor + 1e-12:
                    player.budget = max(player.budget - step, floor)
                    cut_players.append(i)

        if _sanitize.ACTIVE:
            _sanitize.check_budget_floor(market.budgets, floor, initial_budget)

        result.rounds.append(
            ReBudgetRound(
                round_index=round_index,
                step=step,
                budgets=budgets,
                lambdas=lambdas,
                mur=market_utility_range(lambdas),
                mbr=market_budget_range(budgets),
                efficiency=equilibrium.efficiency,
                cut_players=cut_players,
                equilibrium=equilibrium,
            )
        )

        if step_exhausted or not cut_players:
            break

        # Step (4): exponential back-off.  When the next step would be
        # below the stop threshold we still re-converge once so that the
        # final equilibrium reflects the last round's cuts.
        step *= config.backoff
        if step < min_step:
            step_exhausted = True

        # Warm-start the next equilibrium from this round's end-state;
        # find_equilibrium rescales the bids to the post-cut budgets,
        # which keeps re-convergence fast.
        round_warm = equilibrium.warm_start

    return result
