"""MaxEfficiency: the welfare-maximizing reference allocation.

The paper obtains its efficiency upper bound by running an "infeasible
very fine-grained hill-climbing search" over concave utilities
(Section 6).  We reproduce that with a lazy-greedy quantum allocator:
resources are split into small quanta and each quantum is handed to the
player whose utility increases the most.  For concave utilities marginal
gains are diminishing, so the lazy evaluation (a max-heap with stale
entries re-validated on pop) is sound, and the greedy solution converges
to the continuous optimum as the quantum shrinks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import MarketConfigurationError
from ..utility.base import UtilityFunction

__all__ = ["max_efficiency_allocation", "GreedyOptimum"]


@dataclass
class GreedyOptimum:
    """Result of the greedy welfare maximization."""

    allocations: np.ndarray  # (N, M)
    utilities: np.ndarray    # (N,)
    steps: int

    @property
    def efficiency(self) -> float:
        return float(self.utilities.sum())


class _LatticeValueCache:
    """Memoized utility evaluation on the quantum lattice.

    Every point the greedy fill, the exchange passes and the leftovers
    pass evaluate is an integer multiple of the quanta, and the
    refinement loop re-scores the same candidate moves on every sweep —
    ~20x redundancy on a 64-player problem.  Caching by integer lattice
    coordinates turns those revisits into dict hits while returning the
    exact same floats, so the optimum is bitwise unchanged.  Off-lattice
    queries (the optional SLSQP polish) fall through uncached.
    """

    __slots__ = ("_utility", "_quanta", "_cache")

    def __init__(self, utility: UtilityFunction, quanta: np.ndarray):
        self._utility = utility
        self._quanta = quanta
        self._cache: dict = {}

    def value(self, allocation) -> float:
        coords = np.asarray(allocation, dtype=float) / self._quanta
        rounded = np.rint(coords)
        if coords.size and float(np.max(np.abs(coords - rounded))) > 1e-6:
            return self._utility.value(allocation)
        key = tuple(int(c) for c in rounded)
        hit = self._cache.get(key)
        if hit is None:
            hit = self._cache[key] = self._utility.value(allocation)
        return hit


def max_efficiency_allocation(
    utilities: Sequence[UtilityFunction],
    capacities: Sequence[float],
    quanta: Sequence[float],
    per_player_caps: Optional[np.ndarray] = None,
    polish: bool = False,
) -> GreedyOptimum:
    """Greedily maximize ``sum_i U_i(r_i)`` subject to capacity limits.

    Parameters
    ----------
    utilities:
        One concave utility per player over the M resources.
    capacities:
        Total amount of each resource to distribute.
    quanta:
        Allocation granularity per resource (e.g. one 128 kB cache
        region, one 0.125 W RAPL power unit).  Smaller quanta approach
        the continuous optimum at linear cost.
    per_player_caps:
        Optional (N, M) matrix limiting any player's share of each
        resource (e.g. the 2 MB shadow-tag monitoring limit).

    Notes
    -----
    Capacity that yields no player any positive gain is still handed out
    round-robin at the end so the result honours the paper's "no
    leftovers" invariant; those quanta are utility-neutral by
    construction.
    """
    capacities = np.asarray(capacities, dtype=float)
    quanta = np.asarray(quanta, dtype=float)
    num_players = len(utilities)
    num_resources = capacities.size
    if quanta.size != num_resources:
        raise MarketConfigurationError("need one quantum per resource")
    if np.any(quanta <= 0):
        raise MarketConfigurationError("quanta must be positive")
    if per_player_caps is not None:
        per_player_caps = np.asarray(per_player_caps, dtype=float)
        if per_player_caps.shape != (num_players, num_resources):
            raise MarketConfigurationError("per_player_caps must be (N, M)")

    utilities = [_LatticeValueCache(u, quanta) for u in utilities]
    allocations = np.zeros((num_players, num_resources))
    current = np.zeros(num_players)  # cached U_i(r_i)
    remaining = np.floor(capacities / quanta + 1e-9).astype(int)

    def gain(i: int, j: int) -> float:
        trial = allocations[i].copy()
        trial[j] += quanta[j]
        return utilities[i].value(trial) - current[i]

    def capped(i: int, j: int) -> bool:
        return (
            per_player_caps is not None
            and allocations[i, j] + quanta[j] > per_player_caps[i, j] + 1e-9
        )

    counter = itertools.count()
    heap: list = []
    for i in range(num_players):
        current[i] = utilities[i].value(allocations[i])
        for j in range(num_resources):
            if remaining[j] > 0 and not capped(i, j):
                heapq.heappush(heap, (-gain(i, j), next(counter), i, j))

    steps = 0
    while heap:
        neg_gain, _, i, j = heapq.heappop(heap)
        if remaining[j] <= 0 or capped(i, j):
            continue
        fresh = gain(i, j)
        if fresh <= 0.0:
            # Diminishing returns: no entry below this one can be
            # positive for this (i, j); drop it.
            continue
        if heap and fresh < -heap[0][0] - 1e-15:
            # Stale entry: re-insert with the recomputed gain.
            heapq.heappush(heap, (-fresh, next(counter), i, j))
            continue
        allocations[i, j] += quanta[j]
        current[i] += fresh
        remaining[j] -= 1
        steps += 1
        if remaining[j] > 0 and not capped(i, j):
            heapq.heappush(heap, (-gain(i, j), next(counter), i, j))

    _distribute_leftovers(allocations, remaining, quanta, per_player_caps)

    # Cache and power are complements for cliffy applications (extra
    # power is worthless until the working set fits), which violates the
    # submodularity the lazy greedy relies on.  A hill-climbing exchange
    # pass — move one quantum at a time from the player that loses least
    # to the player that gains most — repairs those misallocations; this
    # is the paper's "very fine-grained hill-climbing search".
    steps += _exchange_refinement(
        utilities, allocations, current, quanta, per_player_caps
    )
    # Pure complements (a quantum of cache is worthless without the
    # matching power) defeat single-resource moves entirely: every
    # marginal gain is zero until both resources arrive.  A joint pass
    # transfers a bundle with one quantum of *every* resource at once.
    joint_moves = _joint_exchange_pass(
        utilities, allocations, current, quanta, per_player_caps
    )
    if joint_moves:
        # Joint moves open new single-resource opportunities; re-run.
        steps += joint_moves + _exchange_refinement(
            utilities, allocations, current, quanta, per_player_caps
        )

    if polish:
        # Optional gradient-based polish (SLSQP on the continuous
        # relaxation, started from the greedy point and an equal split);
        # the better solution is kept.  Off by default: the exchange
        # passes already dominate the market on the paper's 2-resource
        # problems, and under strong 3-way complementarity the landscape
        # is not jointly concave, so local continuous search stalls in
        # the same basins the exchanges do.
        polished = _slsqp_polish(utilities, allocations, capacities, per_player_caps)
        if polished is not None:
            allocations = polished

    final_utilities = np.array(
        [utilities[i].value(allocations[i]) for i in range(num_players)]
    )
    return GreedyOptimum(allocations=allocations, utilities=final_utilities, steps=steps)


def _slsqp_polish(
    utilities: Sequence[UtilityFunction],
    allocations: np.ndarray,
    capacities: np.ndarray,
    per_player_caps: Optional[np.ndarray],
) -> Optional[np.ndarray]:
    """Continuous polish of the greedy solution; None if unavailable/worse."""
    try:
        from scipy.optimize import LinearConstraint, minimize
    except ImportError:  # pragma: no cover - scipy is an optional polish
        return None

    num_players, num_resources = allocations.shape

    def objective(x: np.ndarray) -> float:
        r = x.reshape(num_players, num_resources)
        return -sum(utilities[i].value(r[i]) for i in range(num_players))

    # One linear constraint per resource: allocations sum to capacity.
    coefficient_rows = np.zeros((num_resources, allocations.size))
    for j in range(num_resources):
        coefficient_rows[j, j::num_resources] = 1.0
    constraint = LinearConstraint(coefficient_rows, 0.0, capacities)

    if per_player_caps is not None:
        upper = per_player_caps.reshape(-1)
    else:
        upper = np.tile(capacities, num_players)
    bounds = [(0.0, float(u)) for u in upper]

    starts = [allocations.reshape(-1)]
    equal = np.tile(capacities / num_players, num_players)
    starts.append(np.minimum(equal, upper))
    best = allocations
    best_value = -objective(allocations.reshape(-1))
    for start in starts:
        result = minimize(
            objective,
            start,
            method="SLSQP",
            bounds=bounds,
            constraints=[constraint],
            options={"maxiter": 200, "ftol": 1e-9},
        )
        if result.success or result.status in (4, 8):
            candidate = result.x.reshape(num_players, num_resources)
            candidate = np.clip(candidate, 0.0, None)
            value = -objective(candidate.reshape(-1))
            if value > best_value + 1e-12:
                best = candidate
                best_value = value
    return best


def _exchange_refinement(
    utilities: Sequence[UtilityFunction],
    allocations: np.ndarray,
    current: np.ndarray,
    quanta: np.ndarray,
    per_player_caps: Optional[np.ndarray],
    max_moves: int = 20000,
    tolerance: float = 1e-12,
) -> int:
    """Quantum-exchange hill climbing on top of the greedy fill."""
    num_players, num_resources = allocations.shape
    moves = 0
    improved = True
    while improved and moves < max_moves:
        improved = False
        for j in range(num_resources):
            q = quanta[j]
            gains = np.full(num_players, -np.inf)
            losses = np.full(num_players, np.inf)
            for i in range(num_players):
                at_cap = (
                    per_player_caps is not None
                    and allocations[i, j] + q > per_player_caps[i, j] + 1e-9
                )
                if not at_cap:
                    trial = allocations[i].copy()
                    trial[j] += q
                    gains[i] = utilities[i].value(trial) - current[i]
                if allocations[i, j] >= q - 1e-9:
                    trial = allocations[i].copy()
                    trial[j] -= q
                    losses[i] = current[i] - utilities[i].value(trial)
            recipient, donor = _best_exchange_pair(gains, losses)
            if (
                recipient is not None
                and gains[recipient] - losses[donor] > tolerance
            ):
                allocations[recipient, j] += q
                allocations[donor, j] -= q
                current[recipient] += gains[recipient]
                current[donor] -= losses[donor]
                moves += 1
                improved = True
    return moves


def _joint_exchange_pass(
    utilities: Sequence[UtilityFunction],
    allocations: np.ndarray,
    current: np.ndarray,
    quanta: np.ndarray,
    per_player_caps: Optional[np.ndarray],
    max_moves: int = 5000,
    tolerance: float = 1e-12,
) -> int:
    """Move one quantum of *every* resource between players at once."""
    num_players, num_resources = allocations.shape
    moves = 0
    improved = True
    while improved and moves < max_moves:
        improved = False
        for donor in range(num_players):
            bundle = np.minimum(quanta, allocations[donor])
            if np.all(bundle <= 0.0):
                continue
            donor_after = allocations[donor] - bundle
            loss = current[donor] - utilities[donor].value(donor_after)
            best_gain = 0.0
            best_recipient = None
            for recipient in range(num_players):
                if recipient == donor:
                    continue
                trial = allocations[recipient] + bundle
                if per_player_caps is not None and np.any(
                    trial > per_player_caps[recipient] + 1e-9
                ):
                    continue
                gain = utilities[recipient].value(trial) - current[recipient]
                if gain > best_gain:
                    best_gain = gain
                    best_recipient = recipient
            if best_recipient is not None and best_gain - loss > tolerance:
                allocations[donor] -= bundle
                allocations[best_recipient] += bundle
                current[donor] -= loss
                current[best_recipient] += best_gain
                moves += 1
                improved = True
    return moves


def _best_exchange_pair(gains: np.ndarray, losses: np.ndarray):
    """The (recipient, donor) pair maximizing ``gain - loss``.

    The top gainer and the top (least-loss) donor may be the same
    player; in that case the optimum pairs one of them with the runner-up
    on the other side, so both combinations are evaluated.
    """
    order_gain = np.argsort(gains)[::-1]
    order_loss = np.argsort(losses)
    best = (None, None)
    best_value = -np.inf
    for r in order_gain[:2]:
        for d in order_loss[:2]:
            if r == d or not np.isfinite(gains[r]) or not np.isfinite(losses[d]):
                continue
            value = gains[r] - losses[d]
            if value > best_value:
                best_value = value
                best = (int(r), int(d))
    return best


def _distribute_leftovers(
    allocations: np.ndarray,
    remaining: np.ndarray,
    quanta: np.ndarray,
    per_player_caps: Optional[np.ndarray],
) -> None:
    """Hand out utility-neutral residual quanta round-robin ("no leftovers")."""
    num_players = allocations.shape[0]
    for j in range(remaining.size):
        i = 0
        guard = remaining[j] * num_players + num_players
        while remaining[j] > 0 and guard > 0:
            guard -= 1
            target = i % num_players
            i += 1
            if (
                per_player_caps is not None
                and allocations[target, j] + quanta[j] > per_player_caps[target, j] + 1e-9
            ):
                continue
            allocations[target, j] += quanta[j]
            remaining[j] -= 1
