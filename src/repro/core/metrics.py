"""Efficiency and fairness metrics (Sections 2.2, 2.3, and 3).

* efficiency / weighted speedup (Definition 1, Equation 5)
* envy-freeness (Definition 3) and c-approximate envy-freeness
* Price of Anarchy (Definition 2) given an optimal reference
* Market Utility Range, MUR (Definition 5)
* Market Budget Range, MBR (Definition 6)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..qa import sanitize as _sanitize
from ..utility.base import UtilityFunction

__all__ = [
    "efficiency",
    "envy_freeness",
    "envy_matrix",
    "price_of_anarchy",
    "market_utility_range",
    "market_budget_range",
]


def efficiency(utilities: Sequence[float]) -> float:
    """System efficiency: the sum of player utilities (Definition 1).

    With utilities normalized to standalone IPC this is exactly the
    weighted-speedup throughput metric (Equation 5).
    """
    return float(np.sum(np.asarray(utilities, dtype=float)))


def envy_matrix(
    utilities: Sequence[UtilityFunction], allocations: np.ndarray
) -> np.ndarray:
    """``E[i, j] = U_i(r_j)``: what player i's utility would be with j's bundle."""
    allocations = np.asarray(allocations, dtype=float)
    n = allocations.shape[0]
    matrix = np.empty((n, n))
    for i, utility in enumerate(utilities):
        for j in range(n):
            matrix[i, j] = utility.value(allocations[j])
    return matrix


def envy_freeness(
    utilities: Sequence[UtilityFunction], allocations: np.ndarray
) -> float:
    """Envy-freeness of an allocation (Definition 3).

    ``EF = min_{i,j} U_i(r_i) / U_i(r_j)``.  The minimum ranges over all
    ordered pairs including ``i == j``, so ``EF <= 1`` always and
    ``EF == 1`` means the allocation is envy-free.  Conventions for
    degenerate values: if a player values some other bundle positively
    but its own at zero, the ratio is 0; pairs where the other bundle is
    valued at zero impose no constraint (nobody envies a worthless
    bundle).
    """
    matrix = envy_matrix(utilities, allocations)
    own = np.diag(matrix).copy()
    n = matrix.shape[0]
    worst = 1.0  # the i == j pairs contribute exactly 1
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            other = matrix[i, j]
            if other <= 0.0:
                continue
            worst = min(worst, own[i] / other)
    return float(worst)


def price_of_anarchy(equilibrium_efficiency: float, optimal_efficiency: float) -> float:
    """Realized efficiency ratio ``Nash / OPT`` (cf. Definition 2).

    Definition 2's PoA is the worst case over all equilibria; with a
    single computed equilibrium this returns the realized ratio, which
    upper-bounds the true PoA and must respect Theorem 1's lower bound.
    """
    if optimal_efficiency <= 0.0:
        return 1.0
    return float(equilibrium_efficiency / optimal_efficiency)


def market_utility_range(lambdas: Sequence[float]) -> float:
    """MUR: ``min_i lambda_i / max_i lambda_i`` (Definition 5).

    Degenerate markets where every player's marginal utility of money is
    zero (everyone saturated) have nothing to gain from budget movement,
    so we report MUR = 1.  Monitored (noisy) utilities can yield a
    negative lambda estimate, which would push the raw ratio below 0 and
    outside Theorem 1's domain; the result is clamped to [0, 1] so
    downstream bound checks (``poa_lower_bound``) stay applicable.
    """
    values = np.asarray(lambdas, dtype=float)
    top = float(values.max(initial=0.0))
    if top <= 0.0:
        return 1.0
    result = float(min(max(float(values.min()) / top, 0.0), 1.0))
    if _sanitize.ACTIVE:
        _sanitize.check_unit_interval("MUR", result)
    return result


def market_budget_range(budgets: Sequence[float]) -> float:
    """MBR: ``min_i B_i / max_i B_i`` (Definition 6).

    Clamped to [0, 1] symmetrically with :func:`market_utility_range`
    so a pathological negative budget can never escape Theorem 2's
    domain (``ef_lower_bound``).
    """
    values = np.asarray(budgets, dtype=float)
    top = float(values.max(initial=0.0))
    if top <= 0.0:
        return 1.0
    result = float(min(max(float(values.min()) / top, 0.0), 1.0))
    if _sanitize.ACTIVE:
        _sanitize.check_unit_interval("MBR", result)
    return result
