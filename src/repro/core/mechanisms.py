"""Allocation mechanisms compared in the paper's evaluation (Section 6).

Every mechanism consumes an :class:`AllocationProblem` — N players with
concave utilities over M divisible resources — and produces a
:class:`MechanismResult` with the allocation, per-player utilities, and
the efficiency/fairness metrics.  The mechanisms:

* ``EqualShare``      — split every resource evenly (no market).
* ``EqualBudget``     — market equilibrium, identical budgets (XChange).
* ``BalancedBudget``  — XChange's wealth redistribution: budgets
  proportional to each player's normalized performance "potential".
* ``ReBudgetMechanism`` — this paper's contribution (ReBudget-``step``).
* ``MaxEfficiency``   — the infeasible welfare-maximizing reference.
* ``ElasticitiesProportional`` — Zahedi & Lee's Cobb-Douglas EP rule,
  which the paper critiques; included as an extension baseline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import MarketConfigurationError
from ..qa import sanitize as _sanitize
from ..utility.base import UtilityFunction
from .bidding import BiddingStrategy, VectorHillClimbBidder
from .equilibrium import EquilibriumResult, WarmStart, find_equilibrium
from .market import Market
from .metrics import (
    efficiency as efficiency_metric,
    envy_freeness,
    market_budget_range,
    market_utility_range,
)
from .optimum import max_efficiency_allocation
from .player import Player
from .rebudget import ReBudgetConfig, ReBudgetResult, run_rebudget
from .resources import Resource, ResourceSet

__all__ = [
    "DEFAULT_BUDGET",
    "AllocationProblem",
    "MechanismResult",
    "MechanismWarmState",
    "AllocationMechanism",
    "EqualShare",
    "EqualBudget",
    "BalancedBudget",
    "ReBudgetMechanism",
    "MaxEfficiency",
    "ElasticitiesProportional",
    "clamp_to_per_player_caps",
    "standard_mechanism_suite",
]

#: Paper's per-player initial budget in all experiments.
DEFAULT_BUDGET = 100.0


@dataclass
class AllocationProblem:
    """An N-player, M-resource divisible allocation instance.

    ``utilities[i]`` maps an allocation vector (in the same order as
    ``resource_names``) to player ``i``'s utility.  In the multicore
    instantiation the vectors are *extra* resources beyond each core's
    free minimum, and the utilities already fold the free minimum in.
    """

    utilities: List[UtilityFunction]
    capacities: np.ndarray
    resource_names: Sequence[str]
    player_names: Sequence[str]
    quanta: Optional[np.ndarray] = None
    per_player_caps: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.capacities = np.asarray(self.capacities, dtype=float)
        if len(self.utilities) == 0:
            raise MarketConfigurationError("need at least one player")
        if len(self.player_names) != len(self.utilities):
            raise MarketConfigurationError("one name per player required")
        if len(self.resource_names) != self.capacities.size:
            raise MarketConfigurationError("one name per resource required")
        if self.quanta is None:
            # Default optimum-search granularity: 1/256 of each capacity.
            self.quanta = self.capacities / 256.0
        else:
            self.quanta = np.asarray(self.quanta, dtype=float)

    @property
    def num_players(self) -> int:
        return len(self.utilities)

    @property
    def num_resources(self) -> int:
        return self.capacities.size

    def build_market(self, budgets: Sequence[float]) -> Market:
        resources = ResourceSet.of(
            *[
                Resource(name=name, capacity=cap)
                for name, cap in zip(self.resource_names, self.capacities)
            ]
        )
        players = [
            Player(name, utility, budget)
            for name, utility, budget in zip(self.player_names, self.utilities, budgets)
        ]
        return Market(resources, players)


@dataclass
class MechanismResult:
    """Allocation plus the metrics the paper reports for it."""

    mechanism: str
    allocations: np.ndarray
    utilities: np.ndarray
    efficiency: float
    envy_freeness: float
    iterations: int = 0
    converged: bool = True
    budgets: Optional[np.ndarray] = None
    lambdas: Optional[np.ndarray] = None
    mur: Optional[float] = None
    mbr: Optional[float] = None
    details: Dict[str, object] = field(default_factory=dict)


def clamp_to_per_player_caps(
    allocations: np.ndarray, per_player_caps: np.ndarray
) -> np.ndarray:
    """Clamp each player's allocation at its cap, redistributing surplus.

    Surplus freed from capped players is handed to the uncapped ones in
    proportion to their pre-clamp allocations (equally when every
    uncapped player holds zero), iterating per resource until nobody
    exceeds its cap.  Surplus that no player can absorb is left
    unallocated — capacity beyond every cap yields no utility by
    construction of the caps.
    """
    alloc = np.array(allocations, dtype=float)
    caps = np.asarray(per_player_caps, dtype=float)
    if caps.shape != alloc.shape:
        raise MarketConfigurationError(
            f"per-player caps shape {caps.shape} != allocations shape {alloc.shape}"
        )
    num_players, num_resources = alloc.shape
    for j in range(num_resources):
        column = alloc[:, j]
        cap = caps[:, j]
        capped = np.zeros(num_players, dtype=bool)
        for _ in range(num_players):
            over = (column > cap + 1e-12) & ~capped
            if not over.any():
                break
            surplus = float((column[over] - cap[over]).sum())
            column[over] = cap[over]
            capped |= over
            receivers = ~capped
            if not receivers.any() or surplus <= 0.0:
                break
            weights = column[receivers]
            total = float(weights.sum())
            if total > 0.0:
                column[receivers] += surplus * weights / total
            else:
                column[receivers] += surplus / int(receivers.sum())
        alloc[:, j] = column
    return alloc


@dataclass
class MechanismWarmState:
    """Epoch-to-epoch state a stateful mechanism carries between calls.

    The warm start is only reusable when the next problem has the same
    players over the same resources; the names double as a cheap
    identity check that catches context switches even if the caller
    forgets to invalidate.
    """

    warm_start: WarmStart
    player_names: tuple
    resource_names: tuple

    def matches(self, problem: "AllocationProblem") -> bool:
        return (
            tuple(self.player_names) == tuple(problem.player_names)
            and tuple(self.resource_names) == tuple(problem.resource_names)
            and self.warm_start.bids.shape
            == (problem.num_players, problem.num_resources)
        )


class AllocationMechanism(abc.ABC):
    """Common interface for all allocation mechanisms.

    Mechanisms that run the market carry an optional persistent
    ``warm_state`` so consecutive calls on the same player/resource set
    (the simulator's 1 ms epochs) resume from the previous equilibrium
    instead of an equal split.  Callers that change the underlying
    problem out from under the mechanism — e.g. a context switch — must
    call :meth:`reset_warm_state`.
    """

    name: str = "mechanism"
    warm_state: Optional[MechanismWarmState] = None

    @abc.abstractmethod
    def allocate(self, problem: AllocationProblem) -> MechanismResult:
        """Solve ``problem`` and return the allocation with its metrics."""

    def reset_warm_state(self) -> None:
        """Drop any carried equilibrium state (e.g. on a context switch)."""
        self.warm_state = None

    def _warm_start_for(self, problem: AllocationProblem) -> Optional[WarmStart]:
        state = self.warm_state
        if state is None or not state.matches(problem):
            return None
        return state.warm_start

    def _store_warm_state(
        self, problem: AllocationProblem, warm_start: Optional[WarmStart]
    ) -> None:
        if warm_start is None:
            return
        self.warm_state = MechanismWarmState(
            warm_start=warm_start,
            player_names=tuple(problem.player_names),
            resource_names=tuple(problem.resource_names),
        )

    def _finish(
        self,
        problem: AllocationProblem,
        allocations: np.ndarray,
        **extra,
    ) -> MechanismResult:
        if problem.per_player_caps is not None:
            allocations = clamp_to_per_player_caps(
                allocations, problem.per_player_caps
            )
        if _sanitize.ACTIVE:
            _sanitize.check_allocation(allocations, problem.capacities)
        utilities = np.array(
            [u.value(allocations[i]) for i, u in enumerate(problem.utilities)]
        )
        return MechanismResult(
            mechanism=self.name,
            allocations=allocations,
            utilities=utilities,
            efficiency=efficiency_metric(utilities),
            envy_freeness=envy_freeness(problem.utilities, allocations),
            **extra,
        )


class EqualShare(AllocationMechanism):
    """Split every resource evenly across players — the no-market baseline."""

    name = "EqualShare"

    def allocate(self, problem: AllocationProblem) -> MechanismResult:
        n = problem.num_players
        allocations = np.tile(problem.capacities / n, (n, 1))
        return self._finish(problem, allocations)


class EqualBudget(AllocationMechanism):
    """Market equilibrium with identical budgets (XChange's default).

    ``warm=True`` (the default) carries the previous call's equilibrium
    bids across calls on the same player/resource set, so the epoch
    simulator's per-millisecond re-runs resume from an almost-correct
    answer instead of re-searching from an equal split.
    """

    name = "EqualBudget"

    def __init__(
        self,
        budget: float = DEFAULT_BUDGET,
        bidder: Optional[BiddingStrategy] = None,
        warm: bool = True,
    ):
        self.budget = budget
        self.bidder = bidder or VectorHillClimbBidder()
        self.warm = warm
        self.warm_state = None

    def allocate(self, problem: AllocationProblem) -> MechanismResult:
        market = problem.build_market([self.budget] * problem.num_players)
        eq = find_equilibrium(
            market,
            bidder=self.bidder,
            warm_start=self._warm_start_for(problem) if self.warm else None,
        )
        if self.warm:
            self._store_warm_state(problem, eq.warm_start)
        return self._result_from_equilibrium(problem, market, eq)

    def _result_from_equilibrium(
        self, problem: AllocationProblem, market: Market, eq: EquilibriumResult
    ) -> MechanismResult:
        result = self._finish(
            problem,
            eq.state.allocations,
            iterations=eq.iterations,
            converged=eq.converged,
            budgets=market.budgets,
            lambdas=eq.lambdas,
            mur=market_utility_range(eq.lambdas),
            mbr=market_budget_range(market.budgets),
        )
        result.details["prices"] = eq.state.prices.copy()
        return result


class BalancedBudget(EqualBudget):
    """XChange's wealth redistribution (Section 6's "Balanced").

    Each player receives a budget proportional to the utility difference
    between its maximum possible allocation (all per-player caps, or the
    full capacities) and its minimum (nothing beyond the free share),
    normalized to the former.  Budgets are rescaled so the largest equals
    ``budget``, keeping the numbers comparable with EqualBudget.
    """

    name = "Balanced"

    def allocate(self, problem: AllocationProblem) -> MechanismResult:
        potentials = np.empty(problem.num_players)
        for i, utility in enumerate(problem.utilities):
            if problem.per_player_caps is not None:
                best = np.minimum(problem.capacities, problem.per_player_caps[i])
            else:
                best = problem.capacities
            u_max = utility.value(best)
            u_min = utility.value(np.zeros(problem.num_resources))
            potentials[i] = (u_max - u_min) / u_max if u_max > 0 else 0.0
        top = potentials.max()
        if top <= 0.0:
            budgets = np.full(problem.num_players, self.budget)
        else:
            # Keep a small floor so no player is priced out entirely.
            budgets = self.budget * np.maximum(potentials / top, 0.05)
        market = problem.build_market(budgets)
        # The warm bids were computed for the previous epoch's budgets;
        # find_equilibrium rescales each row to the fresh ones.
        eq = find_equilibrium(
            market,
            bidder=self.bidder,
            warm_start=self._warm_start_for(problem) if self.warm else None,
        )
        if self.warm:
            self._store_warm_state(problem, eq.warm_start)
        return self._result_from_equilibrium(problem, market, eq)


class ReBudgetMechanism(AllocationMechanism):
    """The paper's contribution, wrapped as a mechanism.

    ``ReBudgetMechanism(step=20)`` is the paper's ReBudget-20;
    ``ReBudgetMechanism(min_envy_freeness=0.5)`` derives the step and the
    budget floor from Theorem 2 instead.
    """

    def __init__(
        self,
        step: Optional[float] = None,
        min_envy_freeness: Optional[float] = None,
        budget: float = DEFAULT_BUDGET,
        bidder: Optional[BiddingStrategy] = None,
        lambda_threshold: float = 0.5,
        warm: bool = True,
    ):
        self.config = ReBudgetConfig(
            initial_budget=budget,
            step=step,
            min_envy_freeness=min_envy_freeness,
            lambda_threshold=lambda_threshold,
        )
        self.bidder = bidder or VectorHillClimbBidder()
        self.warm = warm
        self.warm_state = None
        if step is not None:
            self.name = f"ReBudget-{step:g}"
        else:
            self.name = f"ReBudget(EF>={min_envy_freeness:g})"

    def allocate(self, problem: AllocationProblem) -> MechanismResult:
        market = problem.build_market(
            [self.config.initial_budget] * problem.num_players
        )
        rebudget: ReBudgetResult = run_rebudget(
            market,
            self.config,
            bidder=self.bidder,
            warm_start=self._warm_start_for(problem) if self.warm else None,
        )
        if self.warm:
            # Budgets restart from an equal split every epoch, so the
            # right seed for the next epoch is this epoch's *first*
            # (equal-budget) equilibrium, not the post-cut final one.
            self._store_warm_state(problem, rebudget.rounds[0].equilibrium.warm_start)
        eq = rebudget.final_equilibrium
        result = self._finish(
            problem,
            eq.state.allocations,
            iterations=rebudget.total_equilibrium_iterations,
            converged=eq.converged,
            budgets=market.budgets,
            lambdas=eq.lambdas,
            mur=rebudget.mur,
            mbr=rebudget.mbr,
        )
        result.details["rebudget"] = rebudget
        result.details["prices"] = eq.state.prices.copy()
        return result


class MaxEfficiency(AllocationMechanism):
    """Welfare-maximizing reference via fine-grained greedy hill climbing."""

    name = "MaxEfficiency"

    def allocate(self, problem: AllocationProblem) -> MechanismResult:
        optimum = max_efficiency_allocation(
            problem.utilities,
            problem.capacities,
            problem.quanta,
            per_player_caps=problem.per_player_caps,
        )
        return self._finish(problem, optimum.allocations, iterations=optimum.steps)


class ElasticitiesProportional(AllocationMechanism):
    """Zahedi & Lee's EP rule on Cobb-Douglas fits (extension baseline).

    Each player's utility is sampled on a small grid and curve-fitted to
    ``U = A * prod_j r_j^{e_j}`` by log-log least squares; resource ``j``
    is then split in proportion to the fitted elasticities ``e_ij``.  The
    paper argues this misallocates when utilities do not fit the
    Cobb-Douglas family — our benchmarks quantify that.
    """

    name = "EP"

    def __init__(self, samples_per_resource: int = 5):
        self.samples_per_resource = samples_per_resource

    def allocate(self, problem: AllocationProblem) -> MechanismResult:
        elasticities = np.array(
            [
                self._fit_elasticities(u, problem.capacities)
                for u in problem.utilities
            ]
        )
        totals = elasticities.sum(axis=0)
        n = problem.num_players
        shares = np.where(
            totals > 0.0,
            elasticities / np.where(totals > 0.0, totals, 1.0),
            1.0 / n,
        )
        allocations = shares * problem.capacities
        result = self._finish(problem, allocations)
        result.details["elasticities"] = elasticities
        return result

    def _fit_elasticities(
        self, utility: UtilityFunction, capacities: np.ndarray
    ) -> np.ndarray:
        m = capacities.size
        # Sample away from zero: Cobb-Douglas is degenerate at the origin.
        axes = [
            np.linspace(0.1, 1.0, self.samples_per_resource) * cap
            for cap in capacities
        ]
        mesh = np.meshgrid(*axes, indexing="ij")
        points = np.stack([g.ravel() for g in mesh], axis=-1)
        values = np.array([utility.value(p) for p in points])
        mask = values > 1e-12
        if mask.sum() < m + 1:
            return np.full(m, 1.0 / m)
        design = np.column_stack([np.ones(mask.sum()), np.log(points[mask])])
        coeffs, *_ = np.linalg.lstsq(design, np.log(values[mask]), rcond=None)
        return np.maximum(coeffs[1:], 0.0)


def standard_mechanism_suite(
    rebudget_steps: Sequence[float] = (20.0, 40.0),
) -> List[AllocationMechanism]:
    """The mechanism line-up of Figures 4 and 5."""
    suite: List[AllocationMechanism] = [
        EqualShare(),
        EqualBudget(),
        BalancedBudget(),
    ]
    suite.extend(ReBudgetMechanism(step=s) for s in rebudget_steps)
    suite.append(MaxEfficiency())
    return suite
