"""Resource descriptors for the market.

A market sells ``M`` divisible resources; each has a name, a total
capacity ``C_j`` and a unit label.  In the multicore instantiation the
two resources are the shared last-level cache capacity (bytes) and the
chip power budget (watts) that remain after every core's free minimum
(Section 4.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..exceptions import MarketConfigurationError

__all__ = ["Resource", "ResourceSet"]


@dataclass(frozen=True)
class Resource:
    """A single divisible resource with total capacity ``capacity``."""

    name: str
    capacity: float
    unit: str = ""

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise MarketConfigurationError(
                f"resource {self.name!r} must have positive capacity, got {self.capacity}"
            )


@dataclass(frozen=True)
class ResourceSet:
    """An ordered collection of the resources a market sells."""

    resources: tuple = field(default_factory=tuple)

    @classmethod
    def of(cls, *resources: Resource) -> "ResourceSet":
        return cls(tuple(resources))

    def __post_init__(self) -> None:
        if not self.resources:
            raise MarketConfigurationError("a market needs at least one resource")
        names = [r.name for r in self.resources]
        if len(set(names)) != len(names):
            raise MarketConfigurationError(f"duplicate resource names: {names}")

    def __len__(self) -> int:
        return len(self.resources)

    def __iter__(self) -> Iterator[Resource]:
        return iter(self.resources)

    def __getitem__(self, index: int) -> Resource:
        return self.resources[index]

    @property
    def names(self) -> Sequence[str]:
        return [r.name for r in self.resources]

    @property
    def capacities(self) -> np.ndarray:
        """Capacity vector ``C`` (length M)."""
        return np.array([r.capacity for r in self.resources], dtype=float)

    def index_of(self, name: str) -> int:
        for j, r in enumerate(self.resources):
            if r.name == name:
                return j
        raise KeyError(name)
