"""Theoretical bounds: Theorems 1 and 2 and related quantities.

These closed forms are what Figure 1 of the paper plots, and what
ReBudget uses to translate an administrator's fairness floor into an
MBR constraint.  The empirical benchmarks check every observed
equilibrium against these bounds — they must never be violated.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "ZHANG_EQUAL_BUDGET_EF",
    "poa_lower_bound",
    "ef_lower_bound",
    "min_mbr_for_envy_freeness",
    "zhang_equal_budget_ef_bound",
    "zhang_poa_order",
    "fig1_poa_series",
    "fig1_ef_series",
    "check_theorem1",
    "check_theorem2",
]

#: Zhang's worst-case envy-freeness with equal budgets (Lemma 3):
#: ``2 * sqrt(2) - 2 ~= 0.828``.
ZHANG_EQUAL_BUDGET_EF = 2.0 * math.sqrt(2.0) - 2.0


def poa_lower_bound(mur: float) -> float:
    """Theorem 1: PoA lower bound as a function of MUR.

    * ``MUR >= 0.5`` -> ``PoA >= 1 - 1/(4 * MUR)`` (itself >= 0.5);
    * ``MUR <  0.5`` -> ``PoA >= MUR``.
    """
    if not 0.0 <= mur <= 1.0 + 1e-12:
        raise ValueError(f"MUR must lie in [0, 1], got {mur}")
    if mur >= 0.5:
        return 1.0 - 1.0 / (4.0 * mur)
    return mur


def ef_lower_bound(mbr: float) -> float:
    """Theorem 2: any equilibrium is ``(2*sqrt(1+MBR) - 2)``-approx envy-free."""
    if not 0.0 <= mbr <= 1.0 + 1e-12:
        raise ValueError(f"MBR must lie in [0, 1], got {mbr}")
    return 2.0 * math.sqrt(1.0 + mbr) - 2.0


def min_mbr_for_envy_freeness(ef_target: float) -> float:
    """Invert Theorem 2: the smallest MBR guaranteeing ``ef_target``.

    Solving ``2*sqrt(1+MBR) - 2 >= ef`` gives
    ``MBR >= ((ef + 2)/2)^2 - 1``.  The guaranteeable range of targets is
    ``[0, 2*sqrt(2) - 2]`` (the equal-budget worst case); targets outside
    raise ``ValueError``.
    """
    if not 0.0 <= ef_target <= ZHANG_EQUAL_BUDGET_EF + 1e-12:
        raise ValueError(
            f"envy-freeness target must lie in [0, {ZHANG_EQUAL_BUDGET_EF:.3f}], got {ef_target}"
        )
    return min(1.0, ((ef_target + 2.0) / 2.0) ** 2 - 1.0)


def zhang_equal_budget_ef_bound() -> float:
    """Lemma 3: equal-budget equilibria are 0.828-approximate envy-free."""
    return ZHANG_EQUAL_BUDGET_EF


def zhang_poa_order(num_players: int) -> float:
    """Lemma 2's asymptotic order ``Theta(1/sqrt(N))`` for reference curves."""
    if num_players < 1:
        raise ValueError("need at least one player")
    return 1.0 / math.sqrt(num_players)


def fig1_poa_series(points: int = 101) -> Tuple[np.ndarray, np.ndarray]:
    """The (MUR, PoA-bound) series plotted in Figure 1 (left)."""
    murs = np.linspace(0.0, 1.0, points)
    return murs, np.array([poa_lower_bound(m) for m in murs])


def fig1_ef_series(points: int = 101) -> Tuple[np.ndarray, np.ndarray]:
    """The (MBR, EF-bound) series plotted in Figure 1 (right)."""
    mbrs = np.linspace(0.0, 1.0, points)
    return mbrs, np.array([ef_lower_bound(m) for m in mbrs])


def check_theorem1(mur: float, realized_poa: float, slack: float = 1e-9) -> bool:
    """True when a realized efficiency ratio respects Theorem 1's bound."""
    return realized_poa >= poa_lower_bound(mur) - slack


def check_theorem2(mbr: float, realized_ef: float, slack: float = 1e-9) -> bool:
    """True when a realized envy-freeness respects Theorem 2's bound."""
    return realized_ef >= ef_lower_bound(mbr) - slack
