"""Iterative bidding–pricing equilibrium search (Section 2.1).

The market repeatedly (1) broadcasts prices and (2) lets every player
best-respond assuming the others' bids stay fixed.  Convergence is
detected globally by monitoring prices: the market is declared converged
when every resource price fluctuates within 1% between rounds (the
paper's criterion).  A fail-safe terminates the search after 30 rounds,
as in Section 6.4.

Warm starts
-----------
The paper re-runs the market every millisecond, and monitored utilities
barely move between consecutive epochs, so restarting every search from
an equal split discards an almost-correct answer.  Every search
therefore returns a :class:`WarmStart` — the final bid matrix plus the
budgets, prices, and per-player last-move sizes it was produced under —
which the next search can consume via ``find_equilibrium(...,
warm_start=...)``.  Warm bids are rescaled row-wise when budgets
changed, each player's hill climb resumes from its previous bids with a
step sized to its last move, and the loop's price-stability criterion
fires on the first round when the warm bids still clear the market —
so a warm-started search over an unchanged (or slowly drifting) problem
terminates after a single verification round instead of a full cold
search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..qa import sanitize as _sanitize
from ..utility.base import EVAL_COUNTERS
from ..utility.batch import BatchedUtilitySet
from .bidding import BiddingStrategy, VectorHillClimbBidder
from .market import Market, MarketState
from .player import marginal_utility_of_bids_batch

__all__ = [
    "PRICE_TOLERANCE",
    "MAX_ITERATIONS",
    "WarmStart",
    "EquilibriumResult",
    "find_equilibrium",
]

#: Paper's global price-convergence tolerance (Section 2.1).
PRICE_TOLERANCE = 0.01

#: Paper's fail-safe iteration cap (Section 6.4).
MAX_ITERATIONS = 30


@dataclass
class WarmStart:
    """Reusable end-state of an equilibrium search.

    Attributes
    ----------
    bids:
        Final (N, M) bid matrix.
    budgets:
        Per-player budgets the bids were computed under.
    prices:
        Final resource prices.
    last_moves:
        Per-player largest single-resource bid change in the final
        round — the natural first-step size for resuming each player's
        hill climb.
    converged:
        Whether the search that produced this state met the price
        criterion (a non-converged state is still a usable seed).
    anchor_prices:
        Prices at the last *full* (multi-round) search in the warm
        chain.  A warm search may accept its seed after a single
        verification round only while prices stay within the tolerance
        of this anchor; once per-epoch drift accumulates past it, a
        real re-search is forced and the anchor moves.  This bounds the
        total lag of a warm chain behind a cold re-solve to roughly the
        price tolerance, instead of letting sub-tolerance drift
        compound every epoch.
    """

    bids: np.ndarray
    budgets: np.ndarray
    prices: np.ndarray
    last_moves: Optional[np.ndarray] = None
    converged: bool = False
    anchor_prices: Optional[np.ndarray] = None

    @property
    def num_players(self) -> int:
        return self.bids.shape[0]

    @property
    def num_resources(self) -> int:
        return self.bids.shape[1]

    def compatible_with(self, market: Market) -> bool:
        """True when this state has ``market``'s player/resource shape."""
        return self.bids.shape == (market.num_players, market.num_resources)

    def bids_for(self, budgets: np.ndarray) -> Optional[np.ndarray]:
        """The stored bid matrix rescaled row-wise to new ``budgets``.

        Players whose budget changed keep their *split* but spend the
        new amount (the ReBudget re-seeding idiom); players with no
        usable previous bids fall back to an equal split.  Returns
        ``None`` when the player count does not match.
        """
        budgets = np.asarray(budgets, dtype=float)
        if budgets.shape != (self.num_players,):
            return None
        bids = np.maximum(np.asarray(self.bids, dtype=float), 0.0)
        sums = bids.sum(axis=1)
        safe = np.where(sums > 0.0, sums, 1.0)
        equal = np.tile(budgets[:, None] / self.num_resources, (1, self.num_resources))
        return np.where(sums[:, None] > 0.0, bids * (budgets / safe)[:, None], equal)


@dataclass
class EquilibriumResult:
    """Outcome of an equilibrium search.

    Attributes
    ----------
    state:
        Final market snapshot (bids, prices, allocations).
    utilities:
        Player utilities at the final allocation.
    lambdas:
        Player-specific marginal utilities of money ``lambda_i`` — the
        quantity ReBudget compares across players.
    iterations:
        Number of bidding–pricing rounds executed.
    converged:
        Whether the price-stability criterion was met (False means the
        30-round fail-safe fired).
    price_history:
        Price vector after every round, for convergence studies.
    warm_start:
        Reusable end-state for seeding the next search (see
        :class:`WarmStart`); always populated.
    warm_started:
        Whether this search was itself seeded from previous bids.
    eval_counts:
        Utility-evaluation tallies accumulated by this search
        (:meth:`~repro.utility.base.EvalCounters.since` deltas: scalar
        value/gradient dispatches, vectorized dispatches, points covered,
        plus ``scalar_calls`` / ``batch_calls`` / ``total_calls``
        roll-ups).  Benches and profilers read this instead of
        monkeypatching the utility classes.
    """

    state: MarketState
    utilities: np.ndarray
    lambdas: np.ndarray
    iterations: int
    converged: bool
    price_history: List[np.ndarray] = field(default_factory=list)
    warm_start: Optional[WarmStart] = None
    warm_started: bool = False
    eval_counts: Optional[Dict[str, int]] = None

    @property
    def efficiency(self) -> float:
        """System efficiency: the sum of player utilities (Definition 1)."""
        return float(self.utilities.sum())


def find_equilibrium(
    market: Market,
    bidder: Optional[BiddingStrategy] = None,
    initial_bids: Optional[np.ndarray] = None,
    warm_start: Optional[WarmStart] = None,
    max_iterations: int = MAX_ITERATIONS,
    price_tolerance: float = PRICE_TOLERANCE,
    update: str = "jacobi",
) -> EquilibriumResult:
    """Run the bidding–pricing loop to (approximate) market equilibrium.

    Parameters
    ----------
    market:
        The proportional-share market to clear.
    bidder:
        Bidding strategy shared by all players; defaults to the paper's
        hill climb.
    initial_bids:
        Explicit warm-start bid matrix; defaults to every player
        splitting its budget equally (the paper's initialization).
    warm_start:
        End-state of a previous search (``result.warm_start``).  Its
        bids are rescaled to the market's current budgets and each
        player's climb resumes with a step sized to its last move.
        Ignored when ``initial_bids`` is given or the player/resource
        shape does not match; when the warm bids still price-converge,
        the loop exits after a single verification round.
    update:
        ``"jacobi"`` — all players re-bid against the same broadcast
        prices (the paper's distributed semantics); ``"gauss-seidel"`` —
        players re-bid sequentially, each seeing the bids of players
        before it in the round.  Jacobi is the default and the one used
        in all experiments.

    Jacobi rounds dispatch to the bidder's lockstep entry point
    (``optimize_all``) when it advertises ``supports_lockstep`` — the
    default :class:`~repro.core.bidding.VectorHillClimbBidder` does —
    which advances every player's climb with batched utility
    evaluations; results are bitwise identical to the per-player scalar
    path.  Gauss–Seidel rounds and custom bidders always take the scalar
    per-player path.
    """
    if bidder is None:
        bidder = VectorHillClimbBidder()
    if update not in ("jacobi", "gauss-seidel"):
        raise ValueError(f"unknown update mode {update!r}")

    capacities = market.capacities
    counters_at_entry = EVAL_COUNTERS.snapshot()
    utilities_of = [p.utility for p in market.players]
    lockstep = update == "jacobi" and getattr(bidder, "supports_lockstep", False)
    evaluator = BatchedUtilitySet(utilities_of) if lockstep else None
    last_moves: Optional[np.ndarray] = None
    anchor: Optional[np.ndarray] = None
    warm_started = False
    if initial_bids is not None:
        bids = np.array(initial_bids, dtype=float)
        warm_started = True
    elif warm_start is not None and warm_start.compatible_with(market):
        bids = warm_start.bids_for(market.budgets)
        last_moves = warm_start.last_moves
        anchor = warm_start.anchor_prices
        warm_started = True
    else:
        bids = market.equal_split_bids()
    prices = market.prices(bids)
    price_history: List[np.ndarray] = [prices.copy()]

    converged = False
    iterations = 0
    damped = False
    for iterations in range(1, max_iterations + 1):
        totals = bids.sum(axis=0)
        previous_bids = bids
        # Cold first rounds get no current bids (pristine paper
        # semantics: climb from the equal split at full step); every
        # later round — and every warm-started round — resumes from the
        # player's previous bids with a step sized to its last move.
        resume = warm_started or iterations > 1
        if lockstep:
            bids = bidder.optimize_all(
                utilities_of,
                market.budgets,
                totals[None, :] - bids,
                capacities,
                current_bids=bids if resume else None,
                step_hints=last_moves,
                evaluator=evaluator,
            )
        elif update == "jacobi":
            new_bids = np.empty_like(bids)
            for i, player in enumerate(market.players):
                others = totals - bids[i]
                new_bids[i] = bidder.optimize(
                    player.utility,
                    player.budget,
                    others,
                    capacities,
                    current_bids=bids[i] if resume else None,
                    step_hint=None if last_moves is None else float(last_moves[i]),
                )
            bids = new_bids
        else:
            # Sequential rounds maintain the per-resource bid totals
            # incrementally (O(N·M) per round) instead of re-summing the
            # whole matrix for every player (O(N²·M)).  The running
            # totals accumulate each player's delta, so they can drift
            # from a fresh column sum by float-rounding dust — the
            # regression test pins the resulting equilibria to the
            # recomputed-sum oracle within 1e-9.
            bids = bids.copy()
            running_totals = bids.sum(axis=0)
            for i, player in enumerate(market.players):
                others = running_totals - bids[i]
                new_row = bidder.optimize(
                    player.utility,
                    player.budget,
                    others,
                    capacities,
                    current_bids=bids[i] if resume else None,
                    step_hint=None if last_moves is None else float(last_moves[i]),
                )
                running_totals += new_row - bids[i]
                bids[i] = new_row

        new_prices = market.prices(bids)
        # Simultaneous (Jacobi) best responses can settle into a
        # period-2 price oscillation: everyone overshoots together,
        # then over-corrects.  When the new prices match the prices of
        # two rounds ago but not the last round's, average this round's
        # bids with the previous round's (a convex combination of two
        # budget-feasible bid matrices is budget-feasible), which
        # collapses the cycle onto its midpoint.
        oscillating = (
            len(price_history) >= 2
            and _prices_stable(price_history[-2], new_prices, price_tolerance)
            and not _prices_stable(prices, new_prices, price_tolerance)
        )
        # Drifting cycles can evade the period-2 detector; once the
        # loop has clearly failed to settle on its own, damp every
        # round (averaging is a no-op at a fixed point).
        slow = iterations > 8 and not _prices_stable(prices, new_prices, price_tolerance)
        damped = update == "jacobi" and (oscillating or slow)
        if damped:
            bids = 0.5 * (previous_bids + bids)
            new_prices = market.prices(bids)
        last_moves = np.abs(bids - previous_bids).max(axis=1)
        price_history.append(new_prices.copy())
        if _prices_stable(prices, new_prices, price_tolerance):
            if (
                warm_started
                and iterations == 1
                and anchor is not None
                and not _prices_stable(anchor, new_prices, price_tolerance)
            ):
                # The seed is round-over-round stable, but drift since
                # the last full search has accumulated past the
                # tolerance: refuse the cheap acceptance and re-search
                # with cold-sized steps from the current bids.
                anchor = None
                last_moves = None
                prices = new_prices
                continue
            prices = new_prices
            converged = True
            break
        prices = new_prices

    if _sanitize.ACTIVE:
        _sanitize.check_convergence(converged, price_history, price_tolerance)
    state = market.allocate(bids)
    utilities = market.utilities(state.allocations)
    lambdas = _final_lambdas(
        market, bids, capacities, bidder,
        lockstep=lockstep, evaluator=evaluator,
        last_moves=last_moves if iterations > 0 else None, damped=damped,
    )
    return EquilibriumResult(
        state=state,
        utilities=utilities,
        lambdas=lambdas,
        iterations=iterations,
        converged=converged,
        price_history=price_history,
        warm_start=WarmStart(
            bids=bids.copy(),
            budgets=market.budgets,
            prices=prices.copy(),
            last_moves=None if last_moves is None else last_moves.copy(),
            converged=converged,
            # A single verification round keeps the previous anchor; any
            # real (re-)search plants a new one at its own end point.
            anchor_prices=(
                anchor.copy()
                if (warm_started and iterations == 1 and anchor is not None)
                else prices.copy()
            ),
        ),
        warm_started=warm_started,
        eval_counts=EVAL_COUNTERS.since(counters_at_entry),
    )


def _final_lambdas(
    market: Market,
    bids: np.ndarray,
    capacities: np.ndarray,
    bidder: BiddingStrategy,
    *,
    lockstep: bool,
    evaluator: Optional[BatchedUtilitySet],
    last_moves: Optional[np.ndarray],
    damped: bool,
) -> np.ndarray:
    """Per-player ``lambda_i`` at the final bid matrix.

    The scalar path recomputes one marginal vector per player (the
    pre-existing behaviour).  The lockstep path needs at most one batched
    evaluation — and none at all when the final round's climbs already
    evaluated marginals at exactly these bids: that requires every
    player's marginals to be *fresh* (:attr:`last_fresh`), no bid to have
    moved in the final round (``last_moves`` all zero, so each climb's
    round-start ``others`` equals the final matrix's), and no oscillation
    damping to have averaged the matrix after the climbs ran.  Warm
    verification rounds — the common case in epoch chains — meet all
    three, so their lambda collection is free.
    """
    totals = bids.sum(axis=0)
    if lockstep:
        reusable = (
            not damped
            and last_moves is not None
            # "no player moved": last_moves entries are non-negative
            # maxima of |bid deltas|, so none-positive means all-zero
            # (spelled without a float equality).
            and not np.any(last_moves > 0.0)
            and getattr(bidder, "last_fresh", None) is not None
            and bool(np.all(bidder.last_fresh))
        )
        if reusable:
            marginals = bidder.last_marginals_all
        else:
            marginals = marginal_utility_of_bids_batch(
                bids, totals[None, :] - bids, capacities, evaluator=evaluator
            )
        # Vectorized player_lambda: max marginal over actively-bid
        # resources, falling back to max(marginals, 0) for all-zero rows.
        active = bids > 1e-12
        has_active = active.any(axis=1)
        over_active = np.where(active, marginals, -np.inf).max(axis=1)
        return np.where(
            has_active, over_active, np.maximum(marginals.max(axis=1), 0.0)
        )
    return np.array(
        [
            BiddingStrategy.player_lambda(
                player.utility,
                bids[i],
                totals - bids[i],
                capacities,
            )
            for i, player in enumerate(market.players)
        ]
    )


def _prices_stable(old: np.ndarray, new: np.ndarray, tolerance: float) -> bool:
    """True when every price moved by less than ``tolerance`` relatively.

    Resources nobody bids on (price 0 in both rounds) count as stable.
    """
    reference = np.maximum(np.abs(old), np.abs(new))
    stable = np.abs(new - old) <= tolerance * np.where(reference > 0.0, reference, 1.0)
    return bool(np.all(stable))
