"""Iterative bidding–pricing equilibrium search (Section 2.1).

The market repeatedly (1) broadcasts prices and (2) lets every player
best-respond assuming the others' bids stay fixed.  Convergence is
detected globally by monitoring prices: the market is declared converged
when every resource price fluctuates within 1% between rounds (the
paper's criterion).  A fail-safe terminates the search after 30 rounds,
as in Section 6.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .bidding import BiddingStrategy, HillClimbBidder
from .market import Market, MarketState
from .player import marginal_utility_of_bids

__all__ = ["EquilibriumResult", "find_equilibrium"]

#: Paper's global price-convergence tolerance (Section 2.1).
PRICE_TOLERANCE = 0.01

#: Paper's fail-safe iteration cap (Section 6.4).
MAX_ITERATIONS = 30


@dataclass
class EquilibriumResult:
    """Outcome of an equilibrium search.

    Attributes
    ----------
    state:
        Final market snapshot (bids, prices, allocations).
    utilities:
        Player utilities at the final allocation.
    lambdas:
        Player-specific marginal utilities of money ``lambda_i`` — the
        quantity ReBudget compares across players.
    iterations:
        Number of bidding–pricing rounds executed.
    converged:
        Whether the price-stability criterion was met (False means the
        30-round fail-safe fired).
    price_history:
        Price vector after every round, for convergence studies.
    """

    state: MarketState
    utilities: np.ndarray
    lambdas: np.ndarray
    iterations: int
    converged: bool
    price_history: List[np.ndarray] = field(default_factory=list)

    @property
    def efficiency(self) -> float:
        """System efficiency: the sum of player utilities (Definition 1)."""
        return float(self.utilities.sum())


def find_equilibrium(
    market: Market,
    bidder: Optional[BiddingStrategy] = None,
    initial_bids: Optional[np.ndarray] = None,
    max_iterations: int = MAX_ITERATIONS,
    price_tolerance: float = PRICE_TOLERANCE,
    update: str = "jacobi",
) -> EquilibriumResult:
    """Run the bidding–pricing loop to (approximate) market equilibrium.

    Parameters
    ----------
    market:
        The proportional-share market to clear.
    bidder:
        Bidding strategy shared by all players; defaults to the paper's
        hill climb.
    initial_bids:
        Warm-start bid matrix; defaults to every player splitting its
        budget equally (the paper's initialization).
    update:
        ``"jacobi"`` — all players re-bid against the same broadcast
        prices (the paper's distributed semantics); ``"gauss-seidel"`` —
        players re-bid sequentially, each seeing the bids of players
        before it in the round.  Jacobi is the default and the one used
        in all experiments.
    """
    if bidder is None:
        bidder = HillClimbBidder()
    if update not in ("jacobi", "gauss-seidel"):
        raise ValueError(f"unknown update mode {update!r}")

    capacities = market.capacities
    bids = market.equal_split_bids() if initial_bids is None else np.array(initial_bids, dtype=float)
    prices = market.prices(bids)
    price_history: List[np.ndarray] = [prices.copy()]

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        totals = bids.sum(axis=0)
        previous_bids = bids
        if update == "jacobi":
            new_bids = np.empty_like(bids)
            for i, player in enumerate(market.players):
                others = totals - bids[i]
                new_bids[i] = bidder.optimize(
                    player.utility, player.budget, others, capacities, current_bids=bids[i]
                )
            bids = new_bids
        else:
            for i, player in enumerate(market.players):
                others = bids.sum(axis=0) - bids[i]
                bids[i] = bidder.optimize(
                    player.utility, player.budget, others, capacities, current_bids=bids[i]
                )

        new_prices = market.prices(bids)
        # Simultaneous (Jacobi) best responses can settle into a
        # period-2 price oscillation: everyone overshoots together,
        # then over-corrects.  When the new prices match the prices of
        # two rounds ago but not the last round's, average this round's
        # bids with the previous round's (a convex combination of two
        # budget-feasible bid matrices is budget-feasible), which
        # collapses the cycle onto its midpoint.
        oscillating = (
            len(price_history) >= 2
            and _prices_stable(price_history[-2], new_prices, price_tolerance)
            and not _prices_stable(prices, new_prices, price_tolerance)
        )
        # Drifting cycles can evade the period-2 detector; once the
        # loop has clearly failed to settle on its own, damp every
        # round (averaging is a no-op at a fixed point).
        slow = iterations > 8 and not _prices_stable(prices, new_prices, price_tolerance)
        if update == "jacobi" and (oscillating or slow):
            bids = 0.5 * (previous_bids + bids)
            new_prices = market.prices(bids)
        price_history.append(new_prices.copy())
        if _prices_stable(prices, new_prices, price_tolerance):
            prices = new_prices
            converged = True
            break
        prices = new_prices

    state = market.allocate(bids)
    utilities = market.utilities(state.allocations)
    lambdas = np.array(
        [
            BiddingStrategy.player_lambda(
                player.utility,
                bids[i],
                bids.sum(axis=0) - bids[i],
                capacities,
            )
            for i, player in enumerate(market.players)
        ]
    )
    return EquilibriumResult(
        state=state,
        utilities=utilities,
        lambdas=lambdas,
        iterations=iterations,
        converged=converged,
        price_history=price_history,
    )


def _prices_stable(old: np.ndarray, new: np.ndarray, tolerance: float) -> bool:
    """True when every price moved by less than ``tolerance`` relatively.

    Resources nobody bids on (price 0 in both rounds) count as stable.
    """
    reference = np.maximum(np.abs(old), np.abs(new))
    stable = np.abs(new - old) <= tolerance * np.where(reference > 0.0, reference, 1.0)
    return bool(np.all(stable))
