"""The proportional-share market (Section 2 of the paper).

The market collects a bid matrix ``b`` (players x resources), prices each
resource at ``p_j = sum_i b_ij / C_j`` (Equation 1) and allocates
``r_ij = b_ij / p_j`` — i.e. proportionally to bids.  The market itself is
deliberately thin: all intelligence lives in the players' bidding
strategies and in the budget-reassignment layer above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..exceptions import MarketConfigurationError
from ..qa import sanitize as _sanitize
from ..utility.base import EVAL_COUNTERS
from .player import Player, bid_to_allocation
from .resources import ResourceSet

__all__ = ["Market", "MarketState"]


@dataclass
class MarketState:
    """A snapshot of the market at one pricing round."""

    bids: np.ndarray        # (N, M) bid matrix
    prices: np.ndarray      # (M,) per-unit prices
    allocations: np.ndarray  # (N, M) resource units per player

    @property
    def num_players(self) -> int:
        return self.bids.shape[0]

    @property
    def num_resources(self) -> int:
        return self.bids.shape[1]


class Market:
    """A proportional-share market over a fixed player and resource set."""

    def __init__(self, resources: ResourceSet, players: Sequence[Player]):
        if not players:
            raise MarketConfigurationError("a market needs at least one player")
        for player in players:
            if player.utility.num_resources != len(resources):
                raise MarketConfigurationError(
                    f"player {player.name!r} utility covers "
                    f"{player.utility.num_resources} resources, market has {len(resources)}"
                )
        self.resources = resources
        self.players: List[Player] = list(players)

    @property
    def num_players(self) -> int:
        return len(self.players)

    @property
    def num_resources(self) -> int:
        return len(self.resources)

    @property
    def capacities(self) -> np.ndarray:
        return self.resources.capacities

    @property
    def budgets(self) -> np.ndarray:
        return np.array([p.budget for p in self.players], dtype=float)

    def prices(self, bids: np.ndarray) -> np.ndarray:
        """Per-unit resource prices for a bid matrix (Equation 1)."""
        bids = self._check_bids(bids)
        return bids.sum(axis=0) / self.capacities

    def allocate(self, bids: np.ndarray) -> MarketState:
        """Clear the market: price resources and allocate proportionally."""
        bids = self._check_bids(bids)
        prices = bids.sum(axis=0) / self.capacities
        totals = bids.sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            shares = np.where(totals > 0.0, bids / np.where(totals > 0.0, totals, 1.0), 0.0)
        allocations = shares * self.capacities
        if _sanitize.ACTIVE:
            _sanitize.check_prices(prices)
            _sanitize.check_spending(bids, self.budgets)
            _sanitize.check_allocation(allocations, self.capacities)
        return MarketState(bids=bids, prices=prices, allocations=allocations)

    def others_bids(self, bids: np.ndarray, player_index: int) -> np.ndarray:
        """``y_ij``: the sum of every other player's bids per resource."""
        bids = self._check_bids(bids)
        return bids.sum(axis=0) - bids[player_index]

    def allocation_for(self, bids: np.ndarray, player_index: int) -> np.ndarray:
        """Allocation player ``player_index`` receives under ``bids``."""
        others = self.others_bids(bids, player_index)
        return bid_to_allocation(bids[player_index], others, self.capacities)

    def utilities(self, allocations: np.ndarray) -> np.ndarray:
        """Vector of player utilities for an allocation matrix."""
        EVAL_COUNTERS.scalar_value_calls += len(self.players)
        return np.array(
            [p.utility_of(allocations[i]) for i, p in enumerate(self.players)]
        )

    def equal_split_bids(self) -> np.ndarray:
        """Every player splits its whole budget evenly across resources.

        This is the initial bid state of the paper's hill-climbing
        procedure (Section 4.1.2, step 1).
        """
        budgets = self.budgets
        return np.tile(budgets[:, None] / self.num_resources, (1, self.num_resources))

    def is_strongly_competitive(self, bids: np.ndarray) -> bool:
        """True when every resource receives non-zero bids from >= 2 players.

        Zhang's existence result (Lemma 1) applies to strongly
        competitive markets.
        """
        bids = self._check_bids(bids)
        return bool(np.all((bids > 0.0).sum(axis=0) >= 2))

    def _check_bids(self, bids: np.ndarray) -> np.ndarray:
        bids = np.asarray(bids, dtype=float)
        expected = (self.num_players, self.num_resources)
        if bids.shape != expected:
            raise MarketConfigurationError(
                f"bid matrix shape {bids.shape} != (players, resources) {expected}"
            )
        if np.any(bids < -1e-12):
            raise MarketConfigurationError("bids must be non-negative")
        return np.maximum(bids, 0.0)
