"""Market players.

A player (one per core in the multicore instantiation) owns a budget and
a concave utility function over the market's resources.  The player's
only interaction with the market is through its bid vector; everything
else (utility introspection, marginal utilities with respect to bids) is
local, which is what makes the mechanism distributed and scalable.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..exceptions import MarketConfigurationError
from ..qa import sanitize as _sanitize
from ..utility.base import EVAL_COUNTERS, UtilityFunction

__all__ = [
    "Player",
    "bid_to_allocation",
    "bid_to_allocation_batch",
    "marginal_utility_of_bids",
    "marginal_utility_of_bids_batch",
]

#: Finite stand-in for the infinite first-bid marginal (``y_j == 0``):
#: large enough to dominate any real marginal, scaled by capacity so the
#: bytes-vs-watts resources keep their relative ordering.
_FIRST_BID_RATE = 1e9


class Player:
    """A budget-constrained utility maximizer.

    Parameters
    ----------
    name:
        Display name (e.g. the application running on the core).
    utility:
        Concave, non-decreasing utility over the market's M resources.
    budget:
        Total money the player may spend across all resources
        (``sum_j b_ij <= B_i``).
    """

    def __init__(self, name: str, utility: UtilityFunction, budget: float):
        if budget < 0:
            raise MarketConfigurationError(f"player {name!r} budget must be >= 0")
        self.name = name
        self.utility = utility
        self.budget = float(budget)

    def utility_of(self, allocation: Sequence[float]) -> float:
        """Utility of an allocation vector (length M)."""
        return self.utility.value(allocation)

    def __repr__(self) -> str:
        return f"Player({self.name!r}, budget={self.budget})"


def bid_to_allocation(bids: np.ndarray, others: np.ndarray, capacities: np.ndarray) -> np.ndarray:
    """Allocation a player receives for ``bids`` given others' bids.

    Implements Equation 2 of the paper:
    ``r_j = b_j / (b_j + y_j) * C_j``, where ``y_j`` is the sum of the
    other players' bids on resource ``j``.  When nobody bids on a
    resource at all (``b_j + y_j == 0``) the player receives nothing.
    """
    total = bids + others
    with np.errstate(invalid="ignore", divide="ignore"):
        shares = np.where(total > 0.0, bids / np.where(total > 0.0, total, 1.0), 0.0)
    allocation = shares * capacities
    if _sanitize.ACTIVE:
        _sanitize.check_player_allocations(allocation, capacities)
    return allocation


def bid_to_allocation_batch(
    bids: np.ndarray, others: np.ndarray, capacities: np.ndarray
) -> np.ndarray:
    """Equation 2 applied to a ``(K, M)`` batch of bid rows at once.

    Row ``k`` of the result equals ``bid_to_allocation(bids[k],
    others[k], capacities)`` bitwise — the arithmetic is identical, numpy
    merely broadcasts it over the leading axis.  ``others`` may be
    ``(K, M)`` (each row's view of the rest of the market, the Jacobi
    lockstep case) or ``(M,)`` broadcast to all rows.
    """
    total = bids + others
    with np.errstate(invalid="ignore", divide="ignore"):
        shares = np.where(total > 0.0, bids / np.where(total > 0.0, total, 1.0), 0.0)
    allocations = shares * capacities
    if _sanitize.ACTIVE:
        _sanitize.check_player_allocations(allocations, capacities)
    return allocations


def marginal_utility_of_bids(
    utility: UtilityFunction,
    bids: np.ndarray,
    others: np.ndarray,
    capacities: np.ndarray,
) -> np.ndarray:
    """Per-resource marginal utility of bids, ``lambda_ij = dU/db_ij``.

    By the chain rule (Equation 7 in the paper's appendix)::

        dU/db_j = dU/dr_j * y_j * C_j / (b_j + y_j)^2

    When ``y_j == 0`` the player already owns the whole resource for any
    positive bid, so the marginal value of bidding more is zero.
    """
    allocation = bid_to_allocation(bids, others, capacities)
    EVAL_COUNTERS.scalar_gradient_calls += 1
    du_dr = np.asarray(utility.gradient(allocation), dtype=float)
    total = bids + others
    with np.errstate(invalid="ignore", divide="ignore"):
        dr_db = np.where(
            total > 0.0,
            others * capacities / np.where(total > 0.0, total, 1.0) ** 2,
            # A first bid on an un-bid resource captures all of it; treat
            # the marginal as the utility slope times full capture rate.
            np.inf,
        )
    # Replace the infinite first-bid marginals with a large finite value
    # proportional to the utility slope so comparisons stay meaningful.
    dr_db = np.where(np.isinf(dr_db), capacities * _FIRST_BID_RATE, dr_db)
    marginals = du_dr * dr_db
    if _sanitize.ACTIVE:
        _sanitize.check_marginals(marginals)
    return marginals


def marginal_utility_of_bids_batch(
    bids: np.ndarray,
    others: np.ndarray,
    capacities: np.ndarray,
    *,
    utility: Optional[UtilityFunction] = None,
    evaluator=None,
    players: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Equation 7 marginals for a ``(K, M)`` batch of bid rows.

    Row ``k`` equals ``marginal_utility_of_bids(utility_k, bids[k],
    others[k], capacities)`` bitwise.  Callers either pass a shared
    ``utility`` (all rows belong to the same player) or an ``evaluator``
    — a :class:`~repro.utility.batch.BatchedUtilitySet` — plus the
    ``players`` row-ownership vector it should evaluate each allocation
    row under (the multi-player lockstep case).
    """
    allocations = bid_to_allocation_batch(bids, others, capacities)
    if evaluator is not None:
        du_dr = evaluator.gradients(allocations, players)
    elif utility is not None:
        du_dr = np.asarray(utility.gradient_batch(allocations), dtype=float)
    else:
        raise ValueError("pass either a utility or a batched evaluator")
    total = bids + others
    with np.errstate(invalid="ignore", divide="ignore"):
        dr_db = np.where(
            total > 0.0,
            others * capacities / np.where(total > 0.0, total, 1.0) ** 2,
            np.inf,
        )
    dr_db = np.where(np.isinf(dr_db), capacities * _FIRST_BID_RATE, dr_db)
    marginals = du_dr * dr_db
    if _sanitize.ACTIVE:
        _sanitize.check_marginals(marginals)
    return marginals
