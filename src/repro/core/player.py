"""Market players.

A player (one per core in the multicore instantiation) owns a budget and
a concave utility function over the market's resources.  The player's
only interaction with the market is through its bid vector; everything
else (utility introspection, marginal utilities with respect to bids) is
local, which is what makes the mechanism distributed and scalable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import MarketConfigurationError
from ..utility.base import UtilityFunction

__all__ = ["Player", "bid_to_allocation", "marginal_utility_of_bids"]


class Player:
    """A budget-constrained utility maximizer.

    Parameters
    ----------
    name:
        Display name (e.g. the application running on the core).
    utility:
        Concave, non-decreasing utility over the market's M resources.
    budget:
        Total money the player may spend across all resources
        (``sum_j b_ij <= B_i``).
    """

    def __init__(self, name: str, utility: UtilityFunction, budget: float):
        if budget < 0:
            raise MarketConfigurationError(f"player {name!r} budget must be >= 0")
        self.name = name
        self.utility = utility
        self.budget = float(budget)

    def utility_of(self, allocation: Sequence[float]) -> float:
        """Utility of an allocation vector (length M)."""
        return self.utility.value(allocation)

    def __repr__(self) -> str:
        return f"Player({self.name!r}, budget={self.budget})"


def bid_to_allocation(bids: np.ndarray, others: np.ndarray, capacities: np.ndarray) -> np.ndarray:
    """Allocation a player receives for ``bids`` given others' bids.

    Implements Equation 2 of the paper:
    ``r_j = b_j / (b_j + y_j) * C_j``, where ``y_j`` is the sum of the
    other players' bids on resource ``j``.  When nobody bids on a
    resource at all (``b_j + y_j == 0``) the player receives nothing.
    """
    total = bids + others
    with np.errstate(invalid="ignore", divide="ignore"):
        shares = np.where(total > 0.0, bids / np.where(total > 0.0, total, 1.0), 0.0)
    return shares * capacities


def marginal_utility_of_bids(
    utility: UtilityFunction,
    bids: np.ndarray,
    others: np.ndarray,
    capacities: np.ndarray,
) -> np.ndarray:
    """Per-resource marginal utility of bids, ``lambda_ij = dU/db_ij``.

    By the chain rule (Equation 7 in the paper's appendix)::

        dU/db_j = dU/dr_j * y_j * C_j / (b_j + y_j)^2

    When ``y_j == 0`` the player already owns the whole resource for any
    positive bid, so the marginal value of bidding more is zero.
    """
    allocation = bid_to_allocation(bids, others, capacities)
    du_dr = np.asarray(utility.gradient(allocation), dtype=float)
    total = bids + others
    with np.errstate(invalid="ignore", divide="ignore"):
        dr_db = np.where(
            total > 0.0,
            others * capacities / np.where(total > 0.0, total, 1.0) ** 2,
            # A first bid on an un-bid resource captures all of it; treat
            # the marginal as the utility slope times full capture rate.
            np.inf,
        )
    # Replace the infinite first-bid marginals with a large finite value
    # proportional to the utility slope so comparisons stay meaningful.
    dr_db = np.where(np.isinf(dr_db), capacities * 1e9, dr_db)
    return du_dr * dr_db
