"""Player bidding strategies.

Given the prices announced by the market, every player independently
finds the bid vector that maximizes its own utility subject to its
budget (optimization problem 3 in the paper).  Two strategies are
provided:

* :class:`HillClimbBidder` — the paper's Section 4.1.2 procedure: start
  from an equal split (or, warm-started, from the previous bid vector),
  repeatedly move an exponentially shrinking amount ``S`` of money from
  the resource with the lowest marginal utility to the one with the
  highest, stopping when marginals agree within 5% or ``S`` drops below
  1% of the budget.
* :class:`ExactBidder` — a numerically exact best response found by
  projected gradient ascent with backtracking; used as an ablation
  reference for how much the cheap hill climb loses.

Both return bid vectors that (a) are non-negative and (b) spend the full
budget whenever any resource still has positive marginal utility.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from ..utility.base import UtilityFunction
from ..utility.batch import BatchedUtilitySet
from .player import (
    bid_to_allocation,
    marginal_utility_of_bids,
    marginal_utility_of_bids_batch,
)

__all__ = [
    "BiddingStrategy",
    "HillClimbBidder",
    "VectorHillClimbBidder",
    "ExactBidder",
    "PriceTakingBidder",
]


class BiddingStrategy(abc.ABC):
    """Finds a player's (approximately) optimal bids given others' bids."""

    #: True for strategies offering :meth:`optimize_all`, the lockstep
    #: all-players entry point ``find_equilibrium`` dispatches Jacobi
    #: rounds to.
    supports_lockstep: bool = False

    #: Marginal utilities this strategy computed at the bids it last
    #: returned, or ``None`` when the last evaluation happened *before*
    #: the final move (the climb stopped on step size, so the stored
    #: marginals would be stale).  Lets equilibrium/rebudget seams skip
    #: re-deriving ``lambda_i`` when the climb already paid for it.
    last_marginals: Optional[np.ndarray] = None

    #: ``lambda_i`` derived from :attr:`last_marginals` (same formula as
    #: :meth:`player_lambda`), or ``None`` when stale.
    last_lambda: Optional[float] = None

    @abc.abstractmethod
    def optimize(
        self,
        utility: UtilityFunction,
        budget: float,
        others: np.ndarray,
        capacities: np.ndarray,
        current_bids: np.ndarray | None = None,
        step_hint: float | None = None,
    ) -> np.ndarray:
        """Return the player's new bid vector (length M, sums to budget).

        ``current_bids`` is the player's bid vector from the previous
        round (or epoch); strategies that support warm starts begin the
        search there instead of from an equal split.  ``step_hint`` is
        how far the player's bids moved in the previous round — warm
        climbs size their first step to it so a near-converged player
        does not re-explore the whole simplex.
        """

    @staticmethod
    def warm_start_bids(
        current_bids: np.ndarray | None, budget: float, num_resources: int
    ) -> np.ndarray | None:
        """Validate and normalize a previous bid vector for reuse.

        Returns ``None`` — caller falls back to an equal split — when the
        vector is absent, malformed, all-zero, or was computed for a
        different budget (a budget change means the old split is stale).
        """
        if current_bids is None:
            return None
        bids = np.asarray(current_bids, dtype=float)
        if bids.shape != (num_resources,) or not np.all(np.isfinite(bids)):
            return None
        bids = np.maximum(bids, 0.0)
        total = float(bids.sum())
        if total <= 0.0:
            return None
        if abs(total - budget) > 1e-6 * max(budget, total):
            return None
        return bids * (budget / total)

    @staticmethod
    def player_lambda(
        utility: UtilityFunction,
        bids: np.ndarray,
        others: np.ndarray,
        capacities: np.ndarray,
        marginals: Optional[np.ndarray] = None,
    ) -> float:
        """The player-specific multiplier ``lambda_i`` at a bid vector.

        At an optimum, all resources with non-zero bids share the same
        marginal utility (Equation 4); we report the maximum marginal
        over resources with non-zero bids, which equals that shared
        value at an optimum and degrades gracefully away from one.

        ``marginals`` short-circuits the evaluation when the caller
        already holds ``dU/db`` at exactly these bids and others (e.g. a
        climb's :attr:`last_marginals`).
        """
        if marginals is None:
            marginals = marginal_utility_of_bids(utility, bids, others, capacities)
        active = bids > 1e-12
        if not np.any(active):
            return float(marginals.max(initial=0.0))
        return float(marginals[active].max())


class HillClimbBidder(BiddingStrategy):
    """The exponential back-off hill climb of Section 4.1.2.

    Parameters
    ----------
    lambda_tolerance:
        Stop when max and min marginal utilities agree within this
        relative tolerance (paper: 5%).
    step_stop_fraction:
        Stop when the shift amount ``S`` falls below this fraction of the
        player's budget (paper: 1%).
    """

    def __init__(self, lambda_tolerance: float = 0.05, step_stop_fraction: float = 0.01):
        self.lambda_tolerance = lambda_tolerance
        self.step_stop_fraction = step_stop_fraction

    def _stale(
        self,
        bids: np.ndarray,
        utility: UtilityFunction,
        others: np.ndarray,
        capacities: np.ndarray,
    ) -> bool:
        """True when ``bids`` is far from this player's optimum.

        The climb moves at most ~2x its initial step per call, so a
        hint-sized step cannot recover from a large utility shift; a
        marginal imbalance beyond twice the stop tolerance means the
        seed is stale and the climb needs full mobility.
        """
        marginals = marginal_utility_of_bids(utility, bids, others, capacities)
        donors = np.where(bids > 1e-12)[0]
        if donors.size == 0:
            return False
        hi = float(marginals.max())
        lo = float(marginals[donors].min())
        return hi > 0.0 and hi - lo > 2.0 * self.lambda_tolerance * hi

    def optimize(
        self,
        utility: UtilityFunction,
        budget: float,
        others: np.ndarray,
        capacities: np.ndarray,
        current_bids: np.ndarray | None = None,
        step_hint: float | None = None,
    ) -> np.ndarray:
        num_resources = capacities.size
        self.last_marginals = None
        self.last_lambda = None
        if budget <= 0.0:
            return np.zeros(num_resources)
        if num_resources == 1:
            return np.array([budget])

        cold_step = budget / (2.0 * num_resources)
        min_step = self.step_stop_fraction * budget

        # Step 1: start from the previous bids when they are reusable
        # (same budget), otherwise from an equal split; S is half of one
        # equal-split bid, shrunk to the last move for warm starts.
        warm = self.warm_start_bids(current_bids, budget, num_resources)
        if warm is None:
            bids = np.full(num_resources, budget / num_resources)
            step = cold_step
        else:
            bids = warm
            if step_hint is None or self._stale(warm, utility, others, capacities):
                # No hint, or the seed's marginals are badly out of
                # balance (the problem shifted under us): a hint-sized
                # step cannot cover the distance, so climb at full
                # mobility from the warm point.
                step = cold_step
            else:
                step = float(np.clip(step_hint, 2.0 * min_step, cold_step))

        # Marginals evaluated at exactly the bids we end up returning, or
        # None when the climb's last act was a move (stale marginals).
        final_marginals: Optional[np.ndarray] = None
        while step >= min_step:
            marginals = marginal_utility_of_bids(utility, bids, others, capacities)
            final_marginals = marginals
            # Donor: lowest marginal among resources we actually bid on.
            # Recipient: highest marginal overall.
            active = bids > 1e-12
            donor_candidates = np.where(active)[0]
            if donor_candidates.size == 0:
                break
            donor = donor_candidates[np.argmin(marginals[donor_candidates])]
            recipient = int(np.argmax(marginals))
            hi, lo = marginals[recipient], marginals[donor]
            if recipient == donor or hi <= 0.0:
                break
            # Stop condition (a): marginals already agree within tolerance.
            if hi - lo <= self.lambda_tolerance * hi:
                break
            moved = min(step, bids[donor])
            bids[donor] -= moved
            bids[recipient] += moved
            final_marginals = None
            # Step 3: exponential back-off.
            step *= 0.5

        if final_marginals is not None:
            self.last_marginals = final_marginals
            self.last_lambda = self.player_lambda(
                utility, bids, others, capacities, marginals=final_marginals
            )
        return bids


class VectorHillClimbBidder(HillClimbBidder):
    """Section 4.1.2's hill climb for *all* players at once, in lockstep.

    Jacobi rounds make players independent within a round (everyone
    best-responds to the same broadcast bids), so their climbs can be
    advanced together: one ``(K, M)`` batched marginal evaluation per
    lockstep iteration serves every still-active player, instead of each
    player paying its own chain of scalar ``gradient()`` calls.  The
    per-player arithmetic — warm-start validation, staleness check,
    donor/recipient selection, step back-off, every stop condition — is
    the scalar :meth:`HillClimbBidder.optimize` mirrored operation for
    operation, so the returned bid matrix is *bitwise identical* to N
    scalar climbs for every built-in utility family (batched gradients
    reproduce scalar gradients exactly); ``strict=True`` re-runs the
    scalar climbs and asserts agreement within ``strict_tolerance``
    (documented slack for utilities whose batched override differs from
    the scalar path in summation order).

    The scalar :meth:`optimize` entry point is inherited unchanged, so
    this bidder also works for Gauss–Seidel rounds and any other
    one-player-at-a-time caller.
    """

    supports_lockstep = True

    #: Marginals each climb computed at its returned bids (N, M), and a
    #: per-player flag saying whether they are *fresh* — evaluated at
    #: exactly the returned bids rather than before a final move.
    last_marginals_all: Optional[np.ndarray] = None
    last_fresh: Optional[np.ndarray] = None

    def __init__(
        self,
        lambda_tolerance: float = 0.05,
        step_stop_fraction: float = 0.01,
        strict: bool = False,
        strict_tolerance: float = 1e-9,
    ):
        super().__init__(lambda_tolerance, step_stop_fraction)
        self.strict = strict
        self.strict_tolerance = strict_tolerance

    def optimize_all(
        self,
        utilities: Sequence[UtilityFunction],
        budgets: np.ndarray,
        others: np.ndarray,
        capacities: np.ndarray,
        current_bids: Optional[np.ndarray] = None,
        step_hints: Optional[np.ndarray] = None,
        evaluator: Optional[BatchedUtilitySet] = None,
    ) -> np.ndarray:
        """Best-respond for every player against fixed ``others`` bids.

        Parameters mirror :meth:`optimize` row-wise: ``budgets`` is
        ``(N,)``, ``others`` is ``(N, M)`` (row ``i`` is the sum of the
        *other* players' bids as player ``i`` sees them), and
        ``current_bids`` / ``step_hints`` are the optional ``(N, M)`` /
        ``(N,)`` warm-start state.  ``evaluator`` is a prebuilt
        :class:`~repro.utility.batch.BatchedUtilitySet` over
        ``utilities`` (built fresh when omitted — pass one when calling
        every round).  Returns the new ``(N, M)`` bid matrix.
        """
        budgets = np.asarray(budgets, dtype=float)
        others = np.asarray(others, dtype=float)
        capacities = np.asarray(capacities, dtype=float)
        num_players = budgets.size
        num_resources = capacities.size
        if evaluator is None:
            evaluator = BatchedUtilitySet(utilities)

        bids = np.zeros((num_players, num_resources))
        self.last_marginals_all = np.zeros((num_players, num_resources))
        self.last_fresh = np.zeros(num_players, dtype=bool)

        if num_resources == 1:
            bids[:, 0] = np.maximum(budgets, 0.0)
            bids[budgets <= 0.0, 0] = 0.0
            return bids

        cold_step = budgets / (2.0 * num_resources)
        min_step = self.step_stop_fraction * budgets
        step = np.zeros(num_players)

        # Per-player initialization, mirroring the scalar climb: warm
        # bids when reusable, equal split otherwise; cold step unless a
        # usable hint exists AND the seed is not stale.
        hinted: list = []
        for i in range(num_players):
            budget = float(budgets[i])
            if budget <= 0.0:
                continue
            warm = self.warm_start_bids(
                None if current_bids is None else current_bids[i],
                budget,
                num_resources,
            )
            if warm is None:
                bids[i] = budget / num_resources
                step[i] = cold_step[i]
            else:
                bids[i] = warm
                if step_hints is None:
                    step[i] = cold_step[i]
                else:
                    hinted.append(i)

        if hinted:
            # Batched staleness probe: one vectorized marginal evaluation
            # replaces one scalar gradient call per hinted player.
            rows = np.asarray(hinted, dtype=np.intp)
            marginals = marginal_utility_of_bids_batch(
                bids[rows], others[rows], capacities,
                evaluator=evaluator, players=rows,
            )
            donors = bids[rows] > 1e-12
            has_donor = donors.any(axis=1)
            hi = marginals.max(axis=1)
            lo = np.where(donors, marginals, np.inf).min(axis=1)
            stale = has_donor & (hi > 0.0) & (hi - lo > 2.0 * self.lambda_tolerance * hi)
            hints = np.asarray(step_hints, dtype=float)[rows]
            step[rows] = np.where(
                stale,
                cold_step[rows],
                np.clip(hints, 2.0 * min_step[rows], cold_step[rows]),
            )

        active = (budgets > 0.0) & (step >= min_step)
        while np.any(active):
            rows = np.flatnonzero(active)
            marginals = marginal_utility_of_bids_batch(
                bids[rows], others[rows], capacities,
                evaluator=evaluator, players=rows,
            )
            self.last_marginals_all[rows] = marginals
            self.last_fresh[rows] = True
            span = np.arange(rows.size)
            donors = bids[rows] > 1e-12
            has_donor = donors.any(axis=1)
            # Donor: lowest marginal among resources the player bids on
            # (np.inf masking preserves the scalar first-among-ties
            # index); recipient: highest marginal overall.
            donor = np.argmin(np.where(donors, marginals, np.inf), axis=1)
            recipient = np.argmax(marginals, axis=1)
            hi = marginals[span, recipient]
            lo = marginals[span, donor]
            stop = (
                ~has_donor
                | (recipient == donor)
                | (hi <= 0.0)
                | (hi - lo <= self.lambda_tolerance * hi)
            )
            active[rows[stop]] = False
            move = rows[~stop]
            if move.size:
                d = donor[~stop]
                r = recipient[~stop]
                moved = np.minimum(step[move], bids[move, d])
                bids[move, d] -= moved
                bids[move, r] += moved
                self.last_fresh[move] = False
                step[move] *= 0.5
                active[move] = step[move] >= min_step[move]

        if self.strict:
            self._assert_scalar_agreement(
                utilities, budgets, others, capacities,
                current_bids, step_hints, bids,
            )
        return bids

    def _assert_scalar_agreement(
        self,
        utilities: Sequence[UtilityFunction],
        budgets: np.ndarray,
        others: np.ndarray,
        capacities: np.ndarray,
        current_bids: Optional[np.ndarray],
        step_hints: Optional[np.ndarray],
        bids: np.ndarray,
    ) -> None:
        """Re-run every climb through the scalar path and compare."""
        reference = HillClimbBidder(self.lambda_tolerance, self.step_stop_fraction)
        for i in range(budgets.size):
            expected = reference.optimize(
                utilities[i],
                float(budgets[i]),
                others[i],
                capacities,
                current_bids=None if current_bids is None else current_bids[i],
                step_hint=None if step_hints is None else float(step_hints[i]),
            )
            slack = self.strict_tolerance * max(1.0, float(budgets[i]))
            if not np.all(np.abs(bids[i] - expected) <= slack):
                raise AssertionError(
                    f"lockstep climb diverged from the scalar path for "
                    f"player {i}: {bids[i]!r} vs {expected!r} "
                    f"(tolerance {slack:g})"
                )


class ExactBidder(BiddingStrategy):
    """Projected gradient ascent on the budget simplex.

    Maximizes ``U(r(b))`` over ``{b >= 0, sum b = budget}``.  The
    objective is concave whenever ``U`` is concave and non-decreasing
    (each ``r_j(b_j)`` is concave), so gradient ascent with a simplex
    projection converges to the true best response.  Slower but sharper
    than :class:`HillClimbBidder`; used in the bidding ablation.
    """

    def __init__(self, max_iterations: int = 200, tolerance: float = 1e-9):
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def optimize(
        self,
        utility: UtilityFunction,
        budget: float,
        others: np.ndarray,
        capacities: np.ndarray,
        current_bids: np.ndarray | None = None,
        step_hint: float | None = None,
    ) -> np.ndarray:
        num_resources = capacities.size
        if budget <= 0.0:
            return np.zeros(num_resources)
        if num_resources == 1:
            return np.array([budget])

        if current_bids is not None and current_bids.sum() > 0:
            bids = current_bids * (budget / current_bids.sum())
        else:
            bids = np.full(num_resources, budget / num_resources)

        def objective(b: np.ndarray) -> float:
            return utility.value(bid_to_allocation(b, others, capacities))

        value = objective(bids)
        step = budget / 4.0
        for _ in range(self.max_iterations):
            grad = marginal_utility_of_bids(utility, bids, others, capacities)
            # Cap the synthetic "infinite" first-bid marginals so the
            # ascent direction stays finite.
            grad = np.minimum(grad, 1e6)
            scale = float(np.abs(grad).max())
            if scale <= 0.0:
                break
            candidate = _project_to_simplex(bids + (step / scale) * grad, budget)
            candidate_value = objective(candidate)
            if candidate_value > value + 1e-15:
                moved = float(np.max(np.abs(candidate - bids)))
                bids, value = candidate, candidate_value
                step = min(step * 1.5, budget)  # expand while improving
                if moved < self.tolerance * budget:
                    break
            else:
                step *= 0.5
                if step < self.tolerance * budget:
                    break
        return bids


class PriceTakingBidder(BiddingStrategy):
    """A naive bidder that treats broadcast prices as fixed.

    The paper's bidders are *price-anticipating* (Equation 2: a player
    predicts how its own bid moves its allocation through the shared
    price).  The classic alternative from the literature the paper
    builds on (Feldman et al.; Kelly-style proportional fairness) is
    *price-taking*: assume ``r_j = b_j / p_j`` with ``p_j`` fixed at the
    last broadcast value.  Price takers over-bid on contested resources
    (they ignore that their own money inflates the price), which is the
    behaviour the bidding ablation quantifies.
    """

    def __init__(self, lambda_tolerance: float = 0.05, step_stop_fraction: float = 0.01):
        self.lambda_tolerance = lambda_tolerance
        self.step_stop_fraction = step_stop_fraction

    def optimize(
        self,
        utility: UtilityFunction,
        budget: float,
        others: np.ndarray,
        capacities: np.ndarray,
        current_bids: np.ndarray | None = None,
        step_hint: float | None = None,
    ) -> np.ndarray:
        num_resources = capacities.size
        if budget <= 0.0:
            return np.zeros(num_resources)
        if num_resources == 1:
            return np.array([budget])

        # Fixed prices from the last broadcast (Equation 1 with the
        # player's previous bids included).
        previous = (
            current_bids
            if current_bids is not None
            else np.full(num_resources, budget / num_resources)
        )
        prices = (others + np.maximum(np.asarray(previous, dtype=float), 0.0)) / capacities
        prices = np.maximum(prices, 1e-12)

        # The climb starts from the same bids the prices were derived
        # from: restarting from an equal split would optimize bids that
        # are inconsistent with the prices assumed above.
        warm = self.warm_start_bids(current_bids, budget, num_resources)
        bids = warm if warm is not None else np.full(num_resources, budget / num_resources)
        step = budget / (2.0 * num_resources)
        min_step = self.step_stop_fraction * budget
        while step >= min_step:
            allocation = np.minimum(bids / prices, capacities)
            du_dr = np.asarray(utility.gradient(allocation), dtype=float)
            marginals = np.where(allocation < capacities, du_dr / prices, 0.0)
            active = bids > 1e-12
            donors = np.where(active)[0]
            if donors.size == 0:
                break
            donor = donors[np.argmin(marginals[donors])]
            recipient = int(np.argmax(marginals))
            hi, lo = marginals[recipient], marginals[donor]
            if recipient == donor or hi <= 0.0 or hi - lo <= self.lambda_tolerance * hi:
                break
            moved = min(step, bids[donor])
            bids[donor] -= moved
            bids[recipient] += moved
            step *= 0.5
        return bids


def _project_to_simplex(vector: np.ndarray, total: float) -> np.ndarray:
    """Euclidean projection of ``vector`` onto ``{x >= 0, sum x = total}``."""
    if total <= 0.0:
        return np.zeros_like(vector)
    sorted_desc = np.sort(vector)[::-1]
    cumulative = np.cumsum(sorted_desc) - total
    ranks = np.arange(1, vector.size + 1)
    feasible = sorted_desc - cumulative / ranks > 0
    rho = int(np.nonzero(feasible)[0][-1])
    theta = cumulative[rho] / (rho + 1.0)
    return np.maximum(vector - theta, 0.0)
