"""Player bidding strategies.

Given the prices announced by the market, every player independently
finds the bid vector that maximizes its own utility subject to its
budget (optimization problem 3 in the paper).  Two strategies are
provided:

* :class:`HillClimbBidder` — the paper's Section 4.1.2 procedure: start
  from an equal split (or, warm-started, from the previous bid vector),
  repeatedly move an exponentially shrinking amount ``S`` of money from
  the resource with the lowest marginal utility to the one with the
  highest, stopping when marginals agree within 5% or ``S`` drops below
  1% of the budget.
* :class:`ExactBidder` — a numerically exact best response found by
  projected gradient ascent with backtracking; used as an ablation
  reference for how much the cheap hill climb loses.

Both return bid vectors that (a) are non-negative and (b) spend the full
budget whenever any resource still has positive marginal utility.
"""

from __future__ import annotations

import abc

import numpy as np

from ..utility.base import UtilityFunction
from .player import bid_to_allocation, marginal_utility_of_bids

__all__ = ["BiddingStrategy", "HillClimbBidder", "ExactBidder", "PriceTakingBidder"]


class BiddingStrategy(abc.ABC):
    """Finds a player's (approximately) optimal bids given others' bids."""

    @abc.abstractmethod
    def optimize(
        self,
        utility: UtilityFunction,
        budget: float,
        others: np.ndarray,
        capacities: np.ndarray,
        current_bids: np.ndarray | None = None,
        step_hint: float | None = None,
    ) -> np.ndarray:
        """Return the player's new bid vector (length M, sums to budget).

        ``current_bids`` is the player's bid vector from the previous
        round (or epoch); strategies that support warm starts begin the
        search there instead of from an equal split.  ``step_hint`` is
        how far the player's bids moved in the previous round — warm
        climbs size their first step to it so a near-converged player
        does not re-explore the whole simplex.
        """

    @staticmethod
    def warm_start_bids(
        current_bids: np.ndarray | None, budget: float, num_resources: int
    ) -> np.ndarray | None:
        """Validate and normalize a previous bid vector for reuse.

        Returns ``None`` — caller falls back to an equal split — when the
        vector is absent, malformed, all-zero, or was computed for a
        different budget (a budget change means the old split is stale).
        """
        if current_bids is None:
            return None
        bids = np.asarray(current_bids, dtype=float)
        if bids.shape != (num_resources,) or not np.all(np.isfinite(bids)):
            return None
        bids = np.maximum(bids, 0.0)
        total = float(bids.sum())
        if total <= 0.0:
            return None
        if abs(total - budget) > 1e-6 * max(budget, total):
            return None
        return bids * (budget / total)

    @staticmethod
    def player_lambda(
        utility: UtilityFunction,
        bids: np.ndarray,
        others: np.ndarray,
        capacities: np.ndarray,
    ) -> float:
        """The player-specific multiplier ``lambda_i`` at a bid vector.

        At an optimum, all resources with non-zero bids share the same
        marginal utility (Equation 4); we report the maximum marginal
        over resources with non-zero bids, which equals that shared
        value at an optimum and degrades gracefully away from one.
        """
        marginals = marginal_utility_of_bids(utility, bids, others, capacities)
        active = bids > 1e-12
        if not np.any(active):
            return float(marginals.max(initial=0.0))
        return float(marginals[active].max())


class HillClimbBidder(BiddingStrategy):
    """The exponential back-off hill climb of Section 4.1.2.

    Parameters
    ----------
    lambda_tolerance:
        Stop when max and min marginal utilities agree within this
        relative tolerance (paper: 5%).
    step_stop_fraction:
        Stop when the shift amount ``S`` falls below this fraction of the
        player's budget (paper: 1%).
    """

    def __init__(self, lambda_tolerance: float = 0.05, step_stop_fraction: float = 0.01):
        self.lambda_tolerance = lambda_tolerance
        self.step_stop_fraction = step_stop_fraction

    def _stale(
        self,
        bids: np.ndarray,
        utility: UtilityFunction,
        others: np.ndarray,
        capacities: np.ndarray,
    ) -> bool:
        """True when ``bids`` is far from this player's optimum.

        The climb moves at most ~2x its initial step per call, so a
        hint-sized step cannot recover from a large utility shift; a
        marginal imbalance beyond twice the stop tolerance means the
        seed is stale and the climb needs full mobility.
        """
        marginals = marginal_utility_of_bids(utility, bids, others, capacities)
        donors = np.where(bids > 1e-12)[0]
        if donors.size == 0:
            return False
        hi = float(marginals.max())
        lo = float(marginals[donors].min())
        return hi > 0.0 and hi - lo > 2.0 * self.lambda_tolerance * hi

    def optimize(
        self,
        utility: UtilityFunction,
        budget: float,
        others: np.ndarray,
        capacities: np.ndarray,
        current_bids: np.ndarray | None = None,
        step_hint: float | None = None,
    ) -> np.ndarray:
        num_resources = capacities.size
        if budget <= 0.0:
            return np.zeros(num_resources)
        if num_resources == 1:
            return np.array([budget])

        cold_step = budget / (2.0 * num_resources)
        min_step = self.step_stop_fraction * budget

        # Step 1: start from the previous bids when they are reusable
        # (same budget), otherwise from an equal split; S is half of one
        # equal-split bid, shrunk to the last move for warm starts.
        warm = self.warm_start_bids(current_bids, budget, num_resources)
        if warm is None:
            bids = np.full(num_resources, budget / num_resources)
            step = cold_step
        else:
            bids = warm
            if step_hint is None or self._stale(warm, utility, others, capacities):
                # No hint, or the seed's marginals are badly out of
                # balance (the problem shifted under us): a hint-sized
                # step cannot cover the distance, so climb at full
                # mobility from the warm point.
                step = cold_step
            else:
                step = float(np.clip(step_hint, 2.0 * min_step, cold_step))

        while step >= min_step:
            marginals = marginal_utility_of_bids(utility, bids, others, capacities)
            # Donor: lowest marginal among resources we actually bid on.
            # Recipient: highest marginal overall.
            active = bids > 1e-12
            donor_candidates = np.where(active)[0]
            if donor_candidates.size == 0:
                break
            donor = donor_candidates[np.argmin(marginals[donor_candidates])]
            recipient = int(np.argmax(marginals))
            hi, lo = marginals[recipient], marginals[donor]
            if recipient == donor or hi <= 0.0:
                break
            # Stop condition (a): marginals already agree within tolerance.
            if hi - lo <= self.lambda_tolerance * hi:
                break
            moved = min(step, bids[donor])
            bids[donor] -= moved
            bids[recipient] += moved
            # Step 3: exponential back-off.
            step *= 0.5

        return bids


class ExactBidder(BiddingStrategy):
    """Projected gradient ascent on the budget simplex.

    Maximizes ``U(r(b))`` over ``{b >= 0, sum b = budget}``.  The
    objective is concave whenever ``U`` is concave and non-decreasing
    (each ``r_j(b_j)`` is concave), so gradient ascent with a simplex
    projection converges to the true best response.  Slower but sharper
    than :class:`HillClimbBidder`; used in the bidding ablation.
    """

    def __init__(self, max_iterations: int = 200, tolerance: float = 1e-9):
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def optimize(
        self,
        utility: UtilityFunction,
        budget: float,
        others: np.ndarray,
        capacities: np.ndarray,
        current_bids: np.ndarray | None = None,
        step_hint: float | None = None,
    ) -> np.ndarray:
        num_resources = capacities.size
        if budget <= 0.0:
            return np.zeros(num_resources)
        if num_resources == 1:
            return np.array([budget])

        if current_bids is not None and current_bids.sum() > 0:
            bids = current_bids * (budget / current_bids.sum())
        else:
            bids = np.full(num_resources, budget / num_resources)

        def objective(b: np.ndarray) -> float:
            return utility.value(bid_to_allocation(b, others, capacities))

        value = objective(bids)
        step = budget / 4.0
        for _ in range(self.max_iterations):
            grad = marginal_utility_of_bids(utility, bids, others, capacities)
            # Cap the synthetic "infinite" first-bid marginals so the
            # ascent direction stays finite.
            grad = np.minimum(grad, 1e6)
            scale = float(np.abs(grad).max())
            if scale <= 0.0:
                break
            candidate = _project_to_simplex(bids + (step / scale) * grad, budget)
            candidate_value = objective(candidate)
            if candidate_value > value + 1e-15:
                moved = float(np.max(np.abs(candidate - bids)))
                bids, value = candidate, candidate_value
                step = min(step * 1.5, budget)  # expand while improving
                if moved < self.tolerance * budget:
                    break
            else:
                step *= 0.5
                if step < self.tolerance * budget:
                    break
        return bids


class PriceTakingBidder(BiddingStrategy):
    """A naive bidder that treats broadcast prices as fixed.

    The paper's bidders are *price-anticipating* (Equation 2: a player
    predicts how its own bid moves its allocation through the shared
    price).  The classic alternative from the literature the paper
    builds on (Feldman et al.; Kelly-style proportional fairness) is
    *price-taking*: assume ``r_j = b_j / p_j`` with ``p_j`` fixed at the
    last broadcast value.  Price takers over-bid on contested resources
    (they ignore that their own money inflates the price), which is the
    behaviour the bidding ablation quantifies.
    """

    def __init__(self, lambda_tolerance: float = 0.05, step_stop_fraction: float = 0.01):
        self.lambda_tolerance = lambda_tolerance
        self.step_stop_fraction = step_stop_fraction

    def optimize(
        self,
        utility: UtilityFunction,
        budget: float,
        others: np.ndarray,
        capacities: np.ndarray,
        current_bids: np.ndarray | None = None,
        step_hint: float | None = None,
    ) -> np.ndarray:
        num_resources = capacities.size
        if budget <= 0.0:
            return np.zeros(num_resources)
        if num_resources == 1:
            return np.array([budget])

        # Fixed prices from the last broadcast (Equation 1 with the
        # player's previous bids included).
        previous = (
            current_bids
            if current_bids is not None
            else np.full(num_resources, budget / num_resources)
        )
        prices = (others + np.maximum(np.asarray(previous, dtype=float), 0.0)) / capacities
        prices = np.maximum(prices, 1e-12)

        # The climb starts from the same bids the prices were derived
        # from: restarting from an equal split would optimize bids that
        # are inconsistent with the prices assumed above.
        warm = self.warm_start_bids(current_bids, budget, num_resources)
        bids = warm if warm is not None else np.full(num_resources, budget / num_resources)
        step = budget / (2.0 * num_resources)
        min_step = self.step_stop_fraction * budget
        while step >= min_step:
            allocation = np.minimum(bids / prices, capacities)
            du_dr = np.asarray(utility.gradient(allocation), dtype=float)
            marginals = np.where(allocation < capacities, du_dr / prices, 0.0)
            active = bids > 1e-12
            donors = np.where(active)[0]
            if donors.size == 0:
                break
            donor = donors[np.argmin(marginals[donors])]
            recipient = int(np.argmax(marginals))
            hi, lo = marginals[recipient], marginals[donor]
            if recipient == donor or hi <= 0.0 or hi - lo <= self.lambda_tolerance * hi:
                break
            moved = min(step, bids[donor])
            bids[donor] -= moved
            bids[recipient] += moved
            step *= 0.5
        return bids


def _project_to_simplex(vector: np.ndarray, total: float) -> np.ndarray:
    """Euclidean projection of ``vector`` onto ``{x >= 0, sum x = total}``."""
    if total <= 0.0:
        return np.zeros_like(vector)
    sorted_desc = np.sort(vector)[::-1]
    cumulative = np.cumsum(sorted_desc) - total
    ranks = np.arange(1, vector.size + 1)
    feasible = sorted_desc - cumulative / ranks > 0
    rho = int(np.nonzero(feasible)[0][-1])
    theta = cumulative[rho] / (rho + 1.0)
    return np.maximum(vector - theta, 0.0)
