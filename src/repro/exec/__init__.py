"""Parallel execution substrate for the experiment sweeps.

:class:`SweepExecutor` shards independent work items over a
``multiprocessing`` pool with deterministic per-item seeding
(``SeedSequence.spawn``), per-item error isolation, and progress/ETA
reporting; ``workers=1`` falls back to an identical serial in-process
path.  See :mod:`repro.exec.executor` for the full contract.
"""

from .executor import CellOutcome, SweepExecutor, SweepProgress, SweepRun

__all__ = ["CellOutcome", "SweepExecutor", "SweepProgress", "SweepRun"]
