"""Process-parallel sweep execution.

The experiment harness behind Figures 4 and 5 scores hundreds of
independent (bundle, mechanism) cells; nothing is shared between them,
so they shard cleanly over a :mod:`multiprocessing` pool.  The
:class:`SweepExecutor` here is the one engine both sweeps (and any
future fan-out workload) run on.  Its contract:

* **Determinism** — every work item receives its own
  :class:`numpy.random.SeedSequence`, spawned from a single root in
  submission order (``root.spawn(n)``).  The seed an item sees depends
  only on its position in the submission list, never on how items were
  sharded over workers, so ``workers=1`` and ``workers=N`` produce
  identical results for the same root seed.
* **Error isolation** — an exception inside one item is caught in the
  worker, recorded as a failed :class:`CellOutcome` carrying the
  formatted traceback, and the rest of the sweep continues.
* **Progress** — as each cell completes (in completion order, which
  under parallelism is not submission order), an optional callback
  receives a :class:`SweepProgress` beat with counts, elapsed time and
  a naive ETA.
* **Serial fallback** — ``workers=1`` runs every item in-process through
  the exact same envelope (same seeding, same isolation, same progress),
  with no pool and no pickling of results.

Work functions must be module-level callables (pickled by reference)
and work specs must be picklable; both constraints only bite when
``workers > 1``.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["CellOutcome", "SweepProgress", "SweepRun", "SweepExecutor"]


@dataclass
class CellOutcome:
    """Envelope around one work item's result (success or failure)."""

    index: int
    label: str
    ok: bool
    value: Any = None
    #: Formatted traceback of the worker-side exception, when ``not ok``.
    error: Optional[str] = None
    elapsed_s: float = 0.0


@dataclass(frozen=True)
class SweepProgress:
    """One progress beat, emitted as a cell completes."""

    completed: int
    total: int
    label: str
    ok: bool
    #: Wall-clock seconds since the sweep started.
    elapsed_s: float
    #: Naive remaining-time estimate: mean pace times outstanding cells.
    eta_s: float

    def describe(self) -> str:
        status = "ok" if self.ok else "FAILED"
        return (
            f"[{self.completed}/{self.total}] {self.label}: {status} "
            f"({self.elapsed_s:.1f}s elapsed, ~{self.eta_s:.0f}s left)"
        )


@dataclass
class SweepRun:
    """All cell outcomes of one executor run, in submission order."""

    cells: List[CellOutcome] = field(default_factory=list)
    elapsed_s: float = 0.0
    workers: int = 1

    @property
    def failures(self) -> List[CellOutcome]:
        return [cell for cell in self.cells if not cell.ok]

    def values(self) -> List[Any]:
        """Successful cells' values, in submission order."""
        return [cell.value for cell in self.cells if cell.ok]

    def raise_failures(self) -> None:
        """Re-raise the first failure (for callers that want fail-fast)."""
        for cell in self.cells:
            if not cell.ok:
                raise RuntimeError(
                    f"sweep cell {cell.label!r} failed:\n{cell.error}"
                )


def _execute_cell(task) -> CellOutcome:
    """Run one work item inside its isolation envelope (worker side)."""
    index, label, fn, spec, seed_seq = task
    start = time.perf_counter()
    try:
        value = fn(spec, seed_seq)
        return CellOutcome(
            index=index,
            label=label,
            ok=True,
            value=value,
            elapsed_s=time.perf_counter() - start,
        )
    except Exception:
        return CellOutcome(
            index=index,
            label=label,
            ok=False,
            error=traceback.format_exc(),
            elapsed_s=time.perf_counter() - start,
        )


class SweepExecutor:
    """Shard independent work items over a process pool.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` (the default) runs everything serially
        in-process — same seeding, isolation and progress reporting,
        no pickling.
    seed:
        Root of the per-item :class:`~numpy.random.SeedSequence` spawn
        tree.  Two runs with the same seed and submission order hand
        every item the same entropy regardless of ``workers``.
    progress:
        Optional callback receiving a :class:`SweepProgress` per
        completed cell.
    mp_context:
        ``multiprocessing`` start-method name.  Defaults to ``"fork"``
        where available (cheap, inherits imports) and ``"spawn"``
        elsewhere.
    chunksize:
        Tasks handed to a worker per dispatch.  ``1`` (default) gives
        the best load balance for heterogeneous cell costs (a
        MaxEfficiency cell is ~40x an EqualShare cell).
    """

    def __init__(
        self,
        workers: int = 1,
        seed: Optional[int] = 0,
        progress: Optional[Callable[[SweepProgress], None]] = None,
        mp_context: Optional[str] = None,
        chunksize: int = 1,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.workers = workers
        self.seed = seed
        self.progress = progress
        self.mp_context = mp_context
        self.chunksize = chunksize

    def _start_method(self) -> str:
        if self.mp_context is not None:
            return self.mp_context
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"

    def run(
        self,
        fn: Callable[[Any, np.random.SeedSequence], Any],
        specs: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
    ) -> SweepRun:
        """Apply ``fn(spec, seed_sequence)`` to every spec.

        ``fn`` must be a module-level callable when ``workers > 1`` (it
        is pickled by reference into the workers).  Returns a
        :class:`SweepRun` whose cells are in submission order whatever
        the completion order was.
        """
        specs = list(specs)
        n = len(specs)
        if labels is None:
            labels = [f"cell-{i}" for i in range(n)]
        elif len(labels) != n:
            raise ValueError(f"got {len(labels)} labels for {n} specs")

        children = np.random.SeedSequence(self.seed).spawn(n) if n else []
        tasks = [
            (i, str(labels[i]), fn, specs[i], children[i]) for i in range(n)
        ]

        cells: List[Optional[CellOutcome]] = [None] * n
        start = time.perf_counter()
        workers = min(self.workers, max(n, 1))
        for completed, outcome in enumerate(
            self._outcomes(tasks, workers), start=1
        ):
            cells[outcome.index] = outcome
            if self.progress is not None:
                elapsed = time.perf_counter() - start
                self.progress(
                    SweepProgress(
                        completed=completed,
                        total=n,
                        label=outcome.label,
                        ok=outcome.ok,
                        elapsed_s=elapsed,
                        eta_s=elapsed / completed * (n - completed),
                    )
                )
        return SweepRun(
            cells=list(cells),
            elapsed_s=time.perf_counter() - start,
            workers=workers,
        )

    def _outcomes(self, tasks, workers: int) -> Iterator[CellOutcome]:
        if workers == 1 or len(tasks) <= 1:
            for task in tasks:
                yield _execute_cell(task)
            return
        ctx = multiprocessing.get_context(self._start_method())
        with ctx.Pool(workers) as pool:
            for outcome in pool.imap_unordered(
                _execute_cell, tasks, chunksize=self.chunksize
            ):
                yield outcome
