"""A concrete set-associative LRU cache with way/line partitioning.

The analytic layers (miss-rate curves, UMON histograms) model what this
structure does; this module provides the structure itself, so the model
can be validated against a real address stream:

* :class:`SetAssociativeCache` — tag store with per-set LRU stacks,
  optional per-partition occupancy control in the style of Futility
  Scaling (a partition over its target evicts its own lines first).
* :class:`AddressStreamGenerator` — synthesizes an address stream whose
  LRU reuse distances follow an application's miss-rate curve, so the
  cache's measured miss rate at capacity ``s`` matches ``mrc(s)``.

The validation tests drive generated streams through real caches of
several sizes and check the measured miss rates against the analytic
curve — closing the loop between the paper's modeling layer and an
actual cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .application import MissRateCurve

__all__ = ["CacheStats", "SetAssociativeCache", "AddressStreamGenerator"]


@dataclass
class CacheStats:
    """Hit/miss counters, per partition and total."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Parameters
    ----------
    capacity_bytes / associativity / line_bytes:
        Geometry.  ``capacity = sets * associativity * line_bytes``.
    partition_targets:
        Optional mapping ``partition_id -> max lines``.  When a set must
        evict and the inserting partition is at or above its quota, the
        victim is that partition's own LRU line (occupancy control at
        line granularity, the role Futility Scaling plays in the paper);
        otherwise the global LRU line is evicted.
    """

    def __init__(
        self,
        capacity_bytes: int,
        associativity: int,
        line_bytes: int = 64,
        partition_targets: Optional[Dict[int, int]] = None,
    ):
        if capacity_bytes % (associativity * line_bytes) != 0:
            raise ValueError("capacity must be sets * ways * line_bytes")
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = capacity_bytes // (associativity * line_bytes)
        if self.num_sets < 1:
            raise ValueError("cache too small for its associativity")
        # Per set: list of (tag, partition) in LRU order (MRU last).
        self._sets: List[List[tuple]] = [[] for _ in range(self.num_sets)]
        self.partition_targets = dict(partition_targets or {})
        self._partition_lines: Dict[int, int] = {}
        self.stats = CacheStats()
        self.partition_stats: Dict[int, CacheStats] = {}

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.associativity * self.line_bytes

    def partition_occupancy(self, partition: int) -> int:
        """Lines currently held by ``partition``."""
        return self._partition_lines.get(partition, 0)

    def access(self, address: int, partition: int = 0) -> bool:
        """Access one address; returns True on hit."""
        line = address // self.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        entry = (tag, partition)
        cache_set = self._sets[index]

        self.stats.accesses += 1
        pstats = self.partition_stats.setdefault(partition, CacheStats())
        pstats.accesses += 1

        for k, (t, p) in enumerate(cache_set):
            if t == tag and p == partition:
                # Hit: move to MRU.
                cache_set.append(cache_set.pop(k))
                self.stats.hits += 1
                pstats.hits += 1
                return True

        # Miss: insert.  A partition at its quota evicts its own LRU
        # line (occupancy control) even when the set has free ways; a
        # full set otherwise evicts the global LRU line.
        victim_idx = self._choose_victim(cache_set, partition)
        if victim_idx is not None:
            _, victim_partition = cache_set.pop(victim_idx)
            self._partition_lines[victim_partition] -= 1
        cache_set.append(entry)
        self._partition_lines[partition] = self._partition_lines.get(partition, 0) + 1
        return False

    def _choose_victim(self, cache_set: List[tuple], inserting: int):
        """Index to evict, or None when no eviction is needed."""
        target = self.partition_targets.get(inserting)
        if target is not None and self.partition_occupancy(inserting) >= target:
            # Occupancy control: evict the inserting partition's own LRU
            # line so it cannot exceed its quota.
            for k, (_, p) in enumerate(cache_set):
                if p == inserting:
                    return k
        if len(cache_set) >= self.associativity:
            return 0  # global LRU
        return None

    def run(self, addresses: np.ndarray, partition: int = 0) -> CacheStats:
        """Drive a whole address stream; returns this stream's stats."""
        before_acc = self.stats.accesses
        before_hit = self.stats.hits
        for address in addresses:
            self.access(int(address), partition)
        return CacheStats(
            accesses=self.stats.accesses - before_acc,
            hits=self.stats.hits - before_hit,
        )


class AddressStreamGenerator:
    """Synthesizes addresses whose reuse behaviour matches an MRC.

    Strategy: draw a target stack distance ``d`` from the application's
    reuse-distance distribution and emit the address touched ``d`` bytes
    of *distinct* lines ago, maintained in an LRU list.  Compulsory
    (infinite-distance) draws emit a never-seen address.  Driving the
    stream through a fully associative LRU cache of size ``s`` then
    misses with probability ``mrc(s)`` by construction; set-associative
    caches add conflict noise, which is part of what the validation
    measures.
    """

    def __init__(self, mrc: MissRateCurve, line_bytes: int = 64, max_bytes: float = 8 << 20):
        self.mrc = mrc
        self.line_bytes = line_bytes
        self._table = mrc.survival_table(max_bytes=max_bytes)
        self._lru: List[int] = []  # line numbers, MRU last
        self._next_line = 0
        # History beyond the largest modellable reuse distance can never
        # be referenced again; trim to bound memory and list-ops cost.
        self._max_history = 2 * int(max_bytes // line_bytes)

    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        distances = self.mrc.sample_stack_distances(rng, count, table=self._table)
        out = np.empty(count, dtype=np.int64)
        for k, distance in enumerate(distances):
            line = self._line_for_distance(distance)
            out[k] = line * self.line_bytes
        return out

    def _line_for_distance(self, distance_bytes: float) -> int:
        if len(self._lru) > self._max_history:
            del self._lru[: len(self._lru) - self._max_history]
        if not np.isfinite(distance_bytes):
            line = self._next_line
            self._next_line += 1
            self._lru.append(line)
            return line
        depth = int(distance_bytes // self.line_bytes)
        if depth >= len(self._lru):
            # Not enough history yet: treat as compulsory.
            line = self._next_line
            self._next_line += 1
            self._lru.append(line)
            return line
        # Reuse the line `depth` distinct lines back from MRU.
        line = self._lru[-(depth + 1)]
        self._lru.remove(line)
        self._lru.append(line)
        return line
