"""Per-core runtime utility monitoring (Section 4.1.1).

The paper models every application's utility *online*: UMON shadow tags
estimate the miss-rate curve, a critical-path predictor estimates the
memory phase, and Isci-style counters estimate compute time and power.
No offline profiling is used.

:class:`RuntimeMonitor` reproduces that loop for one core.  Every epoch
it ingests the core's (synthetic) access stream into the shadow tags and
a noisy CPI estimate into an exponential moving average; on demand it
produces the concave utility function the market bids with.  The gap
between this estimated utility and the true analytic one is exactly the
phase-1 vs phase-2 difference of Section 6.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utility.tabular import GridUtility2D
from .config import CMPConfig
from .core_model import CoreModel
from .umon import UMONShadowTags
from .utility_builder import build_utility_from_miss_curve

__all__ = ["MAX_EPOCH_ACCESSES", "RuntimeMonitor"]

#: Cap on sampled accesses fed to the shadow tags per epoch; real UMON
#: sees the full stream, but the histogram converges long before this.
MAX_EPOCH_ACCESSES = 200_000


class RuntimeMonitor:
    """Online utility estimation for one core.

    Parameters
    ----------
    core:
        The true core model (used to synthesize the access stream and
        as the source of power/DRAM parameters).
    config:
        Chip configuration (region size, UMON limits, sampling rate).
    rng:
        Randomness source for the synthetic access stream — this is
        where phase-2's monitoring noise comes from.
    cpi_noise_std:
        Relative noise on the compute-CPI estimate per epoch, modeling
        critical-path-predictor error.
    history_weight:
        EWMA weight on past epochs' miss curves, smoothing estimates
        across epochs the way hardware monitors effectively do.
    """

    def __init__(
        self,
        core: CoreModel,
        config: CMPConfig,
        rng: Optional[np.random.Generator] = None,
        cpi_noise_std: float = 0.03,
        history_weight: float = 0.5,
    ):
        self.core = core
        self.config = config
        self.rng = rng or np.random.default_rng(0)
        self.cpi_noise_std = cpi_noise_std
        self.history_weight = history_weight
        self.umon = UMONShadowTags(
            max_regions=config.umon_max_regions,
            region_bytes=config.cache_region_bytes,
            sampling_rate=config.umon_sampling_rate,
        )
        self._survival_table = core.app.mrc.survival_table(
            max_bytes=2.0 * config.umon_max_bytes
        )
        self._smoothed_curve: Optional[np.ndarray] = None
        self._cpi_estimate = core.app.cpi_exe
        self._utility_cache: Optional[GridUtility2D] = None

    def observe_epoch(self, instructions: float, apki_scale: float = 1.0) -> None:
        """Ingest one epoch of execution into the monitors.

        ``instructions`` retired this epoch determine the L2 access
        count; ``apki_scale`` reflects the application's current phase.
        """
        accesses = int(instructions * self.core.app.apki * apki_scale / 1000.0)
        accesses = min(max(accesses, 0), MAX_EPOCH_ACCESSES)
        if accesses > 0:
            distances = self.core.app.mrc.sample_stack_distances(
                self.rng, accesses, table=self._survival_table
            )
            self.umon.reset()
            self.umon.observe(distances)
            fresh = self.umon.miss_curve()
            if self._smoothed_curve is None:
                self._smoothed_curve = fresh
            else:
                w = self.history_weight
                self._smoothed_curve = w * self._smoothed_curve + (1.0 - w) * fresh

        # Critical-path / power-counter noise on the compute-CPI estimate.
        noise = 1.0 + self.cpi_noise_std * self.rng.standard_normal()
        self._cpi_estimate = self.core.app.cpi_exe * max(noise, 0.5)
        self._utility_cache = None

    @property
    def miss_curve(self) -> np.ndarray:
        """Current smoothed miss-curve estimate (1..16 regions)."""
        if self._smoothed_curve is None:
            return np.ones(self.config.umon_max_regions)
        return self._smoothed_curve.copy()

    @property
    def cpi_estimate(self) -> float:
        return self._cpi_estimate

    def estimated_utility(self) -> GridUtility2D:
        """The concave utility the market should bid with this epoch."""
        if self._utility_cache is None:
            self._utility_cache = build_utility_from_miss_curve(
                self.core,
                self.config,
                self.miss_curve,
                cpi_estimate=self._cpi_estimate,
            )
        return self._utility_cache
