"""Analytic core performance model (Section 4.1.1's decomposition).

The paper splits execution time into a *compute phase*, whose length
scales with frequency, and a *memory phase*, whose length is set by the
L2 miss count and the DRAM latency and is frequency-independent.  For an
application with compute CPI ``cpi_exe``, ``mpi`` misses per instruction
and memory latency ``L`` ns, the time per instruction at frequency ``f``
GHz is::

    t(s, f) = cpi_exe / f  +  mpi(s) * L      [ns]

Performance is ``1/t`` giga-instructions per second.  The paper's
utility is IPC normalized to the standalone IPC; measured at a common
reference clock that equals performance normalized to standalone
performance, which is what we compute (both are dimensionless and
identical whenever frequencies match; normalized performance is the
physically meaningful quantity under DVFS).
"""

from __future__ import annotations

from dataclasses import dataclass

from .application import AppProfile
from .config import CMPConfig
from .dram import DRAMModel
from .power import DVFSPowerModel

__all__ = ["CoreModel", "OperatingPoint"]


@dataclass(frozen=True)
class OperatingPoint:
    """A fully resolved (cache, frequency) operating point for one core."""

    cache_bytes: float
    frequency_ghz: float
    performance_gips: float
    power_watts: float
    utility: float


class CoreModel:
    """Performance/power model of one application on one core.

    Combines the application profile, the DVFS power model and the DRAM
    latency into the two functions the rest of the system needs:
    performance at an operating point, and the maximum performance
    affordable within a power cap.
    """

    def __init__(
        self,
        app: AppProfile,
        config: CMPConfig,
        power_model: DVFSPowerModel | None = None,
        dram: DRAMModel | None = None,
    ):
        self.app = app
        self.config = config
        self.power_model = power_model or DVFSPowerModel(core=config.core)
        self.dram = dram or DRAMModel(channels=config.memory_channels)
        self._mem_latency_ns = self.dram.uncontended_latency_ns()
        self._alone_gips = self.performance_gips(
            self.config.umon_max_bytes, self.config.core.max_frequency_ghz
        )

    @property
    def memory_latency_ns(self) -> float:
        return self._mem_latency_ns

    @property
    def alone_performance_gips(self) -> float:
        """Standalone performance: all monitorable cache, max frequency."""
        return self._alone_gips

    def time_per_instruction_ns(
        self,
        cache_bytes: float,
        frequency_ghz: float,
        cpi_scale: float = 1.0,
        apki_scale: float = 1.0,
        latency_ns: float | None = None,
    ) -> float:
        """Compute-phase plus memory-phase time per instruction.

        ``cpi_scale``/``apki_scale`` apply program-phase modulation and
        ``latency_ns`` overrides the uncontended DRAM latency (the
        execution-driven simulator feeds back channel contention).
        """
        latency = self._mem_latency_ns if latency_ns is None else latency_ns
        compute = self.app.cpi_exe * cpi_scale / frequency_ghz
        memory = (
            self.app.misses_per_instruction(cache_bytes) * apki_scale * latency
        )
        return compute + memory

    def performance_gips(
        self,
        cache_bytes: float,
        frequency_ghz: float,
        cpi_scale: float = 1.0,
        apki_scale: float = 1.0,
        latency_ns: float | None = None,
    ) -> float:
        """Instructions per nanosecond (== GIPS) at an operating point.

        Cache beyond the UMON-monitorable 2 MB yields no additional
        utility (the paper's footnote 3); we clamp accordingly.
        """
        cache = min(cache_bytes, float(self.config.umon_max_bytes))
        return 1.0 / self.time_per_instruction_ns(
            cache, frequency_ghz, cpi_scale, apki_scale, latency_ns
        )

    def utility(self, cache_bytes: float, frequency_ghz: float) -> float:
        """Normalized performance in [0, 1] (Section 4.1.1's utility)."""
        return self.performance_gips(cache_bytes, frequency_ghz) / self._alone_gips

    def power_watts(
        self, frequency_ghz: float, temperature_c: float | None = None
    ) -> float:
        """Core power at a frequency, using the app's activity factor."""
        return self.power_model.total_power(frequency_ghz, self.app.activity, temperature_c)

    def min_power_watts(self, temperature_c: float | None = None) -> float:
        """The free power allocation: enough to run at 800 MHz."""
        return self.power_model.min_power(self.app.activity, temperature_c)

    def max_power_watts(self, temperature_c: float | None = None) -> float:
        """Power draw at 4 GHz — no allocation beyond this is useful."""
        return self.power_model.max_power(self.app.activity, temperature_c)

    def frequency_for_power(
        self, watts: float, temperature_c: float | None = None
    ) -> float:
        """Highest frequency sustainable within ``watts``."""
        return self.power_model.frequency_for_power(watts, self.app.activity, temperature_c)

    def operating_point(
        self,
        cache_bytes: float,
        power_watts: float,
        temperature_c: float | None = None,
    ) -> OperatingPoint:
        """Resolve a (cache, power) allocation to frequency and utility."""
        frequency = self.frequency_for_power(power_watts, temperature_c)
        gips = self.performance_gips(cache_bytes, frequency)
        return OperatingPoint(
            cache_bytes=cache_bytes,
            frequency_ghz=frequency,
            performance_gips=gips,
            power_watts=self.power_watts(frequency, temperature_c),
            utility=gips / self._alone_gips,
        )
