"""Futility Scaling: fine-grained cache partition enforcement.

Futility Scaling [Wang & Chen, MICRO'14] keeps each partition's actual
occupancy near its target at cache-line granularity in a
high-associativity cache.  Each partition has a *scaling factor* that
inflates or deflates the "futility" (eviction priority) of its lines;
the controller raises the factor of over-sized partitions (making their
lines more evictable) and lowers it for under-sized ones.

We reproduce the mechanism as a discrete-time feedback loop over
allocation epochs.  Steady-state occupancy follows an insertion/eviction
balance: a partition with access rate ``a_i`` and scaling factor
``w_i`` settles at occupancy proportional to ``a_i / w_i``.  The
controller applies a multiplicative update

    w_i <- w_i * (occupancy_i / target_i) ** gain

clamped to a safe range, which provably converges (in this model) to
occupancies matching the targets, with a per-epoch slew limit standing
in for the finite eviction bandwidth of real hardware.

The paper uses this mechanism to make cache allocation effectively
continuous at 128 kB granularity ("cache regions") with ~1.5% storage
overhead.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FutilityScalingController"]


class FutilityScalingController:
    """Feedback controller driving partition occupancies toward targets.

    Parameters
    ----------
    capacity_bytes:
        Total cache capacity shared by the partitions.
    num_partitions:
        One partition per core.
    gain:
        Multiplicative update exponent (0 < gain <= 1); higher converges
        faster but overshoots more.
    max_slew_fraction:
        At most this fraction of the capacity may migrate between
        partitions per epoch (models finite eviction bandwidth).
    """

    def __init__(
        self,
        capacity_bytes: float,
        num_partitions: int,
        gain: float = 0.5,
        max_slew_fraction: float = 0.25,
    ):
        if capacity_bytes <= 0 or num_partitions < 1:
            raise ValueError("capacity must be positive and partitions >= 1")
        if not 0.0 < gain <= 1.0:
            raise ValueError("gain must lie in (0, 1]")
        self.capacity_bytes = float(capacity_bytes)
        self.num_partitions = num_partitions
        self.gain = gain
        self.max_slew_fraction = max_slew_fraction
        self.scaling_factors = np.ones(num_partitions)
        self.occupancy_bytes = np.full(
            num_partitions, self.capacity_bytes / num_partitions
        )

    def steady_occupancy(self, access_rates: np.ndarray) -> np.ndarray:
        """Occupancy the insertion/eviction balance would settle at.

        A partition inserting at rate ``a_i`` whose lines carry scaled
        futility ``w_i`` holds a share proportional to ``a_i / w_i``.
        """
        rates = np.maximum(np.asarray(access_rates, dtype=float), 1e-12)
        weights = rates / self.scaling_factors
        return self.capacity_bytes * weights / weights.sum()

    def step(self, targets_bytes: np.ndarray, access_rates: np.ndarray) -> np.ndarray:
        """Run one epoch: update scaling factors, move occupancy.

        Returns the new occupancy vector.  Targets are normalized to the
        capacity if they do not sum to it (the allocator always hands
        out everything, but guard anyway).
        """
        targets = np.maximum(np.asarray(targets_bytes, dtype=float), 1.0)
        targets = targets * (self.capacity_bytes / targets.sum())

        # Where the replacement balance would take occupancy this epoch.
        desired = self.steady_occupancy(access_rates)

        # Finite eviction bandwidth: move at most max_slew of capacity.
        delta = desired - self.occupancy_bytes
        slew = self.max_slew_fraction * self.capacity_bytes
        total_move = np.abs(delta).sum() / 2.0
        if total_move > slew:
            delta *= slew / total_move
        self.occupancy_bytes = self.occupancy_bytes + delta
        # Renormalize against floating-point drift.
        self.occupancy_bytes *= self.capacity_bytes / self.occupancy_bytes.sum()

        # Controller: scale futilities toward the targets.
        ratio = self.occupancy_bytes / targets
        self.scaling_factors *= np.power(ratio, self.gain)
        np.clip(self.scaling_factors, 1e-6, 1e6, out=self.scaling_factors)
        # Normalize the factors (only their ratios matter).
        self.scaling_factors /= np.exp(np.mean(np.log(self.scaling_factors)))

        return self.occupancy_bytes.copy()

    def max_error_fraction(self, targets_bytes: np.ndarray) -> float:
        """Largest relative occupancy error versus the targets."""
        targets = np.maximum(np.asarray(targets_bytes, dtype=float), 1.0)
        targets = targets * (self.capacity_bytes / targets.sum())
        return float(np.max(np.abs(self.occupancy_bytes - targets) / targets))

    @property
    def storage_overhead_fraction(self) -> float:
        """Per-line futility state cost, ~1.5% of the cache (the paper's figure).

        One byte of (partition id + scaled futility) state per 64-byte
        line gives 1/64 ~= 1.6%.
        """
        return 1.0 / 64.0
