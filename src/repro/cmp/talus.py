"""Talus: convexifying cache utility with shadow partitions.

Talus [Beckmann & Sanchez, HPCA'15] removes performance cliffs from
cache partitions.  Given an application's sampled utility (or miss)
curve, it derives the curve's upper convex hull; the hull's vertices are
the *points of interest* (PoIs).  To realize a target partition size
``t`` between two PoIs ``s1 < t < s2``, Talus splits the partition into
two shadow partitions and steers a fraction ``rho = (s2 - t)/(s2 - s1)``
of the access stream into the first:

* shadow partition A: size ``rho * s1``, receiving fraction ``rho`` of
  accesses — it behaves exactly like a cache of size ``s1`` for its
  share of the stream;
* shadow partition B: size ``(1 - rho) * s2`` with the remaining
  fraction — behaving like size ``s2``.

Total size is ``rho*s1 + (1-rho)*s2 = t`` and the combined miss rate is
the *linear interpolation* ``rho*m(s1) + (1-rho)*m(s2)`` — precisely the
hull.  The cache utility the market sees therefore becomes continuous,
non-decreasing and concave, as required by the theory in Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..utility.convex_hull import PiecewiseLinearConcave

__all__ = ["ShadowPartitionPlan", "TalusController"]


@dataclass(frozen=True)
class ShadowPartitionPlan:
    """How to realize one target partition size with two shadow partitions."""

    target_bytes: float
    size_a_bytes: float
    size_b_bytes: float
    stream_fraction_a: float
    poi_low_bytes: float
    poi_high_bytes: float
    expected_value: float  # the hull's utility (or miss) value at target

    @property
    def stream_fraction_b(self) -> float:
        return 1.0 - self.stream_fraction_a


class TalusController:
    """Plans shadow partitions from a sampled curve's convex hull.

    Parameters
    ----------
    sizes_bytes / values:
        The sampled curve.  For *utility* curves (non-decreasing) the
        upper hull is taken directly.  The controller is agnostic to
        whether values are utilities or hit rates, as long as larger is
        better; pass ``1 - miss_rate`` for miss curves.
    """

    def __init__(self, sizes_bytes: Sequence[float], values: Sequence[float]):
        self.hull = PiecewiseLinearConcave(sizes_bytes, values)

    @property
    def points_of_interest(self):
        """Hull vertices: the only sizes Talus ever physically configures."""
        return self.hull.points_of_interest

    def value_at(self, target_bytes: float) -> float:
        """Convexified curve value at any (continuous) target size."""
        return self.hull.value(target_bytes)

    def plan(self, target_bytes: float) -> ShadowPartitionPlan:
        """Shadow-partition configuration realizing ``target_bytes``.

        Targets at or beyond the hull's range degenerate to a single
        partition (fraction A = 1 at the nearest PoI).
        """
        (s1, _v1), (s2, _v2) = self.hull.bracketing_pois(target_bytes)
        if s2 <= s1:
            # Degenerate: the target coincides with a PoI (or is outside
            # the sampled range); one partition carries the whole stream.
            return ShadowPartitionPlan(
                target_bytes=target_bytes,
                size_a_bytes=s1,
                size_b_bytes=0.0,
                stream_fraction_a=1.0,
                poi_low_bytes=s1,
                poi_high_bytes=s2,
                expected_value=self.hull.value(target_bytes),
            )
        rho = (s2 - target_bytes) / (s2 - s1)
        rho = float(min(max(rho, 0.0), 1.0))
        return ShadowPartitionPlan(
            target_bytes=target_bytes,
            size_a_bytes=rho * s1,
            size_b_bytes=(1.0 - rho) * s2,
            stream_fraction_a=rho,
            poi_low_bytes=s1,
            poi_high_bytes=s2,
            expected_value=self.hull.value(target_bytes),
        )

    def realized_value(self, plan: ShadowPartitionPlan, raw_curve) -> float:
        """Value the plan actually achieves given the raw (cliffy) curve.

        ``raw_curve`` maps size (bytes) to the un-convexified value.  By
        Talus's construction this equals the hull at the plan's target —
        the property the tests verify.
        """
        v1 = raw_curve(plan.poi_low_bytes)
        if plan.stream_fraction_a >= 1.0:
            return v1
        v2 = raw_curve(plan.poi_high_bytes)
        return plan.stream_fraction_a * v1 + plan.stream_fraction_b * v2
