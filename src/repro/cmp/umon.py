"""UMON shadow tags: runtime miss-rate-curve estimation.

UMON [Qureshi & Patt, MICRO'06] attaches an auxiliary LRU tag directory
("shadow tags") to a sample of cache sets and records, for every sampled
access, the LRU *stack distance* at which it hits.  The resulting
histogram gives the number of misses the application would suffer at
every possible partition size — the miss-rate curve — without disturbing
the real cache.

Following Section 5 of the paper, the monitor covers stack distances up
to 16 cache regions (2 MB) with a dynamic sampling rate of 32 (one in 32
accesses is recorded), which is what bounds its 3.6 kB/core overhead.

The shadow tags consume stack distances in bytes; the synthetic
application models produce them from their reuse-distance distributions
(`AppProfile.mrc.sample_stack_distances`), so the histogram the monitor
accumulates is exactly what hardware shadow tags would observe, sampling
noise included.
"""

from __future__ import annotations

import numpy as np

from .config import CACHE_REGION_BYTES

__all__ = ["UMONShadowTags"]


class UMONShadowTags:
    """Sampled stack-distance histogram with region-granularity read-out.

    Parameters
    ----------
    max_regions:
        Monitorable range in cache regions (paper: 16 -> 2 MB).
    region_bytes:
        Size of one region (paper: 128 kB).
    sampling_rate:
        Record one in ``sampling_rate`` accesses (paper: 32).
    """

    def __init__(
        self,
        max_regions: int = 16,
        region_bytes: int = CACHE_REGION_BYTES,
        sampling_rate: int = 32,
    ):
        if max_regions < 1 or region_bytes < 1 or sampling_rate < 1:
            raise ValueError("max_regions, region_bytes, sampling_rate must be >= 1")
        self.max_regions = max_regions
        self.region_bytes = region_bytes
        self.sampling_rate = sampling_rate
        # hit_histogram[k] counts sampled accesses whose stack distance
        # falls in region bucket k (i.e. hits once the partition has
        # >= k+1 regions).  Distances beyond the range land in overflow.
        self.hit_histogram = np.zeros(max_regions, dtype=np.int64)
        self.overflow = 0
        self.sampled_accesses = 0
        self.total_accesses = 0
        self._phase = 0  # deterministic 1-in-N sampling counter

    def reset(self) -> None:
        """Clear all counters (done at every allocation epoch)."""
        self.hit_histogram[:] = 0
        self.overflow = 0
        self.sampled_accesses = 0
        self.total_accesses = 0

    def observe(self, stack_distances_bytes: np.ndarray) -> None:
        """Feed a batch of access stack distances (bytes; inf = compulsory).

        Only every ``sampling_rate``-th access is recorded, mirroring the
        set-sampling hardware; the rest only bump the access counter.
        """
        distances = np.asarray(stack_distances_bytes, dtype=float)
        n = distances.size
        if n == 0:
            return
        # Deterministic striding across calls keeps exactly 1/rate sampling.
        start = (-self._phase) % self.sampling_rate
        sampled = distances[start::self.sampling_rate]
        self._phase = (self._phase + n) % self.sampling_rate
        self.total_accesses += n
        self.sampled_accesses += sampled.size

        finite = sampled[np.isfinite(sampled)]
        self.overflow += sampled.size - finite.size
        if finite.size:
            buckets = (finite // self.region_bytes).astype(np.int64)
            in_range = buckets < self.max_regions
            self.overflow += int(np.count_nonzero(~in_range))
            np.add.at(self.hit_histogram, buckets[in_range], 1)

    def miss_curve(self) -> np.ndarray:
        """Estimated miss fraction at partition sizes of 1..max_regions regions.

        ``miss_curve()[k]`` estimates the miss fraction with ``k+1``
        regions: the fraction of sampled accesses whose stack distance
        exceeds ``(k+1) * region_bytes``.
        """
        if self.sampled_accesses == 0:
            return np.ones(self.max_regions)
        hits_cumulative = np.cumsum(self.hit_histogram)
        misses = self.sampled_accesses - hits_cumulative
        return misses / self.sampled_accesses

    def misses_at(self, regions: int) -> float:
        """Estimated miss fraction for a partition of ``regions`` regions."""
        if regions < 1:
            return 1.0
        curve = self.miss_curve()
        return float(curve[min(regions, self.max_regions) - 1])

    @property
    def storage_overhead_bytes(self) -> int:
        """Rough shadow-tag storage cost, for the <1% overhead check.

        One in ``sampling_rate`` sets is shadowed across ``max_regions``
        regions of tag state; with ~29-bit tags plus LRU state per line
        (~4 bytes) and 64-byte lines this reproduces the paper's
        ~3.6 kB/core figure.
        """
        lines_covered = self.max_regions * self.region_bytes // 64
        sampled_lines = lines_covered // self.sampling_rate
        return sampled_lines * 4 // 1  # ~4 bytes of tag+LRU per sampled line
