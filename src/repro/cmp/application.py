"""Synthetic application models.

The paper profiles 24 SPEC 2000/2006 applications on a detailed
simulator.  We replace the binaries with parametric models that expose
exactly the properties the allocation layer depends on:

* a **miss-rate curve** (MRC): the fraction of L2 accesses that miss as
  a function of the partition size.  The shapes match the paper's
  published observations — smoothly concave utility (*vpr*), a sharp
  working-set cliff (*mcf*: flat at ~0.2 of standalone IPC until its
  1.5 MB working set fits, then jumping to 1.0), and cache-insensitive
  streaming behaviour;
* a compute CPI and an L2 access intensity (APKI), which together with
  the MRC and the DRAM latency determine performance via the paper's
  compute-phase + memory-phase decomposition;
* a dynamic-power **activity factor** for the DVFS model;
* optional **phases** that modulate these parameters over time in the
  execution-driven simulator.

Applications also know how to sample LRU stack distances consistent
with their MRC, which is what feeds the UMON shadow-tag monitor.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .config import CACHE_REGION_BYTES, MB

__all__ = [
    "MissRateCurve",
    "PowerLawMRC",
    "CliffMRC",
    "FlatMRC",
    "MixtureMRC",
    "Phase",
    "AppProfile",
]


class MissRateCurve(abc.ABC):
    """Miss fraction of L2 accesses as a function of partition bytes."""

    @abc.abstractmethod
    def miss_fraction(self, size_bytes: float) -> float:
        """Fraction of accesses missing in a partition of ``size_bytes``."""

    @property
    @abc.abstractmethod
    def floor(self) -> float:
        """Compulsory miss fraction (misses no cache size removes)."""

    @property
    @abc.abstractmethod
    def ceiling(self) -> float:
        """Miss fraction at (near-)zero capacity."""

    def survival(self, size_bytes: float) -> float:
        """P(stack distance > size) for capacity-sensitive accesses.

        Normalizes the MRC into the reuse-distance survival function
        that an LRU stack-distance monitor observes: 1 at size 0,
        approaching 0 once the whole reuse footprint fits.
        """
        span = self.ceiling - self.floor
        if span <= 0.0:
            return 0.0
        value = (self.miss_fraction(size_bytes) - self.floor) / span
        return float(min(max(value, 0.0), 1.0))

    def survival_table(
        self, max_bytes: float = 8 * MB, points: int = 512
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Tabulated survival function on a size grid (for fast sampling).

        Returns ``(sizes, survival)`` with sizes from 0 to ``max_bytes``
        and the survival values made strictly non-increasing (tiny
        numerical wiggles are flattened) so the inverse is well defined.
        """
        sizes = np.linspace(0.0, max_bytes, points)
        surv = np.array([self.survival(s) for s in sizes])
        surv = np.minimum.accumulate(surv)
        return sizes, surv

    def sample_stack_distances(
        self,
        rng: np.random.Generator,
        count: int,
        max_bytes: float = 8 * MB,
        table: "tuple[np.ndarray, np.ndarray] | None" = None,
    ) -> np.ndarray:
        """Draw ``count`` stack distances (bytes) by inverse-CDF sampling.

        The access population has three parts, so that the fraction of
        distances exceeding ``s`` equals the absolute miss fraction
        ``m(s)``: a ``floor`` fraction of compulsory misses (infinite
        distance), a ``1 - ceiling`` fraction that hits at any size
        (distance 0), and the capacity-sensitive remainder drawn by
        inverting the (tabulated) survival function.  Pass a precomputed
        ``table`` from :meth:`survival_table` to amortize the tabulation
        across epochs.
        """
        if self.ceiling <= 0.0:
            # The application never misses: all reuses are tiny.
            return np.zeros(count)
        if table is None:
            table = self.survival_table(max_bytes)
        sizes, surv = table
        uniforms = rng.random(count)
        out = np.zeros(count)  # the "always hit" mass keeps distance 0
        compulsory = uniforms < self.floor
        out[compulsory] = np.inf
        sensitive = (~compulsory) & (uniforms < self.ceiling)
        if np.any(sensitive):
            # Re-scale onto the capacity-sensitive portion; survival
            # decreases from 1 to ~0, so invert on the reversed table.
            span = max(self.ceiling - self.floor, 1e-12)
            targets = 1.0 - (uniforms[sensitive] - self.floor) / span
            drawn = np.interp(-targets, -surv, sizes)
            beyond = targets < surv[-1]
            out[sensitive] = np.where(beyond, np.inf, drawn)
        return out


@dataclass(frozen=True)
class PowerLawMRC(MissRateCurve):
    """Smoothly decaying MRC: ``m(s) = floor + span / (1 + s/s_half)^gamma``.

    Produces the concave, diminishing-returns utility of applications
    like *vpr* in Figure 2.
    """

    ceiling_value: float
    floor_value: float
    s_half_bytes: float
    gamma: float = 1.0

    def miss_fraction(self, size_bytes: float) -> float:
        span = self.ceiling_value - self.floor_value
        return self.floor_value + span / (1.0 + max(size_bytes, 0.0) / self.s_half_bytes) ** self.gamma

    @property
    def floor(self) -> float:
        return self.floor_value

    @property
    def ceiling(self) -> float:
        return self.ceiling_value


@dataclass(frozen=True)
class CliffMRC(MissRateCurve):
    """Working-set cliff: high misses until ``ws_bytes`` fits, then a drop.

    The logistic sharpness controls how abrupt the cliff is; *mcf*'s
    1.5 MB working set uses a sharp one (Figure 2 shows its utility flat
    at ~0.2 through 10 ways and jumping to 1.0 at 12 ways).
    """

    ceiling_value: float
    floor_value: float
    ws_bytes: float
    sharpness: float = 12.0

    def miss_fraction(self, size_bytes: float) -> float:
        span = self.ceiling_value - self.floor_value
        x = (max(size_bytes, 0.0) - self.ws_bytes) / (self.ws_bytes / self.sharpness)
        return self.floor_value + span / (1.0 + math.exp(min(max(x, -40.0), 40.0)))

    @property
    def floor(self) -> float:
        return self.floor_value

    @property
    def ceiling(self) -> float:
        # The logistic never quite reaches the ceiling at size 0; report
        # the actual value so survival() normalizes correctly.
        return self.miss_fraction(0.0)


@dataclass(frozen=True)
class FlatMRC(MissRateCurve):
    """Cache-insensitive MRC (streaming or L1-resident applications)."""

    value: float

    def miss_fraction(self, size_bytes: float) -> float:
        return self.value

    @property
    def floor(self) -> float:
        return self.value

    @property
    def ceiling(self) -> float:
        return self.value


@dataclass(frozen=True)
class MixtureMRC(MissRateCurve):
    """Weighted mixture of MRCs (multi-working-set applications)."""

    components: tuple
    weights: tuple

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights) or not self.components:
            raise ValueError("components and weights must be non-empty and equal length")
        total = sum(self.weights)
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise ValueError("weights must sum to 1")

    def miss_fraction(self, size_bytes: float) -> float:
        return sum(
            w * c.miss_fraction(size_bytes)
            for c, w in zip(self.components, self.weights)
        )

    @property
    def floor(self) -> float:
        return sum(w * c.floor for c, w in zip(self.components, self.weights))

    @property
    def ceiling(self) -> float:
        return sum(w * c.ceiling for c, w in zip(self.components, self.weights))


@dataclass(frozen=True)
class Phase:
    """A program phase: multiplicative shifts on the base parameters.

    The execution-driven simulator cycles through phases to exercise the
    1 ms re-allocation loop (context switches and phase changes are the
    reason the paper re-runs the market at all).
    """

    duration_ms: float
    apki_scale: float = 1.0
    cpi_scale: float = 1.0
    activity_scale: float = 1.0


@dataclass(frozen=True)
class AppProfile:
    """Everything the substrate knows about one application.

    Attributes
    ----------
    name / suite:
        Identification (e.g. ``mcf`` / ``spec2000``).
    cpi_exe:
        Compute-phase cycles per instruction (no L2 misses).
    apki:
        L2 accesses per kilo-instruction (i.e. L1 misses reaching L2).
    mrc:
        Miss-rate curve over the L2 partition size.
    activity:
        Dynamic-power activity factor (1.0 = fully active pipeline).
    phases:
        Optional phase list for the execution-driven simulator; empty
        means stationary behaviour.
    """

    name: str
    suite: str
    cpi_exe: float
    apki: float
    mrc: MissRateCurve
    activity: float = 1.0
    phases: tuple = ()

    def misses_per_instruction(self, cache_bytes: float) -> float:
        """L2 misses per instruction at a partition size."""
        return self.apki / 1000.0 * self.mrc.miss_fraction(cache_bytes)

    def min_cache_bytes(self) -> float:
        """The free minimum partition: one cache region."""
        return float(CACHE_REGION_BYTES)
