"""Whole-chip model: cores + shared cache + power domain.

:class:`ChipModel` ties the substrate together for one multiprogrammed
bundle: it instantiates a :class:`~repro.cmp.core_model.CoreModel` per
application, computes the free minimum allocations (one cache region and
800 MHz power per core), and exposes the market-facing
:class:`~repro.core.mechanisms.AllocationProblem` over the *remaining*
resources.  It also converts market allocations back into physical
operating points, which is what the execution-driven simulator and the
measured-efficiency metrics consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.mechanisms import AllocationProblem
from ..exceptions import MarketConfigurationError
from ..utility.base import UtilityFunction
from .application import AppProfile
from .config import CMPConfig
from .core_model import CoreModel, OperatingPoint
from .dram import DRAMModel
from .power import RAPL_QUANTUM_WATTS, DVFSPowerModel
from .utility_builder import build_true_utility, extra_capacity_for

__all__ = ["ChipModel"]


@dataclass
class _FreeMinimums:
    cache_bytes: float
    power_watts: np.ndarray  # per core (activity-dependent)


class ChipModel:
    """A CMP running one application per core.

    Parameters
    ----------
    config:
        Chip configuration (8- or 64-core, Table 1).
    apps:
        One application per core; ``len(apps) == config.num_cores``.
    """

    def __init__(self, config: CMPConfig, apps: Sequence[AppProfile]):
        if len(apps) != config.num_cores:
            raise MarketConfigurationError(
                f"need exactly {config.num_cores} applications, got {len(apps)}"
            )
        self.config = config
        self.apps: List[AppProfile] = list(apps)
        power_model = DVFSPowerModel(core=config.core)
        dram = DRAMModel(channels=config.memory_channels)
        self.cores: List[CoreModel] = [
            CoreModel(app, config, power_model=power_model, dram=dram) for app in apps
        ]
        self.free = _FreeMinimums(
            cache_bytes=float(config.cache_region_bytes),
            power_watts=np.array([c.min_power_watts() for c in self.cores]),
        )

    # ------------------------------------------------------------------
    # Market-facing capacities (the "extras" beyond the free minimums)
    # ------------------------------------------------------------------

    @property
    def extra_cache_capacity(self) -> float:
        """Cache bytes left after every core's free region."""
        return float(
            self.config.l2_capacity_bytes
            - self.config.num_cores * self.config.cache_region_bytes
        )

    @property
    def extra_power_capacity(self) -> float:
        """Watts left after every core's free 800 MHz allocation."""
        return float(self.config.power_budget_watts - self.free.power_watts.sum())

    def build_problem(
        self,
        utilities: Optional[Sequence[UtilityFunction]] = None,
        convexify: bool = True,
    ) -> AllocationProblem:
        """The 2-resource allocation problem this chip presents.

        With ``utilities`` omitted, the *true* (phase-1, perfectly
        modeled) utilities are built from the analytic core models;
        pass monitor-estimated utilities for phase-2 runs.  Setting
        ``convexify=False`` keeps the raw, possibly cliffy cache
        behaviour — the Talus ablation.
        """
        if self.extra_power_capacity <= 0:
            raise MarketConfigurationError("power budget below the free minimums")
        if utilities is None:
            utilities = [
                build_true_utility(core, self.config, convexify=convexify)
                for core in self.cores
            ]
        caps = np.array(
            [extra_capacity_for(core, self.config) for core in self.cores]
        )
        return AllocationProblem(
            utilities=list(utilities),
            capacities=np.array([self.extra_cache_capacity, self.extra_power_capacity]),
            resource_names=["cache_bytes", "power_watts"],
            player_names=[app.name for app in self.apps],
            quanta=np.array(
                [float(self.config.cache_region_bytes), RAPL_QUANTUM_WATTS]
            ),
            per_player_caps=caps,
        )

    # ------------------------------------------------------------------
    # Turning market allocations back into physical operating points
    # ------------------------------------------------------------------

    def operating_points(
        self, extra_allocations: np.ndarray, temperature_c: Optional[Sequence[float]] = None
    ) -> List[OperatingPoint]:
        """Resolve per-core extras into (cache, frequency) points.

        ``extra_allocations`` is the (N, 2) matrix a mechanism returns:
        columns are extra cache bytes and extra power watts.
        """
        extras = np.asarray(extra_allocations, dtype=float)
        if extras.shape != (self.config.num_cores, 2):
            raise MarketConfigurationError(
                f"expected ({self.config.num_cores}, 2) allocations, got {extras.shape}"
            )
        points = []
        for i, core in enumerate(self.cores):
            temp = None if temperature_c is None else temperature_c[i]
            points.append(
                core.operating_point(
                    self.free.cache_bytes + extras[i, 0],
                    core.min_power_watts(temp) + extras[i, 1],
                    temperature_c=temp,
                )
            )
        return points

    def true_utilities(self, extra_allocations: np.ndarray) -> np.ndarray:
        """Ground-truth utilities of an extras allocation (for scoring)."""
        return np.array(
            [p.utility for p in self.operating_points(extra_allocations)]
        )

    def total_power(self, extra_allocations: np.ndarray) -> float:
        """Actual chip power draw at the resolved operating points."""
        return float(
            sum(p.power_watts for p in self.operating_points(extra_allocations))
        )
