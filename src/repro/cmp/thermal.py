"""HotSpot-style lumped RC thermal model.

The paper estimates run-time chip temperature with HotSpot integrated
into SESC, and makes static power exponentially dependent on it.  We
model each core (or the whole chip, depending on granularity) as a
single thermal node: a heat capacity fed by the core's power and
leaking to ambient through a thermal resistance,

    C_th * dT/dt = P - (T - T_amb) / R_th

integrated explicitly every simulation epoch.  The steady-state
temperature is ``T_amb + P * R_th``; the model is calibrated so a core
dissipating its 10 W TDP settles near the 80 C leakage reference point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ThermalNode", "ThermalModel"]


@dataclass
class ThermalNode:
    """One lumped RC node (a core, or the package)."""

    resistance_k_per_w: float = 3.5   # 10 W -> 35 K rise over ambient
    capacitance_j_per_k: float = 0.03  # ~100 ms thermal time constant
    ambient_c: float = 45.0
    temperature_c: float = field(default=70.0)

    def step(self, power_w: float, dt_s: float) -> float:
        """Advance the node by ``dt_s`` seconds under ``power_w`` input.

        Uses the exact exponential solution of the linear ODE for the
        interval (unconditionally stable for any ``dt_s``), and returns
        the new temperature.
        """
        import math

        steady = self.ambient_c + power_w * self.resistance_k_per_w
        tau = self.resistance_k_per_w * self.capacitance_j_per_k
        decay = math.exp(-dt_s / tau)
        self.temperature_c = steady + (self.temperature_c - steady) * decay
        return self.temperature_c

    def steady_state_c(self, power_w: float) -> float:
        return self.ambient_c + power_w * self.resistance_k_per_w


class ThermalModel:
    """Per-core thermal state for a whole CMP."""

    def __init__(self, num_cores: int, node_template: ThermalNode | None = None):
        if num_cores < 1:
            raise ValueError("need at least one core")
        template = node_template or ThermalNode()
        self.nodes = [
            ThermalNode(
                resistance_k_per_w=template.resistance_k_per_w,
                capacitance_j_per_k=template.capacitance_j_per_k,
                ambient_c=template.ambient_c,
                temperature_c=template.temperature_c,
            )
            for _ in range(num_cores)
        ]

    def step(self, powers_w, dt_s: float) -> list:
        """Advance every core one epoch; returns the new temperatures."""
        if len(powers_w) != len(self.nodes):
            raise ValueError("one power sample per core required")
        return [node.step(p, dt_s) for node, p in zip(self.nodes, powers_w)]

    @property
    def temperatures_c(self) -> list:
        return [node.temperature_c for node in self.nodes]
