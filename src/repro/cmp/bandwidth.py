"""Extension: memory bandwidth as a third market resource.

The paper evaluates two resources (cache, power) but the framework is
explicitly general: "as long as the resource's utility function can be
accurately modeled, and such utility function is non-decreasing,
continuous, and concave ... the results of this paper can be applied"
(Section 4.1).  Pin/DRAM bandwidth is the resource its introduction
names next to cache and power.

This module adds that third resource.  A core allocated ``b`` GB/s of
guaranteed DRAM bandwidth sees an average miss latency

    lat(b) = overhead + service / (1 - min(rho, rho_max)),
    rho    = demand(cache) / b

an M/M/1-style queueing curve: latency decreasing and convex in ``b``
(so performance is concave in it), with demand itself a function of the
cache allocation — the three resources genuinely interact.

:class:`BandwidthAwareUtility` evaluates the resulting normalized
performance over ``(extra cache, extra power, extra bandwidth)``; for
concave miss-rate curves it is concave along every axis.  Applications
with cache cliffs still need Talus on the cache axis — the utility
accepts a pre-hulled miss curve for that purpose.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..utility.base import UtilityFunction
from ..utility.convex_hull import PiecewiseLinearConcave
from .config import CMPConfig
from .core_model import CoreModel
from .dram import DRAMModel

__all__ = ["BandwidthModel", "BandwidthAwareUtility", "build_bandwidth_problem"]

#: Queueing utilization cap: latency stays finite under overload.
_RHO_MAX = 0.95


class BandwidthModel:
    """Per-core miss latency as a function of allocated bandwidth."""

    def __init__(self, dram: DRAMModel):
        self.dram = dram
        self._service_ns = dram.uncontended_latency_ns() - dram.controller_overhead_ns
        self._overhead_ns = dram.controller_overhead_ns

    def demand_gbps(self, core: CoreModel, cache_bytes: float, frequency_ghz: float) -> float:
        """Miss bandwidth the core generates at an operating point."""
        perf = core.performance_gips(cache_bytes, frequency_ghz)
        mpi = core.app.misses_per_instruction(
            min(cache_bytes, core.config.umon_max_bytes)
        )
        return perf * mpi * self.dram.line_bytes

    def latency_ns(self, demand_gbps: float, allocated_gbps: float) -> float:
        """Queueing latency at a demand/allocation ratio."""
        if allocated_gbps <= 0.0:
            rho = _RHO_MAX
        else:
            rho = min(demand_gbps / allocated_gbps, _RHO_MAX)
        return self._overhead_ns + self._service_ns / (1.0 - rho)

    @property
    def min_latency_ns(self) -> float:
        return self._overhead_ns + self._service_ns


class BandwidthAwareUtility(UtilityFunction):
    """Normalized performance over (cache, power, bandwidth) extras.

    Performance solves the latency/demand fixed point at each point:
    lower latency raises performance, which raises demand, which raises
    latency — iterated a few steps (it contracts quickly because demand
    is bounded by the frequency).

    ``hulled_miss_curve`` optionally replaces the application's raw miss
    curve on the cache axis (the Talus treatment for cliffy apps).
    """

    num_resources = 3

    def __init__(
        self,
        core: CoreModel,
        bandwidth: BandwidthModel,
        config: CMPConfig,
        free_bandwidth_gbps: float,
        hulled_miss_curve: Optional[PiecewiseLinearConcave] = None,
    ):
        self.core = core
        self.bandwidth = bandwidth
        self.config = config
        self.free_bandwidth = free_bandwidth_gbps
        self.hulled_miss_curve = hulled_miss_curve
        self._min_cache = float(config.cache_region_bytes)
        self._min_power = core.min_power_watts()
        # Standalone: all monitorable cache, max frequency, min latency.
        self._alone = self._performance(
            float(config.umon_max_bytes),
            config.core.max_frequency_ghz,
            float("inf"),
        )

    def _miss_fraction(self, cache_bytes: float) -> float:
        clamped = min(cache_bytes, float(self.config.umon_max_bytes))
        if self.hulled_miss_curve is not None:
            return float(
                min(max(1.0 - self.hulled_miss_curve.value(clamped), 0.0), 1.0)
            )
        return self.core.app.mrc.miss_fraction(clamped)

    def _performance(
        self, cache_bytes: float, frequency_ghz: float, allocated_gbps: float
    ) -> float:
        app = self.core.app
        mpi = app.apki / 1000.0 * self._miss_fraction(cache_bytes)
        latency = self.bandwidth.min_latency_ns
        perf = 0.0
        for _ in range(8):  # fixed-point: latency <-> demand
            perf = 1.0 / (app.cpi_exe / frequency_ghz + mpi * latency)
            demand = perf * mpi * self.bandwidth.dram.line_bytes
            if not np.isfinite(allocated_gbps):
                break
            new_latency = self.bandwidth.latency_ns(demand, allocated_gbps)
            if abs(new_latency - latency) < 1e-6:
                latency = new_latency
                break
            latency = 0.5 * (latency + new_latency)
        return 1.0 / (app.cpi_exe / frequency_ghz + mpi * latency)

    def value(self, allocation: Sequence[float]) -> float:
        extra_cache, extra_power, extra_bw = allocation
        cache = self._min_cache + max(extra_cache, 0.0)
        frequency = self.core.frequency_for_power(self._min_power + max(extra_power, 0.0))
        bw = self.free_bandwidth + max(extra_bw, 0.0)
        return self._performance(cache, frequency, bw) / self._alone


def build_bandwidth_problem(chip, free_bandwidth_fraction: float = 0.1):
    """A 3-resource AllocationProblem for a :class:`~repro.cmp.chip.ChipModel`.

    Resources: extra cache bytes, extra power watts, and extra DRAM
    bandwidth (GB/s) beyond a small free share per core.  Applications
    with non-concave miss curves get the Talus hull on the cache axis.
    """
    from ..core.mechanisms import AllocationProblem

    dram = chip.cores[0].dram
    bandwidth = BandwidthModel(dram)
    total_bw = dram.peak_bandwidth_gbps()
    n = chip.config.num_cores
    free_bw = free_bandwidth_fraction * total_bw / n
    extra_bw_capacity = total_bw - n * free_bw

    region = float(chip.config.cache_region_bytes)
    sizes = np.arange(1, chip.config.umon_max_regions + 1) * region
    utilities = []
    for core in chip.cores:
        hits = np.array([1.0 - core.app.mrc.miss_fraction(s) for s in sizes])
        hull = PiecewiseLinearConcave(sizes, hits)
        utilities.append(
            BandwidthAwareUtility(
                core, bandwidth, chip.config, free_bw, hulled_miss_curve=hull
            )
        )

    caps = []
    for core in chip.cores:
        caps.append(
            [
                float(chip.config.umon_max_bytes - chip.config.cache_region_bytes),
                core.max_power_watts() - core.min_power_watts(),
                extra_bw_capacity,  # no per-core bandwidth cap
            ]
        )
    return AllocationProblem(
        utilities=utilities,
        capacities=np.array(
            [chip.extra_cache_capacity, chip.extra_power_capacity, extra_bw_capacity]
        ),
        resource_names=["cache_bytes", "power_watts", "bandwidth_gbps"],
        player_names=[app.name for app in chip.apps],
        quanta=np.array([region, 0.25, total_bw / 256.0]),
        per_player_caps=np.array(caps),
    )
