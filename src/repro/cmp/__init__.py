"""The multicore substrate: applications, cache monitoring/partitioning
(UMON, Talus, Futility Scaling), DVFS power, thermal and DRAM models,
the analytic core model, and the whole-chip glue."""

from .application import (
    AppProfile,
    CliffMRC,
    FlatMRC,
    MissRateCurve,
    MixtureMRC,
    Phase,
    PowerLawMRC,
)
from .chip import ChipModel
from .config import (
    CACHE_REGION_BYTES,
    KB,
    MB,
    CMPConfig,
    CoreConfig,
    cmp_8core,
    cmp_64core,
)
from .core_model import CoreModel, OperatingPoint
from .dram import DDR3Timing, DRAMModel, ddr3_1600
from .bandwidth import BandwidthAwareUtility, BandwidthModel, build_bandwidth_problem
from .futility import FutilityScalingController
from .groups import GroupUtility, build_grouped_problem, expand_group_allocation
from .lru_cache import AddressStreamGenerator, CacheStats, SetAssociativeCache
from .monitor import RuntimeMonitor
from .power import RAPL_QUANTUM_WATTS, DVFSPowerModel
from .spec_suite import INTENDED_CLASS, SPEC_SUITE, app_by_name, apps_in_class, spec_suite
from .talus import ShadowPartitionPlan, TalusController
from .thermal import ThermalModel, ThermalNode
from .umon import UMONShadowTags
from .utility_builder import (
    build_true_utility,
    build_utility_from_miss_curve,
    convexify_grid,
    extra_capacity_for,
    sample_utility_grid,
)

__all__ = [
    "KB",
    "MB",
    "CACHE_REGION_BYTES",
    "CMPConfig",
    "CoreConfig",
    "cmp_8core",
    "cmp_64core",
    "MissRateCurve",
    "PowerLawMRC",
    "CliffMRC",
    "FlatMRC",
    "MixtureMRC",
    "Phase",
    "AppProfile",
    "SPEC_SUITE",
    "INTENDED_CLASS",
    "spec_suite",
    "app_by_name",
    "apps_in_class",
    "CoreModel",
    "OperatingPoint",
    "DDR3Timing",
    "DRAMModel",
    "ddr3_1600",
    "DVFSPowerModel",
    "RAPL_QUANTUM_WATTS",
    "ThermalNode",
    "ThermalModel",
    "UMONShadowTags",
    "TalusController",
    "ShadowPartitionPlan",
    "FutilityScalingController",
    "BandwidthModel",
    "BandwidthAwareUtility",
    "build_bandwidth_problem",
    "GroupUtility",
    "build_grouped_problem",
    "expand_group_allocation",
    "SetAssociativeCache",
    "AddressStreamGenerator",
    "CacheStats",
    "RuntimeMonitor",
    "ChipModel",
    "build_true_utility",
    "build_utility_from_miss_curve",
    "convexify_grid",
    "sample_utility_grid",
    "extra_capacity_for",
]
