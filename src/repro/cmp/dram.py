"""DDR3-1600 main-memory latency model (Micron MT41J256M8-style timing).

The paper "faithfully models Micron's DDR3-1600 DRAM timing".  The
allocation layer only needs the average round-trip latency an L2 miss
observes, so we model that analytically from the standard timing
parameters: a row-buffer hit costs CAS latency; a row-buffer miss adds
precharge and activate; closed-bank access skips the precharge.  A
simple M/M/c-flavoured queueing term adds channel contention as the
aggregate miss bandwidth approaches the channels' capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DDR3Timing", "DRAMModel", "ddr3_1600"]


@dataclass(frozen=True)
class DDR3Timing:
    """JEDEC-style timing parameters, in memory-clock cycles.

    ``clock_mhz`` is the DDR I/O clock (800 MHz for DDR3-1600, i.e.
    1600 MT/s).  Latency parameters follow the usual meanings: ``cl``
    (CAS), ``trcd`` (RAS-to-CAS), ``trp`` (precharge), ``trc`` (row
    cycle), and ``burst_cycles`` the cycles to stream one cache line.
    """

    clock_mhz: float = 800.0
    cl: int = 11
    trcd: int = 11
    trp: int = 11
    trc: int = 39
    burst_cycles: int = 4

    @property
    def cycle_ns(self) -> float:
        return 1000.0 / self.clock_mhz

    def row_hit_ns(self) -> float:
        """Row-buffer hit: CAS latency plus the data burst."""
        return (self.cl + self.burst_cycles) * self.cycle_ns

    def row_miss_ns(self) -> float:
        """Row-buffer conflict: precharge + activate + CAS + burst."""
        return (self.trp + self.trcd + self.cl + self.burst_cycles) * self.cycle_ns

    def row_closed_ns(self) -> float:
        """Closed-page access: activate + CAS + burst."""
        return (self.trcd + self.cl + self.burst_cycles) * self.cycle_ns


def ddr3_1600() -> DDR3Timing:
    """The paper's DDR3-1600 device (CL-tRCD-tRP = 11-11-11)."""
    return DDR3Timing()


class DRAMModel:
    """Average L2-miss latency under a row-buffer-locality mix.

    Parameters
    ----------
    timing:
        Device timing (defaults to DDR3-1600).
    channels:
        Number of memory controllers/channels (2 or 16 in Table 1).
    row_hit_fraction / row_closed_fraction:
        Access mix; the remainder are row conflicts.
    controller_overhead_ns:
        Fixed on-chip path cost (NoC + controller queues at idle).
    line_bytes:
        Cache-line transfer size, for bandwidth accounting.
    """

    def __init__(
        self,
        timing: DDR3Timing | None = None,
        channels: int = 2,
        row_hit_fraction: float = 0.55,
        row_closed_fraction: float = 0.15,
        controller_overhead_ns: float = 18.0,
        line_bytes: int = 64,
    ):
        if channels < 1:
            raise ValueError("need at least one memory channel")
        if not 0.0 <= row_hit_fraction + row_closed_fraction <= 1.0:
            raise ValueError("row hit/closed fractions must sum to <= 1")
        self.timing = timing or ddr3_1600()
        self.channels = channels
        self.row_hit_fraction = row_hit_fraction
        self.row_closed_fraction = row_closed_fraction
        self.controller_overhead_ns = controller_overhead_ns
        self.line_bytes = line_bytes

    def uncontended_latency_ns(self) -> float:
        """Average device latency with empty queues.

        This is the latency the per-core utility monitors assume, since
        a single core cannot observe global channel load.
        """
        t = self.timing
        conflict_fraction = 1.0 - self.row_hit_fraction - self.row_closed_fraction
        device = (
            self.row_hit_fraction * t.row_hit_ns()
            + self.row_closed_fraction * t.row_closed_ns()
            + conflict_fraction * t.row_miss_ns()
        )
        return device + self.controller_overhead_ns

    def peak_bandwidth_gbps(self) -> float:
        """Aggregate channel bandwidth in GB/s (8 bytes per I/O clock edge x2)."""
        per_channel = self.timing.clock_mhz * 1e6 * 2 * 8 / 1e9
        return per_channel * self.channels

    def latency_ns(self, miss_bandwidth_gbps: float = 0.0) -> float:
        """Average miss latency at a given aggregate miss bandwidth.

        Contention follows the standard ``1 / (1 - utilization)``
        queueing amplification on the device service time, capped at 90%
        utilization so latency stays finite even for overload inputs.
        """
        base = self.uncontended_latency_ns()
        if miss_bandwidth_gbps <= 0.0:
            return base
        utilization = min(miss_bandwidth_gbps / self.peak_bandwidth_gbps(), 0.9)
        service = base - self.controller_overhead_ns
        return self.controller_overhead_ns + service / (1.0 - utilization)
