"""Chip-multiprocessor configuration (Table 1 of the paper).

Two reference configurations are provided: the 8-core and the 64-core
CMP.  Power budget is 10 W per core; shared L2 capacity is 512 kB per
core, partitioned in 128 kB *cache regions*; each core may run between
0.8 and 4.0 GHz at 0.8-1.2 V.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "KB",
    "MB",
    "CACHE_REGION_BYTES",
    "CoreConfig",
    "CMPConfig",
    "cmp_8core",
    "cmp_64core",
]

KB = 1024
MB = 1024 * KB

#: Futility-Scaling allocation granularity (Section 4.1.1): one region.
CACHE_REGION_BYTES = 128 * KB


@dataclass(frozen=True)
class CoreConfig:
    """Per-core microarchitectural parameters (Table 1, lower half).

    Most of these describe the 4-way out-of-order core the paper
    simulates in SESC.  The analytic core model consumes the frequency
    and voltage ranges directly; the pipeline parameters inform the
    plausible range of compute CPIs in the application suite and are
    validated by the configuration tests.
    """

    min_frequency_ghz: float = 0.8
    max_frequency_ghz: float = 4.0
    min_voltage: float = 0.8
    max_voltage: float = 1.2
    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_entries: int = 128
    int_registers: int = 160
    fp_registers: int = 160
    ld_queue_entries: int = 32
    st_queue_entries: int = 32
    issue_queue_entries: int = 32
    max_unresolved_branches: int = 24
    branch_mispredict_penalty_cycles: int = 9
    ras_entries: int = 32
    btb_entries: int = 512
    l1_size_bytes: int = 32 * KB
    l1_block_bytes: int = 32
    il1_latency_cycles: int = 2
    dl1_latency_cycles: int = 3
    l1_mshr_entries: int = 16


@dataclass(frozen=True)
class CMPConfig:
    """Whole-chip parameters (Table 1, upper half)."""

    num_cores: int
    power_budget_watts: float
    l2_capacity_bytes: int
    l2_associativity: int
    memory_channels: int
    core: CoreConfig = field(default_factory=CoreConfig)
    cache_region_bytes: int = CACHE_REGION_BYTES
    #: UMON shadow tags cover up to 16 regions (2 MB) per core.
    umon_max_regions: int = 16
    #: UMON dynamic sampling rate (1 of every 32 sets is shadowed).
    umon_sampling_rate: int = 32
    #: Re-allocation period (Section 4.3): the market runs every 1 ms.
    allocation_period_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.l2_capacity_bytes % self.cache_region_bytes != 0:
            raise ValueError("L2 capacity must be a whole number of cache regions")

    @property
    def total_cache_regions(self) -> int:
        return self.l2_capacity_bytes // self.cache_region_bytes

    @property
    def umon_max_bytes(self) -> int:
        """Largest per-core partition the shadow tags can model (2 MB)."""
        return self.umon_max_regions * self.cache_region_bytes

    @property
    def power_per_core_watts(self) -> float:
        return self.power_budget_watts / self.num_cores


def cmp_8core() -> CMPConfig:
    """The paper's 8-core configuration (80 W, 4 MB L2, 16-way)."""
    return CMPConfig(
        num_cores=8,
        power_budget_watts=80.0,
        l2_capacity_bytes=4 * MB,
        l2_associativity=16,
        memory_channels=2,
    )


def cmp_64core() -> CMPConfig:
    """The paper's 64-core configuration (640 W, 32 MB L2, 32-way)."""
    return CMPConfig(
        num_cores=64,
        power_budget_watts=640.0,
        l2_capacity_bytes=32 * MB,
        l2_associativity=32,
        memory_channels=16,
    )
