"""DVFS power model (Wattch/Cacti-flavoured first-order physics).

Each core runs at a frequency between 0.8 and 4.0 GHz; voltage scales
linearly with frequency between 0.8 and 1.2 V (Table 1).  Dynamic power
follows ``P_dyn = activity * C_eff * V(f)^2 * f`` and static power is a
temperature-dependent fraction of a voltage-dependent leakage base,
following Intel's Sandy Bridge power-management approximation the paper
adopts.  The model follows the paper's 65 nm assumptions: a fully active
core at 4 GHz draws well above its 10 W TDP share, so the chip-level
power budget is a genuinely contended resource.

The market treats *power* (watts) as the resource; performance comes
from the frequency the purchased watts can sustain, so this module also
provides the inverse mapping ``frequency_for_power``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import CoreConfig

__all__ = ["DVFSPowerModel", "RAPL_QUANTUM_WATTS"]

#: Intel RAPL's power-limit granularity (Section 4.1.1): 0.125 W.
RAPL_QUANTUM_WATTS = 0.125


@dataclass(frozen=True)
class DVFSPowerModel:
    """Per-core power as a function of frequency, activity and temperature.

    Parameters
    ----------
    core:
        Frequency/voltage envelope.
    effective_capacitance:
        ``C_eff`` in watts per (V^2 * GHz); 4.0 puts a fully active 4 GHz
        core at ~23 W dynamic (the paper's 65 nm power model: the TDP
        share of 10 W per core cannot sustain peak frequency, which is
        what makes power a genuinely contended resource).
    leakage_coefficient:
        Leakage base in watts per volt at the reference temperature.
    leakage_temp_slope_k:
        Exponential temperature dependence scale (leakage doubles every
        ``ln(2) * slope`` kelvin), per the Sandy-Bridge-style model.
    reference_temperature_c:
        Temperature at which the leakage coefficient is specified.
    """

    core: CoreConfig = CoreConfig()
    effective_capacitance: float = 4.0
    leakage_coefficient: float = 1.2
    leakage_temp_slope_k: float = 30.0
    reference_temperature_c: float = 80.0

    def voltage(self, frequency_ghz: float) -> float:
        """Linear V-f mapping within the DVFS envelope (clamped outside)."""
        f = self._clamp_frequency(frequency_ghz)
        span = self.core.max_frequency_ghz - self.core.min_frequency_ghz
        t = (f - self.core.min_frequency_ghz) / span
        return self.core.min_voltage + t * (self.core.max_voltage - self.core.min_voltage)

    def dynamic_power(self, frequency_ghz: float, activity: float = 1.0) -> float:
        """``activity * C_eff * V^2 * f`` in watts."""
        f = self._clamp_frequency(frequency_ghz)
        v = self.voltage(f)
        return activity * self.effective_capacitance * v * v * f

    def static_power(self, frequency_ghz: float, temperature_c: float | None = None) -> float:
        """Voltage- and temperature-dependent leakage in watts."""
        if temperature_c is None:
            temperature_c = self.reference_temperature_c
        v = self.voltage(frequency_ghz)
        scale = _exp_clamped(
            (temperature_c - self.reference_temperature_c) / self.leakage_temp_slope_k
        )
        return self.leakage_coefficient * v * scale

    def total_power(
        self,
        frequency_ghz: float,
        activity: float = 1.0,
        temperature_c: float | None = None,
    ) -> float:
        """Dynamic plus static power at an operating point."""
        return self.dynamic_power(frequency_ghz, activity) + self.static_power(
            frequency_ghz, temperature_c
        )

    def min_power(self, activity: float = 1.0, temperature_c: float | None = None) -> float:
        """Power of the free minimum-frequency allocation (800 MHz)."""
        return self.total_power(self.core.min_frequency_ghz, activity, temperature_c)

    def max_power(self, activity: float = 1.0, temperature_c: float | None = None) -> float:
        """Power at the top of the DVFS envelope (4 GHz)."""
        return self.total_power(self.core.max_frequency_ghz, activity, temperature_c)

    def frequency_for_power(
        self,
        watts: float,
        activity: float = 1.0,
        temperature_c: float | None = None,
    ) -> float:
        """Highest sustainable frequency within a power cap (inverse model).

        Total power is strictly increasing in frequency, so a bisection
        on the envelope suffices.  Caps below the minimum-frequency power
        return the minimum frequency (the free allocation guarantees it);
        caps above the 4 GHz power return 4 GHz.
        """
        lo = self.core.min_frequency_ghz
        hi = self.core.max_frequency_ghz
        if watts <= self.total_power(lo, activity, temperature_c):
            return lo
        if watts >= self.total_power(hi, activity, temperature_c):
            return hi
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.total_power(mid, activity, temperature_c) <= watts:
                lo = mid
            else:
                hi = mid
        return lo

    def _clamp_frequency(self, frequency_ghz: float) -> float:
        return min(max(frequency_ghz, self.core.min_frequency_ghz), self.core.max_frequency_ghz)


def _exp_clamped(x: float) -> float:
    """``exp(x)`` with the argument clamped to keep thermals numerically sane."""
    import math

    return math.exp(min(max(x, -20.0), 20.0))
