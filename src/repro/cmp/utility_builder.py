"""Building market utilities from the multicore performance models.

The market operates on *extra* resources beyond each core's free
minimum (one 128 kB cache region, and the power to run at 800 MHz).
This module turns a :class:`~repro.cmp.core_model.CoreModel` — or a
runtime-monitored estimate of one — into a concave, continuous
2-resource utility over ``(extra cache bytes, extra power watts)``:

1. sample normalized performance on a (cache x power) grid;
2. convexify along the cache axis (Talus) and, if the sampled power
   response ever dips from concavity, along the power axis as well;
3. wrap the result in bilinear interpolation.

The convexification passes are iterated until the grid is concave along
both axes, mirroring the paper's "derive the convex hull of cache and
power" step in Section 6.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..utility.convex_hull import upper_convex_hull
from ..utility.tabular import GridUtility2D
from .config import CMPConfig
from .core_model import CoreModel

__all__ = [
    "POWER_GRID_POINTS",
    "sample_utility_grid",
    "convexify_grid",
    "build_true_utility",
    "build_utility_from_miss_curve",
    "extra_capacity_for",
]

#: Grid resolution along the power axis (cache is sampled per region).
POWER_GRID_POINTS = 17


def extra_capacity_for(core: CoreModel, config: CMPConfig) -> tuple:
    """Per-core caps on purchasable extras: cache bytes and power watts.

    Cache beyond 2 MB total (UMON's limit, footnote 3) and power beyond
    the 4 GHz draw yield no utility, so these are the natural caps.
    """
    cache_cap = float(config.umon_max_bytes - config.cache_region_bytes)
    power_cap = core.max_power_watts() - core.min_power_watts()
    return cache_cap, power_cap


def sample_utility_grid(
    value_at: Callable[[float, float], float],
    cache_cap_bytes: float,
    power_cap_watts: float,
    region_bytes: int,
    power_points: int = POWER_GRID_POINTS,
) -> tuple:
    """Sample ``value_at(extra_cache, extra_power)`` on the standard grid.

    Cache is sampled at whole-region boundaries from 0 to the cap;
    power uniformly from 0 to the cap.
    """
    num_regions = int(round(cache_cap_bytes / region_bytes))
    cache_axis = np.arange(num_regions + 1, dtype=float) * region_bytes
    power_axis = np.linspace(0.0, power_cap_watts, power_points)
    values = np.empty((cache_axis.size, power_axis.size))
    for i, c in enumerate(cache_axis):
        for j, p in enumerate(power_axis):
            values[i, j] = value_at(c, p)
    return cache_axis, power_axis, values


def convexify_grid(
    cache_axis: np.ndarray,
    power_axis: np.ndarray,
    values: np.ndarray,
    max_passes: int = 6,
) -> np.ndarray:
    """Hull the grid along both axes until concave along each.

    Each pass replaces every cache column (power fixed) and every power
    row (cache fixed) with its upper convex hull evaluated back on the
    grid.  Hulling can only raise values, and values are bounded by the
    global maximum, so the iteration converges; in practice two passes
    suffice.
    """
    out = values.copy()
    for _ in range(max_passes):
        before = out.copy()
        for j in range(power_axis.size):
            hx, hy = upper_convex_hull(cache_axis, out[:, j])
            out[:, j] = np.interp(cache_axis, hx, hy)
        for i in range(cache_axis.size):
            hx, hy = upper_convex_hull(power_axis, out[i, :])
            out[i, :] = np.interp(power_axis, hx, hy)
        if np.allclose(before, out, rtol=0.0, atol=1e-12):
            break
    return out


def build_true_utility(
    core: CoreModel,
    config: CMPConfig,
    convexify: bool = True,
    power_points: int = POWER_GRID_POINTS,
) -> GridUtility2D:
    """The "perfectly modeled" utility of phase-1 (Section 6).

    Evaluates the analytic core model exactly and (by default) applies
    the Talus-style convexification, producing the concave continuous
    utility over extras that the theory requires.

    The grid is evaluated in vectorized form: frequencies are resolved
    once per power-axis point and the compute/memory decomposition is
    separable, so the (cache x power) surface is an outer combination of
    two 1-D arrays.
    """
    cache_cap, power_cap = extra_capacity_for(core, config)
    min_cache = float(config.cache_region_bytes)
    min_power = core.min_power_watts()
    region = config.cache_region_bytes

    num_regions = int(round(cache_cap / region))
    cache_axis = np.arange(num_regions + 1, dtype=float) * region
    power_axis = np.linspace(0.0, power_cap, power_points)

    frequencies = np.array(
        [core.frequency_for_power(min_power + p) for p in power_axis]
    )
    monitor_cap = float(config.umon_max_bytes)
    memory_ns = np.array(
        [
            core.app.misses_per_instruction(min(min_cache + c, monitor_cap))
            * core.memory_latency_ns
            for c in cache_axis
        ]
    )
    compute_ns = core.app.cpi_exe / frequencies
    # perf[i, j] = 1 / (compute(f_j) + memory(s_i)); utility normalizes.
    values = 1.0 / (compute_ns[None, :] + memory_ns[:, None])
    values /= core.alone_performance_gips

    if convexify:
        values = convexify_grid(cache_axis, power_axis, values)
    return GridUtility2D(cache_axis, power_axis, values)


def build_utility_from_miss_curve(
    core: CoreModel,
    config: CMPConfig,
    miss_curve: np.ndarray,
    cpi_estimate: Optional[float] = None,
    convexify: bool = True,
    power_points: int = POWER_GRID_POINTS,
) -> GridUtility2D:
    """Phase-2 utility from a *monitored* miss curve (UMON output).

    ``miss_curve[k]`` is the estimated miss fraction with ``k+1``
    regions.  The compute-phase CPI may also be an estimate; the power
    model and DRAM latency are shared with the true model (the paper
    estimates them with Isci-style counters, whose error is small
    relative to MRC sampling noise).
    """
    cache_cap, power_cap = extra_capacity_for(core, config)
    min_power = core.min_power_watts()
    cpi = core.app.cpi_exe if cpi_estimate is None else cpi_estimate
    apki = core.app.apki
    latency = core.memory_latency_ns
    region = config.cache_region_bytes
    max_regions = miss_curve.size

    num_regions = int(round(cache_cap / region))
    cache_axis = np.arange(num_regions + 1, dtype=float) * region
    power_axis = np.linspace(0.0, power_cap, power_points)

    region_indices = np.clip((region + cache_axis) / region, 1.0, float(max_regions))
    miss = np.interp(region_indices, np.arange(1, max_regions + 1), miss_curve)
    memory_ns = apki / 1000.0 * miss * latency
    frequencies = np.array(
        [core.frequency_for_power(min_power + p) for p in power_axis]
    )
    compute_ns = cpi / frequencies
    values = 1.0 / (compute_ns[None, :] + memory_ns[:, None])

    # Normalize by the *estimated* standalone performance (the paper's
    # monitors never see the true one).
    alone = 1.0 / (
        cpi / config.core.max_frequency_ghz
        + apki / 1000.0 * miss_curve[-1] * latency
    )
    values /= alone

    if convexify:
        values = convexify_grid(cache_axis, power_axis, values)
    return GridUtility2D(cache_axis, power_axis, values)
