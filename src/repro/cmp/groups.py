"""Application-granularity allocation (Section 5's alternative).

The paper's evaluation allocates per core, but Section 5 sketches the
alternative: "allocate resources at the granularity of applications.
All the threads of one application may share the same resources, which
is a reasonable assumption, because the demand of the threads tend to
be similar across threads of a parallel application."

This module implements that: cores are partitioned into *groups* (one
per multithreaded application); each group is a single market player
whose bundle is divided evenly among its member cores.  The group's
utility is the sum of its members' utilities at the per-member share —
a composition of concave functions with a linear map, so concavity is
preserved and all of the paper's theory continues to apply with N =
number of applications instead of number of cores.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.mechanisms import AllocationProblem
from ..exceptions import MarketConfigurationError
from ..utility.base import UtilityFunction
from .chip import ChipModel
from .power import RAPL_QUANTUM_WATTS
from .utility_builder import build_true_utility, extra_capacity_for

__all__ = ["GroupUtility", "build_grouped_problem", "expand_group_allocation"]


class GroupUtility(UtilityFunction):
    """Sum of member utilities at an even per-member share of the bundle."""

    def __init__(self, member_utilities: Sequence[UtilityFunction]):
        if not member_utilities:
            raise MarketConfigurationError("a group needs at least one member")
        dims = {u.num_resources for u in member_utilities}
        if len(dims) != 1:
            raise MarketConfigurationError("members must span the same resources")
        self.members = list(member_utilities)
        self.num_resources = self.members[0].num_resources

    def value(self, allocation) -> float:
        share = np.asarray(allocation, dtype=float) / len(self.members)
        return float(sum(u.value(share) for u in self.members))

    def gradient(self, allocation) -> np.ndarray:
        share = np.asarray(allocation, dtype=float) / len(self.members)
        # d/dR sum_m U_m(R/k) = (1/k) * sum_m grad U_m(R/k); with k
        # members the 1/k and the k-fold sum of identical-ish members
        # roughly cancel.
        total = np.zeros(self.num_resources)
        for u in self.members:
            total += np.asarray(u.gradient(share), dtype=float)
        return total / len(self.members)


def build_grouped_problem(
    chip: ChipModel,
    groups: Sequence[int],
    convexify: bool = True,
) -> AllocationProblem:
    """An AllocationProblem with one player per core *group*.

    ``groups[i]`` is the group id of core ``i``; ids must form a
    contiguous range starting at 0.  Resource capacities are unchanged
    (the same chip), but budgets/fairness now apply per application.
    """
    groups = list(groups)
    if len(groups) != chip.config.num_cores:
        raise MarketConfigurationError("one group id per core required")
    num_groups = max(groups) + 1
    if sorted(set(groups)) != list(range(num_groups)):
        raise MarketConfigurationError("group ids must be contiguous from 0")

    member_utilities: List[List[UtilityFunction]] = [[] for _ in range(num_groups)]
    member_caps: List[List[np.ndarray]] = [[] for _ in range(num_groups)]
    member_names: List[List[str]] = [[] for _ in range(num_groups)]
    for i, core in enumerate(chip.cores):
        g = groups[i]
        member_utilities[g].append(
            build_true_utility(core, chip.config, convexify=convexify)
        )
        member_caps[g].append(np.array(extra_capacity_for(core, chip.config)))
        member_names[g].append(core.app.name)

    utilities = [GroupUtility(m) for m in member_utilities]
    # A group's cap is the sum of its members' caps (even division means
    # each member is individually capped).
    caps = np.array([np.sum(m, axis=0) for m in member_caps])
    names = []
    for members in member_names:
        if len(members) == 1:
            names.append(members[0])
        elif len(set(members)) == 1:
            names.append(f"{members[0]}x{len(members)}")
        else:
            names.append("+".join(members))
    return AllocationProblem(
        utilities=utilities,
        capacities=np.array([chip.extra_cache_capacity, chip.extra_power_capacity]),
        resource_names=["cache_bytes", "power_watts"],
        player_names=names,
        quanta=np.array([float(chip.config.cache_region_bytes), RAPL_QUANTUM_WATTS]),
        per_player_caps=caps,
    )


def expand_group_allocation(
    allocations: np.ndarray, groups: Sequence[int]
) -> np.ndarray:
    """Per-core extras from a per-group allocation (even division)."""
    groups = list(groups)
    counts = np.bincount(groups)
    out = np.empty((len(groups), allocations.shape[1]))
    for i, g in enumerate(groups):
        out[i] = allocations[g] / counts[g]
    return out
