"""The 24-application SPEC 2000/2006-like suite (Section 5).

Each entry is a parametric :class:`~repro.cmp.application.AppProfile`
whose miss-rate curve, compute CPI, memory intensity and power activity
are chosen to land the application in its intended sensitivity class:

* **C** — cache-sensitive: large in-range working sets, memory-bound
  until the working set fits (*mcf*'s 1.5 MB cliff is modeled directly
  from Figure 2).
* **P** — power(frequency)-sensitive: compute-bound, tiny L2 footprint.
* **B** — both-sensitive: moderate working sets and a balanced
  compute/memory mix.
* **N** — insensitive: streaming behaviour whose misses no realistic
  partition removes and whose memory-boundedness blunts frequency.

The class labels here are *design intents*; the experiment pipeline
re-derives classes by profiling (``repro.workloads.classification``),
exactly as the paper classifies by profiling, and the tests assert the
two agree.
"""

from __future__ import annotations

from typing import Dict, List

from .application import AppProfile, CliffMRC, FlatMRC, MixtureMRC, Phase, PowerLawMRC
from .config import KB, MB

__all__ = ["SPEC_SUITE", "INTENDED_CLASS", "spec_suite", "app_by_name", "apps_in_class"]


def _cliff(ceiling, floor, ws_kb, sharpness=14.0):
    return CliffMRC(ceiling_value=ceiling, floor_value=floor, ws_bytes=ws_kb * KB, sharpness=sharpness)


def _plaw(ceiling, floor, s_half_kb, gamma=1.0):
    return PowerLawMRC(ceiling_value=ceiling, floor_value=floor, s_half_bytes=s_half_kb * KB, gamma=gamma)


def _phases(*specs) -> tuple:
    return tuple(Phase(duration_ms=d, apki_scale=a, cpi_scale=c, activity_scale=w) for d, a, c, w in specs)


# name -> (class, profile).  APKI is L2 accesses per kilo-instruction.
_SUITE_SPEC: Dict[str, tuple] = {
    # ---- Cache-sensitive (C): deep MRC drops inside 128 kB..2 MB ----
    "mcf": ("C", AppProfile(
        name="mcf", suite="spec2000", cpi_exe=0.90, apki=35.0,
        mrc=_cliff(0.95, 0.03, ws_kb=1536, sharpness=18.0), activity=0.70,
        phases=_phases((4.0, 1.0, 1.0, 1.0), (2.0, 1.2, 0.9, 1.0)))),
    "vpr": ("C", AppProfile(
        name="vpr", suite="spec2000", cpi_exe=0.52, apki=24.0,
        mrc=_plaw(0.85, 0.05, s_half_kb=384, gamma=1.3), activity=0.75,
        phases=_phases((3.0, 1.0, 1.0, 1.0), (3.0, 0.8, 1.1, 0.95)))),
    "art": ("C", AppProfile(
        name="art", suite="spec2000", cpi_exe=0.80, apki=30.0,
        mrc=_cliff(0.90, 0.05, ws_kb=896, sharpness=10.0), activity=0.70)),
    "twolf": ("C", AppProfile(
        name="twolf", suite="spec2000", cpi_exe=0.50, apki=22.0,
        mrc=_plaw(0.90, 0.06, s_half_kb=256, gamma=1.5), activity=0.72)),
    "soplex": ("C", AppProfile(
        name="soplex", suite="spec2006", cpi_exe=0.85, apki=26.0,
        mrc=MixtureMRC(
            components=(_cliff(0.9, 0.1, ws_kb=640, sharpness=9.0),
                        _plaw(0.9, 0.05, s_half_kb=512)),
            weights=(0.6, 0.4)), activity=0.72)),
    "omnetpp": ("C", AppProfile(
        name="omnetpp", suite="spec2006", cpi_exe=0.58, apki=26.0,
        mrc=_plaw(0.88, 0.08, s_half_kb=448, gamma=1.2), activity=0.74)),

    # ---- Power-sensitive (P): compute-bound, tiny footprints ----
    "sixtrack": ("P", AppProfile(
        name="sixtrack", suite="spec2000", cpi_exe=0.45, apki=0.8,
        mrc=_plaw(0.30, 0.05, s_half_kb=48), activity=1.00)),
    "hmmer": ("P", AppProfile(
        name="hmmer", suite="spec2006", cpi_exe=0.50, apki=1.2,
        mrc=_plaw(0.25, 0.04, s_half_kb=64), activity=0.98,
        phases=_phases((5.0, 1.0, 1.0, 1.0), (1.0, 1.5, 1.05, 0.9)))),
    "povray": ("P", AppProfile(
        name="povray", suite="spec2006", cpi_exe=0.55, apki=0.6,
        mrc=FlatMRC(0.10), activity=1.05)),
    "namd": ("P", AppProfile(
        name="namd", suite="spec2006", cpi_exe=0.48, apki=0.9,
        mrc=_plaw(0.20, 0.05, s_half_kb=96), activity=1.02)),
    "gromacs": ("P", AppProfile(
        name="gromacs", suite="spec2006", cpi_exe=0.52, apki=1.0,
        mrc=_plaw(0.22, 0.06, s_half_kb=80), activity=0.97)),
    "calculix": ("P", AppProfile(
        name="calculix", suite="spec2006", cpi_exe=0.47, apki=0.7,
        mrc=FlatMRC(0.08), activity=1.00)),

    # ---- Both-sensitive (B): moderate working sets, balanced mix ----
    "swim": ("B", AppProfile(
        name="swim", suite="spec2000", cpi_exe=0.60, apki=14.0,
        mrc=_plaw(0.78, 0.07, s_half_kb=176, gamma=1.5), activity=0.90,
        phases=_phases((4.0, 1.0, 1.0, 1.0), (4.0, 1.1, 0.95, 1.0)))),
    "apsi": ("B", AppProfile(
        name="apsi", suite="spec2000", cpi_exe=0.80, apki=10.0,
        mrc=_cliff(0.72, 0.08, ws_kb=512, sharpness=7.0), activity=0.92)),
    "equake": ("B", AppProfile(
        name="equake", suite="spec2000", cpi_exe=0.66, apki=14.0,
        mrc=_plaw(0.72, 0.12, s_half_kb=320, gamma=1.0), activity=0.88)),
    "ammp": ("B", AppProfile(
        name="ammp", suite="spec2000", cpi_exe=0.56, apki=10.0,
        mrc=_cliff(0.60, 0.12, ws_kb=384, sharpness=6.0), activity=0.93)),
    "milc": ("B", AppProfile(
        name="milc", suite="spec2006", cpi_exe=0.70, apki=15.0,
        mrc=_plaw(0.72, 0.15, s_half_kb=448, gamma=1.0), activity=0.87)),
    "astar": ("B", AppProfile(
        name="astar", suite="spec2006", cpi_exe=0.68, apki=12.0,
        mrc=MixtureMRC(
            components=(_plaw(0.72, 0.12, s_half_kb=288),
                        _cliff(0.72, 0.12, ws_kb=1024, sharpness=8.0)),
            weights=(0.75, 0.25)), activity=0.90)),

    # ---- Insensitive (N): streaming, memory-bound everywhere ----
    "libquantum": ("N", AppProfile(
        name="libquantum", suite="spec2006", cpi_exe=0.42, apki=26.0,
        mrc=FlatMRC(0.80), activity=0.50)),
    "lbm": ("N", AppProfile(
        name="lbm", suite="spec2006", cpi_exe=0.40, apki=28.0,
        mrc=FlatMRC(0.85), activity=0.48)),
    "gcc": ("N", AppProfile(
        name="gcc", suite="spec2000", cpi_exe=0.44, apki=24.0,
        mrc=_plaw(0.80, 0.72, s_half_kb=512), activity=0.52)),
    "bzip2": ("N", AppProfile(
        name="bzip2", suite="spec2000", cpi_exe=0.41, apki=25.0,
        mrc=_plaw(0.78, 0.70, s_half_kb=640), activity=0.50)),
    "sphinx3": ("N", AppProfile(
        name="sphinx3", suite="spec2006", cpi_exe=0.43, apki=27.0,
        mrc=FlatMRC(0.75), activity=0.49)),
    "lucas": ("N", AppProfile(
        name="lucas", suite="spec2000", cpi_exe=0.39, apki=29.0,
        mrc=FlatMRC(0.82), activity=0.47)),
}

#: The full application list, in a stable order.
SPEC_SUITE: List[AppProfile] = [profile for _, profile in _SUITE_SPEC.values()]

#: Design-intent class of every application.
INTENDED_CLASS: Dict[str, str] = {name: cls for name, (cls, _) in _SUITE_SPEC.items()}


def spec_suite() -> List[AppProfile]:
    """A fresh list of the 24 application profiles."""
    return list(SPEC_SUITE)


def app_by_name(name: str) -> AppProfile:
    """Look an application up by its SPEC name."""
    try:
        return _SUITE_SPEC[name][1]
    except KeyError:
        raise KeyError(f"unknown application {name!r}; have {sorted(_SUITE_SPEC)}") from None


def apps_in_class(cls: str) -> List[AppProfile]:
    """All applications whose *intended* class is ``cls`` (C/P/B/N)."""
    return [profile for name, (c, profile) in _SUITE_SPEC.items() if c == cls]
