"""Cold-vs-warm equilibrium benchmark, as a plain script.

Runs :func:`repro.analysis.run_warmstart_bench` (the same measurement as
``pytest benchmarks/test_warmstart.py``) and writes the result to
``BENCH_warmstart.json`` at the repository root.

Usage::

    python scripts/bench_warmstart.py            # default 8-core scale
    python scripts/bench_warmstart.py --full     # 64-core Fig-5 scale
    python scripts/bench_warmstart.py --check    # CI smoke: exit 1 when
                                                 # warm fails to beat cold

``--check`` verifies the two headline claims: warm-started epochs use
strictly fewer total equilibrium iterations than cold starts, and the
warm restart matches the cold equilibrium on the static reference
problem within the paper's 1% price tolerance.
"""

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import run_warmstart_bench  # noqa: E402
from repro.cmp import cmp_8core, cmp_64core  # noqa: E402
from repro.sim import SimulationConfig  # noqa: E402

FIG5_CATEGORIES = ("CPBN", "CCPP", "CPBB", "BBNN", "BBPN", "BBCN")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true", help="64-core, all Fig-5 categories, 15 ms"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless warm beats cold (CI smoke gate)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_warmstart.json",
        help="where to write the JSON (default: repo root)",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    if args.full:
        data = run_warmstart_bench(
            config=cmp_64core(),
            categories=FIG5_CATEGORIES,
            sim_config=SimulationConfig(duration_ms=15.0, seed=2016),
        )
    else:
        data = run_warmstart_bench()
    elapsed = time.time() - t0

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(data, indent=2) + "\n")
    reference, overall = data["reference"], data["overall"]
    print(f"warm-start bench finished in {elapsed:.1f}s -> {args.output}")
    print(
        f"reference {reference['bundle']}: cold {reference['cold_iterations']} it, "
        f"warm {reference['warm_iterations']} it, "
        f"price divergence {reference['max_price_divergence']:.4f}"
    )
    for name, m in data["mechanisms"].items():
        print(
            f"  {name:12s} iterations {m['cold_iterations']:4d} -> "
            f"{m['warm_iterations']:4d} ({m['iteration_savings']:.0%} saved), "
            f"wall-clock x{m['wallclock_speedup']:.2f}, "
            f"alloc divergence max {m['max_divergence']:.4f}"
        )
    print(
        f"overall: {overall['cold_iterations']} -> {overall['warm_iterations']} "
        f"iterations ({overall['iteration_savings']:.0%} saved)"
    )

    if args.check:
        failures = []
        if overall["warm_iterations"] >= overall["cold_iterations"]:
            failures.append(
                "warm iterations did not beat cold "
                f"({overall['warm_iterations']} >= {overall['cold_iterations']})"
            )
        if reference["warm_iterations"] >= reference["cold_iterations"]:
            failures.append("warm restart did not beat cold on the reference problem")
        if reference["max_price_divergence"] > 0.01:
            failures.append(
                "reference warm equilibrium off cold by "
                f"{reference['max_price_divergence']:.4f} > 1% price tolerance"
            )
        for message in failures:
            print(f"CHECK FAILED: {message}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
