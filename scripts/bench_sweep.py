"""Serial-vs-parallel sweep-executor benchmark, as a plain script.

Runs :func:`repro.analysis.run_sweep_bench` (the same measurement as
``pytest benchmarks/test_sweep_parallel.py``) and writes the result to
``BENCH_sweep_parallel.json`` at the repository root.

Usage::

    python scripts/bench_sweep.py                  # 8-core reference shape
    python scripts/bench_sweep.py --workers 8      # wider pool
    python scripts/bench_sweep.py --full           # 64-core Fig-4 shape
    python scripts/bench_sweep.py --check          # CI smoke: tiny 2-worker
                                                   # sweep, exit 1 if scores
                                                   # differ from serial

``--check`` gates on the executor's correctness contract — parallel
scores identical to serial, zero cell failures — which must hold on any
machine.  The *speedup* is host-dependent (it needs free CPUs), so the
check never gates on it; the JSON records ``machine.usable_cpus``
alongside the measured number for interpretation.
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import run_sweep_bench  # noqa: E402
from repro.cmp import cmp_8core, cmp_64core  # noqa: E402
from repro.workloads import BUNDLE_CATEGORIES  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4, help="pool width (default 4)")
    parser.add_argument(
        "--bundles", type=int, default=3, help="bundles per category (default 3)"
    )
    parser.add_argument(
        "--full", action="store_true", help="64-core chip, all six Fig-4 categories"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="tiny 2-worker determinism smoke; exit 1 on any divergence/failure",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_sweep_parallel.json",
        help="where to write the JSON (default: repo root)",
    )
    args = parser.parse_args(argv)

    if args.check:
        data = run_sweep_bench(bundles_per_category=1, workers=2)
    elif args.full:
        data = run_sweep_bench(
            config=cmp_64core(),
            bundles_per_category=args.bundles,
            categories=BUNDLE_CATEGORIES,
            workers=args.workers,
        )
    else:
        data = run_sweep_bench(
            config=cmp_8core(),
            bundles_per_category=args.bundles,
            workers=args.workers,
        )

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(data, indent=2) + "\n")

    sweep, machine = data["sweep"], data["machine"]
    print(
        f"sweep: {sweep['cells']} cells "
        f"({len(sweep['categories'])} categories x {sweep['bundles_per_category']} "
        f"bundles x {len(sweep['mechanisms'])} mechanisms, "
        f"{sweep['num_cores']}-core) -> {args.output}"
    )
    print(
        f"serial {data['serial']['wall_s']:.2f}s, "
        f"parallel({data['parallel']['workers']}) {data['parallel']['wall_s']:.2f}s, "
        f"speedup x{data['speedup']:.2f} "
        f"(host: {machine['usable_cpus']}/{machine['cpu_count']} usable CPUs)"
    )
    print(
        f"identical: {data['identical']}, "
        f"max divergence {data['max_abs_divergence']:.3g}, "
        f"failures {data['failures']}"
    )

    if args.check:
        failures = []
        if not data["identical"]:
            failures.append(
                "parallel scores diverged from serial "
                f"(max |diff| = {data['max_abs_divergence']:.3g})"
            )
        if data["failures"]:
            failures.append(f"{data['failures']} sweep cell(s) failed")
        for message in failures:
            print(f"CHECK FAILED: {message}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
