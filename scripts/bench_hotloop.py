"""Scalar-vs-batched hot-loop benchmark, as a plain script.

Runs :func:`repro.analysis.run_hotloop_bench` (the same measurement as
``pytest benchmarks/test_hotloop.py``) and writes the result to
``BENCH_hotloop.json`` at the repository root.

Usage::

    python scripts/bench_hotloop.py            # default 8-core scale
    python scripts/bench_hotloop.py --full     # 64-core chips
    python scripts/bench_hotloop.py --check    # CI smoke: exit 1 unless
                                               # batched ≡ scalar and ≥3x
                                               # fewer utility calls

``--check`` verifies the vectorization's headline claims: the lockstep
bidder reproduces the scalar equilibria (allocations within the
documented tolerance, convergence flags exactly), makes at least 3x
fewer Python-level utility evaluations, and the ReBudget run's final
budgets match across bidders.
"""

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import run_hotloop_bench  # noqa: E402
from repro.cmp import cmp_8core, cmp_64core  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true", help="64-core chips instead of 8-core"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless batched ≡ scalar with ≥3x fewer calls",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_hotloop.json",
        help="where to write the JSON (default: repo root)",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    data = run_hotloop_bench(config=cmp_64core() if args.full else cmp_8core())
    elapsed = time.time() - t0

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(data, indent=2) + "\n")
    overall, rebudget = data["overall"], data["rebudget"]
    print(f"hot-loop bench finished in {elapsed:.1f}s -> {args.output}")
    for name, cell in data["problems"].items():
        print(
            f"  {name:6s} calls {cell['scalar']['utility_calls']:5d} -> "
            f"{cell['vector']['utility_calls']:4d} ({cell['call_reduction']:5.1f}x), "
            f"wall {cell['scalar']['wall_ms_best']:6.1f} -> "
            f"{cell['vector']['wall_ms_best']:5.1f} ms "
            f"(x{cell['wallclock_speedup']:.2f}), "
            f"bitwise={cell['bids_bitwise_equal']}"
        )
    print(
        f"overall: {overall['scalar_utility_calls']} -> "
        f"{overall['vector_utility_calls']} utility calls "
        f"({overall['call_reduction']:.1f}x fewer), "
        f"wall-clock x{overall['wallclock_speedup']:.2f}, "
        f"max allocation divergence {overall['max_allocation_divergence']:.2e}"
    )
    print(
        f"rebudget (CCNN, {rebudget['vector']['rounds']} rounds): "
        f"{rebudget['scalar']['wall_ms']:.1f} -> {rebudget['vector']['wall_ms']:.1f} ms "
        f"(x{rebudget['wallclock_speedup']:.2f}), "
        f"budgets match: {rebudget['budgets_match']}"
    )

    if args.check:
        tolerance = data["config"]["allocation_tolerance"]
        failures = []
        if overall["call_reduction"] < 3.0:
            failures.append(
                "batched path did not cut utility calls 3x "
                f"({overall['call_reduction']:.2f}x)"
            )
        if overall["max_allocation_divergence"] > tolerance:
            failures.append(
                "batched allocations off scalar by "
                f"{overall['max_allocation_divergence']:.2e} > {tolerance:.0e}"
            )
        if not overall["all_flags_match"]:
            failures.append("convergence flags/iterations diverged between paths")
        if overall["wallclock_speedup"] <= 1.0:
            failures.append(
                "batched path was not faster on wall-clock "
                f"(x{overall['wallclock_speedup']:.2f})"
            )
        if not rebudget["budgets_match"]:
            failures.append("ReBudget final budgets diverged between bidders")
        for message in failures:
            print(f"CHECK FAILED: {message}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
