"""Paper-scale Figure 4 sweep: 240 bundles, 64 cores, all mechanisms.

Writes the summary to stdout and the per-(bundle, mechanism) data to
``benchmarks/_results/full_scale_fig4.csv``.  Equivalent to
``REPRO_FULL=1 pytest benchmarks/test_fig4_analytic_sweep.py`` but as a
plain script for long unattended runs.
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis import run_analytic_sweep, summarize_sweep, sweep_to_csv, write_csv


def main() -> None:
    t0 = time.time()
    done = [0]

    def progress(name: str) -> None:
        done[0] += 1
        if done[0] % 20 == 0:
            print(f"  {done[0]}/240 bundles ({time.time() - t0:.0f}s)", file=sys.stderr)

    sweep = run_analytic_sweep(bundles_per_category=40, progress=progress)
    print(f"full 240-bundle sweep in {time.time() - t0:.0f}s")
    print(summarize_sweep(sweep))
    print()
    for mech in sweep.mechanisms:
        print(
            f"{mech:14s} frac>=95% {sweep.fraction_at_least(mech, 0.95):.3f} "
            f"frac>=90% {sweep.fraction_at_least(mech, 0.90):.3f} "
            f"worstEF {sweep.worst_envy_freeness(mech):.3f} "
            f"medianEF {sweep.median_envy_freeness(mech):.3f}"
        )
    print("theorem2 violations:", sweep.theorem2_violations())
    for mech in ("EqualBudget", "Balanced"):
        print(f"{mech} convergence:", sweep.convergence_stats(mech))

    results_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "_results"
    results_dir.mkdir(exist_ok=True)
    write_csv(sweep_to_csv(sweep), results_dir / "full_scale_fig4.csv")
    print(f"CSV written to {results_dir / 'full_scale_fig4.csv'}")


if __name__ == "__main__":
    main()
