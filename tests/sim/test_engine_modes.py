"""Engine corner modes: problem construction, warm-up, trace integrity."""

import numpy as np
import pytest

from repro.cmp import ChipModel, cmp_8core
from repro.core import EqualBudget
from repro.sim import ExecutionDrivenSimulator, SimulationConfig
from repro.workloads import paper_bbpc_bundle


@pytest.fixture(scope="module")
def chip():
    return ChipModel(cmp_8core(), paper_bbpc_bundle().apps)


def _fresh_monitors(sim):
    from repro.cmp import RuntimeMonitor

    rng = np.random.default_rng(0)
    return [RuntimeMonitor(core, sim.chip.config, rng=rng) for core in sim._cores]


class TestProblemConstruction:
    def test_monitored_problem_quanta(self, chip):
        cfg = SimulationConfig(duration_ms=2.0, seed=1, power_quantum_watts=1.0)
        sim = ExecutionDrivenSimulator(chip, EqualBudget(), cfg)
        problem = sim._build_problem(_fresh_monitors(sim))
        np.testing.assert_allclose(problem.quanta[1], 1.0)

    def test_true_utility_problem_matches_chip(self, chip):
        cfg = SimulationConfig(duration_ms=1.0, seed=1, use_monitors=False)
        sim = ExecutionDrivenSimulator(chip, EqualBudget(), cfg)
        problem = sim._build_problem(monitors=[])
        reference = chip.build_problem()
        np.testing.assert_allclose(problem.capacities, reference.capacities)
        assert problem.player_names == reference.player_names


class TestTraceIntegrity:
    @pytest.fixture(scope="class")
    def result(self, chip):
        cfg = SimulationConfig(duration_ms=5.0, seed=9)
        return ExecutionDrivenSimulator(chip, EqualBudget(), cfg).run()

    def test_epoch_timestamps(self, result):
        times = [r.time_ms for r in result.trace.epochs]
        np.testing.assert_allclose(times, np.arange(5.0))

    def test_dram_latency_at_least_uncontended(self, result, chip):
        base = chip.cores[0].dram.uncontended_latency_ns()
        for record in result.trace.epochs:
            assert record.dram_latency_ns >= base - 1e-9

    def test_power_within_chip_budget(self, result, chip):
        for record in result.trace.epochs:
            # Temperature excursions can push leakage slightly past the
            # nominal budget; the market keeps dynamic power in line.
            assert record.powers_w.sum() <= chip.config.power_budget_watts * 1.1

    def test_alone_reference_positive(self, result):
        assert np.all(result.alone_instructions > 0.0)
