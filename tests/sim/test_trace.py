"""Simulation trace aggregation."""

import numpy as np
import pytest

from repro.sim import EpochRecord, SimulationTrace


def _record(epoch, instr, power, temp=70.0):
    n = len(instr)
    return EpochRecord(
        epoch=epoch,
        time_ms=float(epoch),
        extras=np.zeros((n, 2)),
        cache_occupancy=np.full(n, 1.0),
        frequencies_ghz=np.full(n, 2.0),
        instructions=np.array(instr, dtype=float),
        powers_w=np.array(power, dtype=float),
        temperatures_c=np.full(n, temp),
        dram_latency_ns=50.0,
        market_iterations=3,
        market_converged=True,
    )


class TestSimulationTrace:
    def test_total_instructions(self):
        trace = SimulationTrace()
        trace.append(_record(0, [1.0, 2.0], [5.0, 5.0]))
        trace.append(_record(1, [3.0, 4.0], [5.0, 5.0]))
        np.testing.assert_allclose(trace.total_instructions(), [4.0, 6.0])

    def test_mean_power(self):
        trace = SimulationTrace()
        trace.append(_record(0, [1.0], [4.0]))
        trace.append(_record(1, [1.0], [8.0]))
        assert trace.mean_power() == pytest.approx(6.0)

    def test_peak_temperature(self):
        trace = SimulationTrace()
        trace.append(_record(0, [1.0], [4.0], temp=60.0))
        trace.append(_record(1, [1.0], [4.0], temp=85.0))
        assert trace.peak_temperature() == 85.0

    def test_mean_allocation_shape(self):
        trace = SimulationTrace()
        trace.append(_record(0, [1.0, 1.0], [4.0, 4.0]))
        assert trace.mean_allocation().shape == (2, 2)

    def test_market_iterations(self):
        trace = SimulationTrace()
        trace.append(_record(0, [1.0], [4.0]))
        assert trace.market_iterations() == [3]
        assert trace.num_epochs == 1
