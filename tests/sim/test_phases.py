"""Program-phase tracking."""

import pytest

from repro.cmp.application import AppProfile, FlatMRC, Phase
from repro.sim import PhaseTracker


def _app(phases=()):
    return AppProfile(
        name="x", suite="t", cpi_exe=0.5, apki=5.0, mrc=FlatMRC(0.3), phases=phases
    )


class TestStationary:
    def test_no_phases_means_unit_scales(self):
        tracker = PhaseTracker(_app())
        state = tracker.state_at(123.4)
        assert state.apki_scale == state.cpi_scale == state.activity_scale == 1.0

    def test_never_changes(self):
        tracker = PhaseTracker(_app())
        assert not tracker.changes_between(0.0, 1e6)


class TestCycling:
    @pytest.fixture
    def tracker(self):
        phases = (
            Phase(duration_ms=2.0, apki_scale=1.0),
            Phase(duration_ms=3.0, apki_scale=2.0),
        )
        return PhaseTracker(_app(phases))

    def test_phase_boundaries(self, tracker):
        assert tracker.state_at(0.0).phase_index == 0
        assert tracker.state_at(1.99).phase_index == 0
        assert tracker.state_at(2.0).phase_index == 1
        assert tracker.state_at(4.99).phase_index == 1

    def test_wraps_around(self, tracker):
        assert tracker.state_at(5.0).phase_index == 0
        assert tracker.state_at(7.5).phase_index == 1
        assert tracker.state_at(105.0).phase_index == 0

    def test_scales_follow_phase(self, tracker):
        assert tracker.state_at(1.0).apki_scale == 1.0
        assert tracker.state_at(3.0).apki_scale == 2.0

    def test_changes_between(self, tracker):
        assert tracker.changes_between(1.0, 3.0)
        assert not tracker.changes_between(0.0, 1.0)
