"""The execution-driven simulator, end to end on small configurations."""

import numpy as np
import pytest

from repro.core import EqualBudget, EqualShare, ReBudgetMechanism
from repro.sim import ExecutionDrivenSimulator, SimulationConfig


@pytest.fixture(scope="module")
def short_cfg():
    return SimulationConfig(duration_ms=6.0, seed=11)


@pytest.fixture(scope="module")
def equalbudget_result(bbpc_chip_module, short_cfg):
    sim = ExecutionDrivenSimulator(bbpc_chip_module, EqualBudget(), short_cfg)
    return sim.run()


@pytest.fixture(scope="module")
def bbpc_chip_module():
    from repro.cmp import ChipModel, cmp_8core
    from repro.workloads import paper_bbpc_bundle

    return ChipModel(cmp_8core(), paper_bbpc_bundle().apps)


class TestSimulationRun:
    def test_epoch_count(self, equalbudget_result, short_cfg):
        assert equalbudget_result.trace.num_epochs == 6

    def test_utilities_positive_and_bounded(self, equalbudget_result):
        assert np.all(equalbudget_result.utilities > 0.0)
        # Measured utility can exceed 1 only via noise; loosely bounded.
        assert np.all(equalbudget_result.utilities <= 1.2)

    def test_cache_occupancy_conserved(self, equalbudget_result, bbpc_chip_module):
        for record in equalbudget_result.trace.epochs:
            assert record.cache_occupancy.sum() == pytest.approx(
                bbpc_chip_module.config.l2_capacity_bytes, rel=1e-6
            )

    def test_frequencies_within_envelope(self, equalbudget_result):
        for record in equalbudget_result.trace.epochs:
            assert np.all(record.frequencies_ghz >= 0.8 - 1e-9)
            assert np.all(record.frequencies_ghz <= 4.0 + 1e-9)

    def test_extras_within_capacity(self, equalbudget_result, bbpc_chip_module):
        for record in equalbudget_result.trace.epochs:
            assert record.extras[:, 0].sum() <= (
                bbpc_chip_module.extra_cache_capacity + 1e-6
            )
            assert record.extras[:, 1].sum() <= (
                bbpc_chip_module.extra_power_capacity + 1e-6
            )

    def test_temperatures_physically_plausible(self, equalbudget_result):
        # Every core moves toward its own steady state: hot cores heat up,
        # lightly loaded ones cool; all stay in a sane silicon range.
        for record in equalbudget_result.trace.epochs:
            assert np.all(record.temperatures_c > 45.0)
            assert np.all(record.temperatures_c < 110.0)
        first = equalbudget_result.trace.epochs[0].temperatures_c
        last = equalbudget_result.trace.epochs[-1].temperatures_c
        assert not np.allclose(first, last)  # thermals actually evolve

    def test_envy_freeness_in_unit_interval(self, equalbudget_result):
        assert 0.0 <= equalbudget_result.envy_freeness <= 1.0

    def test_efficiency_is_sum(self, equalbudget_result):
        assert equalbudget_result.efficiency == pytest.approx(
            float(equalbudget_result.utilities.sum())
        )


class TestMechanismComparison:
    def test_market_beats_equal_share(self, bbpc_chip_module, short_cfg):
        share = ExecutionDrivenSimulator(
            bbpc_chip_module, EqualShare(), short_cfg
        ).run()
        market = ExecutionDrivenSimulator(
            bbpc_chip_module, EqualBudget(), short_cfg
        ).run()
        assert market.efficiency > share.efficiency

    def test_deterministic_given_seed(self, bbpc_chip_module, short_cfg):
        a = ExecutionDrivenSimulator(bbpc_chip_module, EqualShare(), short_cfg).run()
        b = ExecutionDrivenSimulator(bbpc_chip_module, EqualShare(), short_cfg).run()
        np.testing.assert_allclose(a.utilities, b.utilities)


class TestConfigKnobs:
    def test_true_utilities_mode(self, bbpc_chip_module):
        cfg = SimulationConfig(duration_ms=3.0, use_monitors=False, seed=1)
        result = ExecutionDrivenSimulator(bbpc_chip_module, EqualBudget(), cfg).run()
        assert result.trace.num_epochs == 3

    def test_reallocation_period(self, bbpc_chip_module):
        cfg = SimulationConfig(duration_ms=4.0, reallocation_period_epochs=2, seed=1)
        result = ExecutionDrivenSimulator(bbpc_chip_module, EqualBudget(), cfg).run()
        assert result.trace.num_epochs == 4

    def test_thermal_disabled(self, bbpc_chip_module):
        cfg = SimulationConfig(duration_ms=3.0, thermal=False, seed=1)
        result = ExecutionDrivenSimulator(bbpc_chip_module, EqualBudget(), cfg).run()
        temps = result.trace.epochs[-1].temperatures_c
        # Without thermal stepping, nodes stay at their initial value.
        assert np.all(temps == temps[0])

    def test_rebudget_in_simulation(self, bbpc_chip_module):
        cfg = SimulationConfig(duration_ms=3.0, seed=1)
        result = ExecutionDrivenSimulator(
            bbpc_chip_module, ReBudgetMechanism(step=40), cfg
        ).run()
        assert result.mechanism == "ReBudget-40"
        assert result.converged_fraction > 0.5
