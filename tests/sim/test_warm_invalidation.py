"""Warm-state lifecycle in the epoch simulator, and config validation."""

import numpy as np
import pytest

from repro.cmp import ChipModel, cmp_8core
from repro.cmp.spec_suite import app_by_name
from repro.core import EqualBudget
from repro.sim import ContextSwitch, ExecutionDrivenSimulator, SimulationConfig
from repro.workloads import paper_bbpc_bundle


@pytest.fixture(scope="module")
def chip():
    return ChipModel(cmp_8core(), paper_bbpc_bundle().apps)


class TestSimulationConfigValidation:
    def test_zero_epochs_rejected(self):
        # duration below half an epoch used to yield num_epochs == 0 and
        # silent 0/0 NaN utilities at the end of run().
        with pytest.raises(ValueError, match="zero epochs"):
            SimulationConfig(duration_ms=0.4, epoch_ms=1.0)

    @pytest.mark.parametrize("duration", [0.0, -1.0, float("nan")])
    def test_nonpositive_duration_rejected(self, duration):
        with pytest.raises(ValueError, match="duration_ms"):
            SimulationConfig(duration_ms=duration)

    @pytest.mark.parametrize("epoch", [0.0, -0.5, float("inf")])
    def test_nonpositive_epoch_rejected(self, epoch):
        with pytest.raises(ValueError, match="epoch_ms"):
            SimulationConfig(duration_ms=5.0, epoch_ms=epoch)

    def test_zero_reallocation_period_rejected(self):
        with pytest.raises(ValueError, match="reallocation_period_epochs"):
            SimulationConfig(duration_ms=5.0, reallocation_period_epochs=0)

    def test_num_epochs(self):
        assert SimulationConfig(duration_ms=6.0, epoch_ms=1.0).num_epochs == 6
        assert SimulationConfig(duration_ms=0.6, epoch_ms=1.0).num_epochs == 1

    def test_valid_config_has_no_nan_utilities(self, chip):
        cfg = SimulationConfig(duration_ms=0.6, epoch_ms=1.0, seed=3)
        result = ExecutionDrivenSimulator(chip, EqualBudget(), cfg).run()
        assert np.all(np.isfinite(result.utilities))


class TestWarmStateLifecycle:
    def test_run_resets_inherited_state(self, chip):
        mech = EqualBudget()
        cfg = SimulationConfig(duration_ms=2.0, seed=7)
        ExecutionDrivenSimulator(chip, mech, cfg).run()
        assert mech.warm_state is not None
        carried = mech.warm_state
        # A second run on the same instance must not consume the first
        # run's state: run() drops it before the first epoch.
        sim = ExecutionDrivenSimulator(chip, mech, cfg)
        sim.run()
        assert mech.warm_state is not carried

    def test_context_switch_invalidates_warm_state(self, chip):
        mech = EqualBudget()
        cfg = SimulationConfig(
            duration_ms=6.0,
            seed=7,
            context_switches=(ContextSwitch(3.0, 0, app_by_name("povray")),),
        )
        sim = ExecutionDrivenSimulator(chip, mech, cfg)
        states = []
        original = sim._apply_context_switches

        def spy(time_ms, pending, monitors, rng):
            original(time_ms, pending, monitors, rng)
            states.append(mech.warm_state)

        sim._apply_context_switches = spy
        sim.run()
        # Epoch 3 fires the switch: the state carried from epoch 2 must
        # be dropped before that epoch's market run.
        assert states[3] is None
        assert states[2] is not None

    def test_warm_run_matches_cold_run_closely(self, chip):
        cfg = SimulationConfig(duration_ms=5.0, seed=9)
        warm = ExecutionDrivenSimulator(chip, EqualBudget(), cfg).run()
        cold = ExecutionDrivenSimulator(chip, EqualBudget(warm=False), cfg).run()
        # Same seed, same monitored trajectory: measured utilities agree
        # within the equilibrium tolerance, and warm epochs use no more
        # market iterations than cold ones.
        np.testing.assert_allclose(warm.utilities, cold.utilities, rtol=0.05)
        assert warm.mean_market_iterations <= cold.mean_market_iterations
