"""Context switches: the 1 ms re-allocation loop earning its keep."""

import numpy as np
import pytest

from repro.cmp import ChipModel, cmp_8core
from repro.cmp.spec_suite import app_by_name
from repro.core import EqualBudget
from repro.sim import ContextSwitch, ExecutionDrivenSimulator, SimulationConfig
from repro.workloads import paper_bbpc_bundle


@pytest.fixture(scope="module")
def chip():
    return ChipModel(cmp_8core(), paper_bbpc_bundle().apps)


def _run(chip, switches, duration=10.0, seed=5):
    cfg = SimulationConfig(
        duration_ms=duration, seed=seed, context_switches=tuple(switches)
    )
    return ExecutionDrivenSimulator(chip, EqualBudget(), cfg).run()


class _CountingEqualBudget(EqualBudget):
    """EqualBudget that counts how many market epochs actually ran."""

    def __init__(self):
        super().__init__()
        self.allocate_calls = 0

    def allocate(self, problem):
        self.allocate_calls += 1
        return super().allocate(problem)


class TestContextSwitch:
    def test_validation(self, chip):
        with pytest.raises(ValueError):
            _run(chip, [ContextSwitch(1.0, 99, app_by_name("mcf"))])

    def test_chip_not_mutated(self, chip):
        before = [c.app.name for c in chip.cores]
        _run(chip, [ContextSwitch(2.0, 0, app_by_name("libquantum"))], duration=4.0)
        assert [c.app.name for c in chip.cores] == before

    def test_switch_changes_market_player(self, chip):
        # Swap core 0 (apsi) for povray: after the switch the market's
        # player list must reflect the new app.
        sim = ExecutionDrivenSimulator(
            chip,
            EqualBudget(),
            SimulationConfig(
                duration_ms=6.0,
                seed=5,
                context_switches=(ContextSwitch(3.0, 0, app_by_name("povray")),),
            ),
        )
        sim.run()
        assert sim._cores[0].app.name == "povray"

    def test_allocation_adapts_to_incoming_app(self, chip):
        # Replace a cache-hungry mcf (core 4) with a compute-bound
        # povray mid-run: the market should stop granting that core
        # cache and start granting it power.
        result = _run(
            chip,
            [ContextSwitch(5.0, 4, app_by_name("povray"))],
            duration=12.0,
        )
        cache_before = np.mean(
            [r.extras[4, 0] for r in result.trace.epochs if r.time_ms < 5.0]
        )
        cache_after = np.mean(
            [r.extras[4, 0] for r in result.trace.epochs if r.time_ms >= 8.0]
        )
        power_before = np.mean(
            [r.extras[4, 1] for r in result.trace.epochs if r.time_ms < 5.0]
        )
        power_after = np.mean(
            [r.extras[4, 1] for r in result.trace.epochs if r.time_ms >= 8.0]
        )
        assert cache_after < cache_before * 0.6
        assert power_after > power_before

    def test_switch_forces_reallocation_between_market_epochs(self, chip):
        # With reallocation_period_epochs=4 over 8 ms, the market runs
        # at epochs 0 and 4 only.  A context switch at 2 ms must force
        # an extra reallocation immediately (Section 4.3: the incoming
        # application cannot execute under the departed one's
        # allocation), not wait for the scheduled epoch 4.
        def run(switches):
            mech = _CountingEqualBudget()
            cfg = SimulationConfig(
                duration_ms=8.0,
                seed=5,
                reallocation_period_epochs=4,
                context_switches=tuple(switches),
            )
            ExecutionDrivenSimulator(chip, mech, cfg).run()
            return mech.allocate_calls

        assert run([]) == 2  # scheduled epochs 0 and 4 only
        assert run([ContextSwitch(2.0, 0, app_by_name("povray"))]) == 3

    def test_run_completes_with_many_switches(self, chip):
        switches = [
            ContextSwitch(2.0, 0, app_by_name("lbm")),
            ContextSwitch(2.0, 1, app_by_name("gcc")),
            ContextSwitch(4.0, 0, app_by_name("mcf")),
        ]
        result = _run(chip, switches, duration=6.0)
        assert result.trace.num_epochs == 6
        assert np.all(result.utilities > 0.0)
