"""The per-figure experiment harness (on small configurations)."""

import numpy as np
import pytest

from repro.analysis import (
    fig1_data,
    fig2_data,
    fig3_data,
    run_analytic_sweep,
    run_simulation_experiment,
)
from repro.cmp import cmp_8core
from repro.core import EqualBudget, EqualShare, MaxEfficiency, ReBudgetMechanism
from repro.sim import SimulationConfig


def _small_mechanisms():
    return [EqualShare(), EqualBudget(), ReBudgetMechanism(step=40), MaxEfficiency()]


@pytest.fixture(scope="module")
def small_sweep():
    return run_analytic_sweep(
        config=cmp_8core(),
        bundles_per_category=2,
        categories=("CPBN", "BBPN"),
        mechanisms_factory=_small_mechanisms,
    )


class TestFig1:
    def test_series(self):
        d = fig1_data(21)
        assert d["poa_bound"][-1] == pytest.approx(0.75)
        assert d["ef_bound"][-1] == pytest.approx(0.828, abs=5e-4)
        assert d["mur"].size == 21


class TestFig2:
    def test_mcf_cliff_and_hull(self):
        d = fig2_data()
        mcf = d["mcf"]
        # The raw curve has mcf's signature: flat ~0.2 then jumping to 1.
        assert mcf["raw"][3] < 0.3
        assert mcf["raw"][-1] == pytest.approx(1.0, abs=0.01)
        # The hull dominates and is concave.
        assert np.all(mcf["hull"] >= mcf["raw"] - 1e-9)
        slopes = np.diff(mcf["hull"]) / np.diff(mcf["regions"])
        assert np.all(np.diff(slopes) <= 1e-9)

    def test_vpr_already_concave(self):
        d = fig2_data()
        vpr = d["vpr"]
        np.testing.assert_allclose(vpr["hull"], vpr["raw"], atol=1e-6)


class TestFig3:
    @pytest.fixture(scope="class")
    def data(self):
        return fig3_data()

    def test_distinct_apps_reported(self, data):
        assert data["apps"] == ["apsi", "swim", "mcf", "hmmer", "sixtrack"]

    def test_lambdas_normalized(self, data):
        for mech, lambdas in data["lambdas"].items():
            values = np.array(list(lambdas.values()))
            assert values.max() == pytest.approx(1.0)
            assert np.all(values >= 0.0)

    def test_summary_contents(self, data):
        for mech, summary in data["summary"].items():
            assert 0.0 <= summary["mur"] <= 1.0
            assert 0.0 < summary["efficiency_vs_opt"] <= 1.0 + 1e-6
            assert set(summary["budgets"]) == set(data["apps"])

    def test_rebudget_never_less_efficient_than_equal_budget(self, data):
        eq = data["summary"]["EqualBudget"]["efficiency"]
        for mech, summary in data["summary"].items():
            if mech.startswith("ReBudget"):
                assert summary["efficiency"] >= eq - 1e-6


class TestAnalyticSweep:
    def test_score_count(self, small_sweep):
        assert len(small_sweep.scores) == 4  # 2 categories x 2 bundles

    def test_mechanism_lineup(self, small_sweep):
        assert small_sweep.mechanisms == [
            "EqualShare",
            "EqualBudget",
            "ReBudget-40",
            "MaxEfficiency",
        ]

    def test_figure4_ordering(self, small_sweep):
        series = small_sweep.efficiency_series("EqualShare")
        assert np.all(np.diff(series) >= -1e-12)

    def test_max_efficiency_dominates(self, small_sweep):
        for mech in small_sweep.mechanisms:
            assert np.all(small_sweep.efficiency_series(mech) <= 1.0 + 1e-6)

    def test_equal_share_envy_free(self, small_sweep):
        np.testing.assert_allclose(
            small_sweep.envy_freeness_series("EqualShare"), 1.0, atol=1e-9
        )

    def test_fractions(self, small_sweep):
        assert 0.0 <= small_sweep.fraction_at_least("EqualBudget", 0.9) <= 1.0
        assert small_sweep.fraction_at_least("MaxEfficiency", 0.999) == 1.0

    def test_no_theorem2_violations(self, small_sweep):
        assert small_sweep.theorem2_violations() == []

    def test_convergence_stats(self, small_sweep):
        stats = small_sweep.convergence_stats("EqualBudget")
        assert stats["max_iterations"] <= 30
        assert 0.0 <= stats["fraction_within_5"] <= 1.0
        assert stats["converged_fraction"] == 1.0


class TestSimulationExperiment:
    def test_one_bundle_per_category(self):
        scores = run_simulation_experiment(
            config=cmp_8core(),
            categories=("BBPN",),
            sim_config=SimulationConfig(duration_ms=3.0, seed=5),
            mechanisms_factory=lambda: [EqualShare(), MaxEfficiency()],
        )
        assert len(scores) == 1
        score = scores[0]
        assert score.category == "BBPN"
        assert set(score.efficiency) == {"EqualShare", "MaxEfficiency"}
        assert 0.0 <= score.efficiency_vs_opt("EqualShare") <= 1.3
