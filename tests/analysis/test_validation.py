"""Substrate validation studies."""

import numpy as np
import pytest

from repro.analysis import (
    dram_contention_study,
    futility_convergence_study,
    umon_error_study,
)
from repro.cmp import cmp_8core


class TestUmonErrorStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        # Small run: 2 epochs, fewer instructions, still meaningful.
        return umon_error_study(cmp_8core(), epochs=2, instructions_per_epoch=1e6)

    def test_one_row_per_app(self, rows):
        assert len(rows) == 24
        assert len({r.app for r in rows}) == 24

    def test_errors_small(self, rows):
        assert float(np.mean([r.mean_abs_error for r in rows])) < 0.05

    def test_sampling_rate_respected(self, rows):
        for r in rows:
            # 1-in-32 sampling: far fewer samples than accesses.
            assert 0 < r.sampled_accesses < 2e6


class TestFutilityStudy:
    def test_all_trials_converge(self):
        epochs = futility_convergence_study(max_epochs=150)
        assert len(epochs) == 20
        assert max(epochs) < 150


class TestDramStudy:
    def test_monotone_curve(self):
        rows = dram_contention_study()
        lats = [lat for _, lat in rows]
        assert all(a <= b + 1e-9 for a, b in zip(lats, lats[1:]))
