"""Parallel experiment harness: determinism and cell-failure isolation.

The executor contract says a worker pool must be invisible in the
results (same scores as serial) and a failing cell must cost exactly
its own bundle, not the sweep.  These tests exercise both through the
public entry points ``run_analytic_sweep`` / ``run_simulation_experiment``.
"""

import pytest

from repro.analysis import run_analytic_sweep, run_simulation_experiment
from repro.analysis.sweep_bench import sweeps_identical
from repro.cmp import cmp_8core
from repro.core import EqualBudget, EqualShare
from repro.sim import SimulationConfig


class _ExplodeOnNamd:
    """Fails exactly the bundles that contain the *namd* application.

    With ``seed=2016`` and two 8-core CPBN bundles, *namd* appears in
    CPBN-00 but not CPBN-01, so this poisons precisely one bundle.
    """

    name = "ExplodeOnNamd"

    def allocate(self, problem):
        if "namd" in problem.player_names:
            raise RuntimeError("namd detected")
        return EqualShare().allocate(problem)


def _small_mechanisms():
    return [EqualShare(), EqualBudget()]


def _exploding_mechanisms():
    return [EqualShare(), _ExplodeOnNamd()]


def _small_sweep(workers):
    return run_analytic_sweep(
        config=cmp_8core(),
        bundles_per_category=2,
        categories=("CPBN",),
        mechanisms_factory=_small_mechanisms,
        workers=workers,
    )


class TestAnalyticSweepParallel:
    def test_parallel_scores_identical_to_serial(self):
        serial = _small_sweep(workers=1)
        pooled = _small_sweep(workers=2)
        identical, divergence = sweeps_identical(serial, pooled)
        assert identical, f"parallel diverged from serial by {divergence:.3g}"
        assert [s.bundle for s in serial.scores] == [s.bundle for s in pooled.scores]
        assert serial.mechanisms == pooled.mechanisms

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failed_cell_is_isolated(self, workers):
        sweep = run_analytic_sweep(
            config=cmp_8core(),
            bundles_per_category=2,
            categories=("CPBN",),
            mechanisms_factory=_exploding_mechanisms,
            workers=workers,
        )
        # The poisoned bundle is excluded from the scores entirely...
        assert [s.bundle for s in sweep.scores] == ["CPBN-01"]
        assert set(sweep.scores[0].results) == {"EqualShare", "ExplodeOnNamd"}
        # ...and its failing cell is recorded with the worker traceback.
        assert len(sweep.failures) == 1
        failure = sweep.failures[0]
        assert failure.bundle == "CPBN-00"
        assert failure.mechanism == "ExplodeOnNamd"
        assert "namd detected" in failure.error
        assert "RuntimeError" in failure.error


class TestSimulationParallel:
    @pytest.mark.parametrize("per_cell_seeds", [False, True])
    def test_parallel_matches_serial(self, per_cell_seeds):
        kwargs = dict(
            categories=("CPBN",),
            sim_config=SimulationConfig(duration_ms=3.0),
            per_cell_seeds=per_cell_seeds,
        )
        serial = run_simulation_experiment(workers=1, **kwargs)
        pooled = run_simulation_experiment(workers=2, **kwargs)
        assert len(serial) == len(pooled) == 1
        assert serial[0].bundle == pooled[0].bundle
        assert serial[0].efficiency == pooled[0].efficiency
        assert serial[0].envy_freeness == pooled[0].envy_freeness
        assert serial[0].mean_iterations == pooled[0].mean_iterations
        assert serial.failures == [] and pooled.failures == []
