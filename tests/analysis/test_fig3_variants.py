"""fig3_data with alternate bundles (the reassignment-dynamics path)."""

import pytest

from repro.analysis import fig3_data
from repro.workloads import generate_bundles


class TestFig3AlternateBundle:
    @pytest.fixture(scope="class")
    def cpbn_data(self):
        bundle = generate_bundles("CPBN", 8, count=1, seed=9)[0]
        return fig3_data(bundle=bundle)

    def test_n_app_has_lowest_lambda_under_equal_budget(self, cpbn_data):
        lambdas = cpbn_data["lambdas"]["EqualBudget"]
        from repro.cmp.spec_suite import INTENDED_CLASS

        n_apps = [a for a in cpbn_data["apps"] if INTENDED_CLASS[a] == "N"]
        assert n_apps, "CPBN bundle must contain an N app"
        lowest = min(lambdas, key=lambdas.get)
        assert INTENDED_CLASS[lowest] == "N"

    def test_rebudget_cuts_and_raises_mur(self, cpbn_data):
        summary = cpbn_data["summary"]
        assert min(summary["ReBudget-40"]["budgets"].values()) < 100.0
        assert summary["ReBudget-40"]["mur"] > summary["EqualBudget"]["mur"]

    def test_efficiency_improves_with_aggressiveness(self, cpbn_data):
        summary = cpbn_data["summary"]
        assert (
            summary["ReBudget-40"]["efficiency_vs_opt"]
            >= summary["ReBudget-20"]["efficiency_vs_opt"] - 1e-9
            >= summary["EqualBudget"]["efficiency_vs_opt"] - 1e-9
        )

    def test_cut_app_lambda_rises(self, cpbn_data):
        lambdas_eq = cpbn_data["lambdas"]["EqualBudget"]
        lambdas_rb = cpbn_data["lambdas"]["ReBudget-40"]
        lowest = min(lambdas_eq, key=lambdas_eq.get)
        # The paper's Figure 3 narrative: cutting a low-lambda player's
        # budget raises its (normalized) marginal utility of money.
        assert lambdas_rb[lowest] > lambdas_eq[lowest]
