"""Suite characterization rows."""

import pytest

from repro.analysis import characterize_app, characterize_suite
from repro.cmp.spec_suite import app_by_name


class TestCharacterizeApp:
    def test_mcf_row(self):
        row = characterize_app(app_by_name("mcf"))
        assert row.cls == "C"
        assert row.suite == "spec2000"
        # mcf's 90%-resolution footprint sits near its 1.5 MB working set.
        assert 1.3 <= row.footprint_mb <= 1.9
        assert row.cache_sensitivity > 0.4
        assert row.alone_gips > 0.0

    def test_povray_row(self):
        row = characterize_app(app_by_name("povray"))
        assert row.cls == "P"
        assert row.footprint_mb < 0.5
        assert row.power_sensitivity > 0.6

    def test_flat_app_has_no_footprint(self):
        row = characterize_app(app_by_name("libquantum"))
        # A flat MRC has no cache-sensitive misses to resolve.
        assert row.footprint_mb == 0.0


class TestCharacterizeSuite:
    def test_24_rows_six_per_class(self):
        rows = characterize_suite()
        assert len(rows) == 24
        for cls in "CPBN":
            assert sum(r.cls == cls for r in rows) == 6
