"""Summary statistics helpers."""

import pytest

from repro.analysis import fraction_at_least, geometric_mean, series_summary


class TestSeriesSummary:
    def test_values(self):
        s = series_summary([1.0, 2.0, 3.0, 4.0])
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["median"] == 2.5
        assert s["mean"] == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            series_summary([])


class TestFractionAtLeast:
    def test_value(self):
        assert fraction_at_least([0.5, 0.9, 1.0], 0.9) == pytest.approx(2 / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fraction_at_least([], 0.5)


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])
