"""Plain-text reporting helpers."""

import numpy as np

from repro.analysis import format_series, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(
            ["name", "value"], [["a", 1.23456], ["long-name", 2.0]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.235" in out
        assert "long-name" in out

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("curve", [0.0, 1.0], [0.5, 0.75])
        assert out == "curve: 0:0.500 1:0.750"

    def test_subsamples_long_series(self):
        xs = np.arange(100.0)
        out = format_series("c", xs, xs / 100.0, max_points=10)
        assert len(out.split()) == 11  # name + 10 pairs
