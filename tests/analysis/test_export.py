"""CSV export of sweeps and simulation scores."""

import csv
import io

import pytest

from repro.analysis import run_analytic_sweep
from repro.analysis.export import simulation_to_csv, sweep_to_csv, write_csv
from repro.analysis.experiments import SimulationScore
from repro.cmp import cmp_8core
from repro.core import EqualBudget, EqualShare, MaxEfficiency


@pytest.fixture(scope="module")
def sweep():
    return run_analytic_sweep(
        config=cmp_8core(),
        bundles_per_category=1,
        categories=("CPBN",),
        mechanisms_factory=lambda: [EqualShare(), EqualBudget(), MaxEfficiency()],
    )


class TestSweepCsv:
    def test_rows_and_columns(self, sweep):
        text = sweep_to_csv(sweep)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 3  # 1 bundle x 3 mechanisms
        assert rows[0]["bundle"] == "CPBN-00"
        assert {r["mechanism"] for r in rows} == {
            "EqualShare",
            "EqualBudget",
            "MaxEfficiency",
        }

    def test_numeric_fields_parse(self, sweep):
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv(sweep))))
        for row in rows:
            assert 0.0 <= float(row["efficiency_vs_opt"]) <= 1.0 + 1e-6
            assert 0.0 <= float(row["envy_freeness"]) <= 1.0

    def test_mur_blank_for_non_market_mechanisms(self, sweep):
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv(sweep))))
        by_mech = {r["mechanism"]: r for r in rows}
        assert by_mech["EqualShare"]["mur"] == ""
        assert by_mech["EqualBudget"]["mur"] != ""


class TestSimulationCsv:
    def test_roundtrip(self):
        score = SimulationScore(
            bundle="CPBN-00",
            category="CPBN",
            efficiency={"EqualBudget": 4.0, "MaxEfficiency": 5.0},
            envy_freeness={"EqualBudget": 0.99, "MaxEfficiency": 0.2},
            mean_iterations={"EqualBudget": 4.0, "MaxEfficiency": 100.0},
        )
        rows = list(csv.DictReader(io.StringIO(simulation_to_csv([score]))))
        assert len(rows) == 2
        eq = next(r for r in rows if r["mechanism"] == "EqualBudget")
        assert float(eq["efficiency_vs_opt"]) == pytest.approx(0.8)


class TestWriteCsv:
    def test_writes_file(self, tmp_path, sweep):
        path = tmp_path / "sweep.csv"
        write_csv(sweep_to_csv(sweep), path)
        assert path.read_text().startswith("order,bundle")
