"""Convergence regression tests for known-hard market instances.

These specific bundles once drove the Jacobi loop into its 30-round
fail-safe via price oscillation; the damping logic must keep them
converging quickly.  (See `core.equilibrium` and DESIGN.md's ablation
list.)
"""

import pytest

from repro.cmp import ChipModel, cmp_8core, cmp_64core
from repro.core import find_equilibrium
from repro.workloads import generate_bundles


def _equilibrium_for(category, cores, seed, index=0, count=None):
    config = cmp_64core() if cores == 64 else cmp_8core()
    bundles = generate_bundles(category, cores, count=count or (index + 1), seed=seed)
    chip = ChipModel(config, bundles[index].apps)
    market = chip.build_problem().build_market([100.0] * cores)
    return find_equilibrium(market)


class TestOscillationDamping:
    def test_bbnn_64core_bundle1(self):
        # Once a period-2 oscillator that hit the fail-safe.
        eq = _equilibrium_for("BBNN", 64, seed=2016, index=1, count=2)
        assert eq.converged
        assert eq.iterations <= 12

    def test_bbpn_64core_bundle1(self):
        eq = _equilibrium_for("BBPN", 64, seed=2016, index=1, count=2)
        assert eq.converged
        assert eq.iterations <= 12

    def test_bbpn_8core_seed13(self):
        # A drifting (non-period-2) oscillation fixed by late damping.
        eq = _equilibrium_for("BBPN", 8, seed=13)
        assert eq.converged
        assert eq.iterations <= 15

    def test_damping_does_not_slow_easy_markets(self):
        eq = _equilibrium_for("CCPP", 64, seed=2016)
        assert eq.converged
        assert eq.iterations <= 5
