"""Full-pipeline smoke tests: workload -> chip -> market -> simulation."""

import numpy as np
import pytest

from repro.cmp import ChipModel, cmp_8core
from repro.core import EqualBudget, ReBudgetMechanism
from repro.sim import ExecutionDrivenSimulator, SimulationConfig
from repro.workloads import classify, generate_bundles


class TestPipeline:
    @pytest.fixture(scope="class")
    def chip(self):
        bundle = generate_bundles("BBCN", 8, count=1, seed=4)[0]
        return ChipModel(cmp_8core(), bundle.apps)

    def test_bundle_classes_verified_by_profiling(self, chip):
        # BBCN on 8 cores: two apps per category letter, in order.
        letters = [classify(app) for app in chip.apps]
        assert letters == ["B", "B", "B", "B", "C", "C", "N", "N"]

    def test_analytic_and_simulated_agree_in_sign(self, chip):
        problem = chip.build_problem()
        analytic_eq = EqualBudget().allocate(problem)
        analytic_rb = ReBudgetMechanism(step=40).allocate(problem)

        sim_cfg = SimulationConfig(duration_ms=5.0, seed=2)
        sim_eq = ExecutionDrivenSimulator(chip, EqualBudget(), sim_cfg).run()
        sim_rb = ExecutionDrivenSimulator(chip, ReBudgetMechanism(step=40), sim_cfg).run()

        # Phase 2 validates phase 1: if ReBudget helps analytically, the
        # measured run must agree (and vice versa), within noise.
        analytic_gain = analytic_rb.efficiency - analytic_eq.efficiency
        simulated_gain = sim_rb.efficiency - sim_eq.efficiency
        if abs(analytic_gain) > 0.05:
            assert np.sign(simulated_gain) == np.sign(analytic_gain)

    def test_monitored_efficiency_close_to_true(self, chip):
        # Monitoring noise costs a few percent, not tens of percent.
        cfg_true = SimulationConfig(duration_ms=5.0, use_monitors=False, seed=2)
        cfg_mon = SimulationConfig(duration_ms=5.0, use_monitors=True, seed=2)
        true = ExecutionDrivenSimulator(chip, EqualBudget(), cfg_true).run()
        mon = ExecutionDrivenSimulator(chip, EqualBudget(), cfg_mon).run()
        assert mon.efficiency == pytest.approx(true.efficiency, rel=0.15)
