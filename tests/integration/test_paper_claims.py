"""Paper-level properties checked end to end on small configurations.

These tests tie the theory (Theorems 1 & 2) to the implemented system:
every computed equilibrium must respect the bounds, and ReBudget must
exhibit its efficiency-vs-fairness knob behaviour.
"""

import numpy as np
import pytest

from repro.cmp import ChipModel, cmp_8core
from repro.core import (
    EqualBudget,
    EqualShare,
    MaxEfficiency,
    ReBudgetMechanism,
    envy_freeness,
)
from repro.core.theory import ef_lower_bound, poa_lower_bound
from repro.workloads import generate_bundles


@pytest.fixture(scope="module")
def cpbn_problem():
    """An 8-core CPBN bundle: N apps give ReBudget room to act."""
    bundle = generate_bundles("CPBN", 8, count=1, seed=9)[0]
    chip = ChipModel(cmp_8core(), bundle.apps)
    return chip.build_problem()


@pytest.fixture(scope="module")
def all_results(cpbn_problem):
    mechanisms = [
        EqualShare(),
        EqualBudget(),
        ReBudgetMechanism(step=20),
        ReBudgetMechanism(step=40),
        MaxEfficiency(),
    ]
    return {m.name: m.allocate(cpbn_problem) for m in mechanisms}


class TestTheorem1EndToEnd:
    def test_realized_poa_respects_bound(self, all_results):
        opt = all_results["MaxEfficiency"].efficiency
        for name in ("EqualBudget", "ReBudget-20", "ReBudget-40"):
            result = all_results[name]
            realized = result.efficiency / opt
            assert realized >= poa_lower_bound(result.mur) - 0.01, name


class TestTheorem2EndToEnd:
    def test_realized_ef_respects_bound(self, all_results):
        for name in ("EqualBudget", "ReBudget-20", "ReBudget-40"):
            result = all_results[name]
            assert result.envy_freeness >= ef_lower_bound(result.mbr) - 1e-9, name

    def test_rebudget_mbr_matches_schedule(self, all_results):
        # ReBudget-20's worst-case budget is 61.25 -> MBR >= 0.6125.
        assert all_results["ReBudget-20"].mbr >= 0.6125 - 1e-9
        # ReBudget-40: cuts of 40+20+10+5+2.5+1.25 -> floor 21.25.
        assert all_results["ReBudget-40"].mbr >= 0.2125 - 1e-9


class TestEfficiencyFairnessKnob:
    def test_efficiency_ordering(self, all_results):
        # The paper's Figure 4a ordering: more aggressive budget
        # reassignment buys more efficiency.
        assert (
            all_results["ReBudget-40"].efficiency
            >= all_results["ReBudget-20"].efficiency - 1e-6
        )
        assert (
            all_results["ReBudget-20"].efficiency
            >= all_results["EqualBudget"].efficiency - 1e-6
        )

    def test_fairness_ordering(self, all_results):
        # And Figure 4b: fairness moves the other way.
        assert (
            all_results["ReBudget-40"].envy_freeness
            <= all_results["ReBudget-20"].envy_freeness + 1e-6
        )
        assert (
            all_results["ReBudget-20"].envy_freeness
            <= all_results["EqualBudget"].envy_freeness + 1e-6
        )

    def test_extremes(self, all_results):
        # EqualShare is exactly envy-free; MaxEfficiency is the most
        # efficient and the least fair.
        assert all_results["EqualShare"].envy_freeness == pytest.approx(1.0)
        best_eff = max(r.efficiency for r in all_results.values())
        assert all_results["MaxEfficiency"].efficiency == pytest.approx(best_eff)
        worst_ef = min(r.envy_freeness for r in all_results.values())
        assert all_results["MaxEfficiency"].envy_freeness == pytest.approx(worst_ef)


class TestMarketProperties:
    def test_full_distribution(self, cpbn_problem, all_results):
        # "The remaining resources will be entirely distributed."  The
        # quantized MaxEfficiency search may leave at most a fraction of
        # one quantum per resource on the table.
        for name in ("EqualBudget", "ReBudget-40", "MaxEfficiency"):
            totals = all_results[name].allocations.sum(axis=0)
            shortfall = cpbn_problem.capacities - totals
            assert np.all(shortfall <= cpbn_problem.quanta + 1e-9), name
            assert np.all(shortfall >= -1e-6), name

    def test_convergence_within_failsafe(self, all_results):
        assert all_results["EqualBudget"].iterations <= 30
        assert all_results["EqualBudget"].converged

    def test_equal_budget_highly_fair(self, all_results):
        # Paper: EqualBudget is ~0.93-approximate envy-free worst case.
        assert all_results["EqualBudget"].envy_freeness >= 0.85
