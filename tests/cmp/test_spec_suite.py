"""The 24-application suite and its class structure."""

import pytest

from repro.cmp import INTENDED_CLASS, SPEC_SUITE, app_by_name, apps_in_class, spec_suite


class TestSuiteComposition:
    def test_24_applications(self):
        assert len(SPEC_SUITE) == 24

    def test_six_per_class(self):
        for cls in "CPBN":
            assert len(apps_in_class(cls)) == 6

    def test_names_unique(self):
        names = [a.name for a in SPEC_SUITE]
        assert len(set(names)) == 24

    def test_suite_labels(self):
        assert all(a.suite in ("spec2000", "spec2006") for a in SPEC_SUITE)

    def test_spec_suite_returns_fresh_list(self):
        a = spec_suite()
        a.clear()
        assert len(spec_suite()) == 24

    def test_lookup(self):
        assert app_by_name("mcf").name == "mcf"
        with pytest.raises(KeyError):
            app_by_name("doom")

    def test_paper_applications_present(self):
        # The apps named in the paper's text and figures.
        for name in ("mcf", "vpr", "swim", "apsi", "hmmer", "sixtrack"):
            assert INTENDED_CLASS[app_by_name(name).name] in "CPBN"

    def test_mcf_working_set_is_1_5mb(self):
        # Figure 2's anchor: mcf's cliff sits at 1.5 MB.
        mcf = app_by_name("mcf")
        assert mcf.mrc.ws_bytes == 1536 * 1024


class TestParameterSanity:
    def test_cpi_in_ooo_range(self):
        # A 4-wide out-of-order core: compute CPI in [0.25, 1.25].
        for app in SPEC_SUITE:
            assert 0.25 <= app.cpi_exe <= 1.25, app.name

    def test_activity_positive(self):
        for app in SPEC_SUITE:
            assert 0.3 <= app.activity <= 1.3, app.name

    def test_apki_nonnegative(self):
        for app in SPEC_SUITE:
            assert 0.0 <= app.apki <= 60.0, app.name

    def test_class_structure_reflects_intensity(self):
        # N apps are the most memory-intensive; P apps barely touch L2.
        p_apki = max(a.apki for a in apps_in_class("P"))
        n_apki = min(a.apki for a in apps_in_class("N"))
        assert p_apki < n_apki
