"""The per-core runtime utility monitor."""

import numpy as np
import pytest

from repro.cmp import CoreModel, RuntimeMonitor, cmp_8core
from repro.cmp.spec_suite import app_by_name


@pytest.fixture(scope="module")
def cfg():
    return cmp_8core()


def _monitor(cfg, name="vpr", seed=3, **kwargs):
    core = CoreModel(app_by_name(name), cfg)
    return RuntimeMonitor(core, cfg, rng=np.random.default_rng(seed), **kwargs)


class TestMissCurveEstimation:
    def test_prior_is_pessimistic(self, cfg):
        monitor = _monitor(cfg)
        assert np.all(monitor.miss_curve == 1.0)

    def test_estimate_close_to_true_after_observation(self, cfg):
        monitor = _monitor(cfg)
        for _ in range(6):
            monitor.observe_epoch(2e6)
        true = np.array(
            [
                monitor.core.app.mrc.miss_fraction((k + 1) * cfg.cache_region_bytes)
                for k in range(cfg.umon_max_regions)
            ]
        )
        np.testing.assert_allclose(monitor.miss_curve, true, atol=0.06)

    def test_smoothing_across_epochs(self, cfg):
        monitor = _monitor(cfg, history_weight=0.9)
        monitor.observe_epoch(2e6)
        first = monitor.miss_curve
        monitor.observe_epoch(2e6)
        second = monitor.miss_curve
        # Heavy history weight: the estimate moves slowly.
        assert np.max(np.abs(second - first)) < 0.2

    def test_zero_instruction_epoch_keeps_estimate(self, cfg):
        monitor = _monitor(cfg)
        monitor.observe_epoch(2e6)
        before = monitor.miss_curve
        monitor.observe_epoch(0.0)
        np.testing.assert_allclose(monitor.miss_curve, before)


class TestCpiEstimate:
    def test_noisy_but_near_truth(self, cfg):
        monitor = _monitor(cfg, cpi_noise_std=0.05)
        estimates = []
        for _ in range(30):
            monitor.observe_epoch(1e6)
            estimates.append(monitor.cpi_estimate)
        true = monitor.core.app.cpi_exe
        assert np.mean(estimates) == pytest.approx(true, rel=0.05)
        assert np.std(estimates) > 0.0


class TestEstimatedUtility:
    def test_concave_along_axes(self, cfg):
        monitor = _monitor(cfg, name="mcf")
        for _ in range(3):
            monitor.observe_epoch(2e6)
        u = monitor.estimated_utility()
        assert np.all(np.diff(u.values, n=2, axis=0) <= 1e-9)
        assert np.all(np.diff(u.values, n=2, axis=1) <= 1e-9)

    def test_cached_within_epoch(self, cfg):
        monitor = _monitor(cfg)
        monitor.observe_epoch(2e6)
        assert monitor.estimated_utility() is monitor.estimated_utility()

    def test_invalidated_by_new_epoch(self, cfg):
        monitor = _monitor(cfg)
        monitor.observe_epoch(2e6)
        u1 = monitor.estimated_utility()
        monitor.observe_epoch(2e6)
        assert monitor.estimated_utility() is not u1

    def test_estimate_tracks_true_utility(self, cfg):
        monitor = _monitor(cfg, name="vpr")
        for _ in range(6):
            monitor.observe_epoch(2e6)
        from repro.cmp.utility_builder import build_true_utility, extra_capacity_for

        true = build_true_utility(monitor.core, cfg)
        est = monitor.estimated_utility()
        cache_cap, power_cap = extra_capacity_for(monitor.core, cfg)
        for c in (0.0, cache_cap / 2, cache_cap):
            for p in (0.0, power_cap / 2, power_cap):
                assert est.value((c, p)) == pytest.approx(
                    true.value((c, p)), abs=0.12
                )
