"""Miss-rate-curve families and application profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmp import KB, MB, AppProfile, CliffMRC, FlatMRC, MixtureMRC, Phase, PowerLawMRC

_sizes = st.floats(min_value=0.0, max_value=8.0 * MB)


def _mrcs():
    return st.sampled_from(
        [
            PowerLawMRC(0.8, 0.1, 256 * KB, 1.2),
            CliffMRC(0.9, 0.05, 1536 * KB, 15.0),
            FlatMRC(0.5),
            MixtureMRC(
                components=(PowerLawMRC(0.7, 0.1, 128 * KB), FlatMRC(0.4)),
                weights=(0.5, 0.5),
            ),
        ]
    )


class TestMRCShapes:
    @given(_mrcs(), _sizes, _sizes)
    @settings(max_examples=100, deadline=None)
    def test_non_increasing(self, mrc, a, b):
        lo, hi = sorted((a, b))
        assert mrc.miss_fraction(hi) <= mrc.miss_fraction(lo) + 1e-9

    @given(_mrcs(), _sizes)
    @settings(max_examples=100, deadline=None)
    def test_within_floor_and_ceiling(self, mrc, s):
        m = mrc.miss_fraction(s)
        assert mrc.floor - 1e-9 <= m <= mrc.ceiling + 1e-9

    def test_power_law_half_point(self):
        mrc = PowerLawMRC(0.9, 0.1, 512 * KB, 1.0)
        # At s_half the capacity-sensitive part is halved.
        assert mrc.miss_fraction(512 * KB) == pytest.approx(0.1 + 0.8 / 2.0)

    def test_cliff_location(self):
        mrc = CliffMRC(0.9, 0.05, 1536 * KB, 18.0)
        assert mrc.miss_fraction(1 * MB) > 0.8
        assert mrc.miss_fraction(2 * MB) < 0.1
        # At the working set the logistic is at its midpoint.
        mid = (0.9 + 0.05) / 2.0
        assert mrc.miss_fraction(1536 * KB) == pytest.approx(mid, abs=0.01)

    def test_flat_is_flat(self):
        mrc = FlatMRC(0.6)
        assert mrc.miss_fraction(0) == mrc.miss_fraction(8 * MB) == 0.6
        assert mrc.floor == mrc.ceiling == 0.6

    def test_mixture_weights(self):
        mix = MixtureMRC(
            components=(FlatMRC(1.0), FlatMRC(0.0)), weights=(0.25, 0.75)
        )
        assert mix.miss_fraction(0) == pytest.approx(0.25)

    def test_mixture_validation(self):
        with pytest.raises(ValueError):
            MixtureMRC(components=(FlatMRC(0.5),), weights=(0.5,))
        with pytest.raises(ValueError):
            MixtureMRC(components=(), weights=())


class TestSurvival:
    def test_endpoints(self):
        mrc = PowerLawMRC(0.9, 0.1, 256 * KB)
        assert mrc.survival(0.0) == pytest.approx(1.0)
        assert mrc.survival(64 * MB) < 0.05

    def test_flat_mrc_has_no_capacity_sensitive_accesses(self):
        assert FlatMRC(0.5).survival(1 * MB) == 0.0

    def test_survival_table_monotone(self):
        mrc = CliffMRC(0.9, 0.05, 1 * MB, 10.0)
        sizes, surv = mrc.survival_table()
        assert np.all(np.diff(surv) <= 1e-12)
        assert surv[0] == pytest.approx(1.0, abs=1e-6)


class TestStackDistanceSampling:
    def test_sampler_reproduces_mrc(self, rng):
        # Empirical check: the fraction of sampled distances exceeding s
        # must match the absolute miss fraction at s.
        mrc = PowerLawMRC(0.8, 0.1, 256 * KB, 1.0)
        distances = mrc.sample_stack_distances(rng, 40000)
        for s in (128 * KB, 512 * KB, 1 * MB):
            expected = mrc.miss_fraction(s)
            observed = float(np.mean(~(distances <= s)))
            assert observed == pytest.approx(expected, abs=0.02)

    def test_compulsory_misses_are_infinite(self, rng):
        mrc = PowerLawMRC(0.8, 0.4, 256 * KB)
        distances = mrc.sample_stack_distances(rng, 20000)
        inf_fraction = float(np.mean(np.isinf(distances)))
        assert inf_fraction == pytest.approx(mrc.floor, abs=0.02)

    def test_flat_mrc_splits_always_hit_and_always_miss(self, rng):
        # A flat MRC of 0.5: half the accesses miss at any size (inf
        # distance), half hit at any size (zero distance).
        distances = FlatMRC(0.5).sample_stack_distances(rng, 4000)
        inf_fraction = float(np.mean(np.isinf(distances)))
        assert inf_fraction == pytest.approx(0.5, abs=0.03)
        assert np.all(np.isinf(distances) | (distances == 0.0))

    def test_precomputed_table_matches(self, rng):
        mrc = CliffMRC(0.9, 0.1, 512 * KB, 10.0)
        table = mrc.survival_table()
        d1 = mrc.sample_stack_distances(np.random.default_rng(7), 5000, table=table)
        d2 = mrc.sample_stack_distances(np.random.default_rng(7), 5000)
        np.testing.assert_allclose(d1, d2, rtol=1e-6)


class TestAppProfile:
    def test_misses_per_instruction(self):
        app = AppProfile(
            name="x", suite="test", cpi_exe=0.5, apki=20.0, mrc=FlatMRC(0.5)
        )
        assert app.misses_per_instruction(1 * MB) == pytest.approx(0.01)

    def test_min_cache(self):
        app = AppProfile(name="x", suite="t", cpi_exe=0.5, apki=1.0, mrc=FlatMRC(0.1))
        assert app.min_cache_bytes() == 128 * KB

    def test_phase_fields(self):
        phase = Phase(duration_ms=2.0, apki_scale=1.5)
        assert phase.duration_ms == 2.0
        assert phase.cpi_scale == 1.0
