"""Market utility construction from the core models."""

import numpy as np
import pytest

from repro.cmp import cmp_8core, CoreModel
from repro.cmp.spec_suite import app_by_name
from repro.cmp.utility_builder import (
    build_true_utility,
    build_utility_from_miss_curve,
    convexify_grid,
    extra_capacity_for,
)


@pytest.fixture(scope="module")
def cfg():
    return cmp_8core()


@pytest.fixture(scope="module")
def mcf_core(cfg):
    return CoreModel(app_by_name("mcf"), cfg)


def _axis_concave(values, axis):
    """Second differences along one axis must be <= 0 (concave)."""
    d2 = np.diff(values, n=2, axis=axis)
    return np.all(d2 <= 1e-9)


class TestConvexifyGrid:
    def test_output_dominates_input(self, cfg, mcf_core):
        u_raw = build_true_utility(mcf_core, cfg, convexify=False)
        u_hull = build_true_utility(mcf_core, cfg, convexify=True)
        assert np.all(u_hull.values >= u_raw.values - 1e-12)

    def test_axis_concavity(self, cfg, mcf_core):
        u = build_true_utility(mcf_core, cfg)
        assert _axis_concave(u.values, 0)
        assert _axis_concave(u.values, 1)

    def test_idempotent(self):
        xs = np.arange(5.0)
        ys = np.arange(3.0)
        vals = np.sqrt(xs[:, None] + 1.0) + np.sqrt(ys[None, :] + 1.0)
        once = convexify_grid(xs, ys, vals)
        np.testing.assert_allclose(once, vals, atol=1e-9)


class TestTrueUtility:
    def test_raw_mcf_has_cliff_hulled_does_not(self, cfg, mcf_core):
        raw = build_true_utility(mcf_core, cfg, convexify=False)
        cache_cap, power_cap = extra_capacity_for(mcf_core, cfg)
        mid = raw.value((cache_cap / 2.0, power_cap))
        hulled = build_true_utility(mcf_core, cfg).value((cache_cap / 2.0, power_cap))
        assert hulled > mid + 0.1  # the hull bridges the cliff

    def test_normalized_to_one_at_caps(self, cfg, mcf_core):
        u = build_true_utility(mcf_core, cfg)
        cache_cap, power_cap = extra_capacity_for(mcf_core, cfg)
        assert u.value((cache_cap, power_cap)) == pytest.approx(1.0, abs=1e-6)

    def test_nondecreasing_along_axes(self, cfg, mcf_core):
        u = build_true_utility(mcf_core, cfg)
        assert np.all(np.diff(u.values, axis=0) >= -1e-9)
        assert np.all(np.diff(u.values, axis=1) >= -1e-9)

    def test_matches_operating_points_at_grid(self, cfg):
        # Un-convexified grid values must equal the analytic model.
        core = CoreModel(app_by_name("vpr"), cfg)
        u = build_true_utility(core, cfg, convexify=False)
        min_cache = float(cfg.cache_region_bytes)
        for ci in (0, 5, 15):
            for pj in (0, 8, 16):
                extra_c = u.xs[ci]
                extra_p = u.ys[pj]
                point = core.operating_point(
                    min_cache + extra_c, core.min_power_watts() + extra_p
                )
                assert u.values[ci, pj] == pytest.approx(point.utility, rel=1e-6)


class TestMonitoredUtility:
    def test_exact_curve_matches_true_utility(self, cfg, mcf_core):
        # Feeding the *true* miss curve through the monitored path must
        # reproduce the true utility (modulo interpolation grid).
        regions = np.arange(1, cfg.umon_max_regions + 1)
        true_curve = np.array(
            [
                mcf_core.app.mrc.miss_fraction(r * cfg.cache_region_bytes)
                for r in regions
            ]
        )
        est = build_utility_from_miss_curve(mcf_core, cfg, true_curve)
        true = build_true_utility(mcf_core, cfg)
        cache_cap, power_cap = extra_capacity_for(mcf_core, cfg)
        for c in (0.0, cache_cap / 2, cache_cap):
            for p in (0.0, power_cap / 2, power_cap):
                assert est.value((c, p)) == pytest.approx(
                    true.value((c, p)), abs=0.02
                )

    def test_cpi_estimate_shifts_utility(self, cfg, mcf_core):
        curve = np.linspace(0.9, 0.1, cfg.umon_max_regions)
        a = build_utility_from_miss_curve(mcf_core, cfg, curve, cpi_estimate=0.5)
        b = build_utility_from_miss_curve(mcf_core, cfg, curve, cpi_estimate=1.5)
        # Both normalized, but the balance between cache and power shifts.
        assert a.values.shape == b.values.shape
        assert not np.allclose(a.values, b.values)


class TestExtraCapacity:
    def test_caps(self, cfg, mcf_core):
        cache_cap, power_cap = extra_capacity_for(mcf_core, cfg)
        assert cache_cap == cfg.umon_max_bytes - cfg.cache_region_bytes
        assert power_cap == pytest.approx(
            mcf_core.max_power_watts() - mcf_core.min_power_watts()
        )
