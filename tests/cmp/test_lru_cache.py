"""The concrete LRU cache and the stream-vs-model validation loop."""

import numpy as np
import pytest

from repro.cmp import KB, MB
from repro.cmp.application import PowerLawMRC
from repro.cmp.lru_cache import AddressStreamGenerator, SetAssociativeCache


class TestSetAssociativeCache:
    def test_geometry(self):
        cache = SetAssociativeCache(64 * KB, associativity=4, line_bytes=64)
        assert cache.num_sets == 256
        assert cache.capacity_bytes == 64 * KB

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, associativity=4, line_bytes=64)

    def test_hit_after_insert(self):
        cache = SetAssociativeCache(4 * KB, associativity=2, line_bytes=64)
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        # Associativity 2 with 1 set: third distinct line evicts the LRU.
        cache = SetAssociativeCache(128, associativity=2, line_bytes=64)
        a, b, c = 0, 128, 256  # all map to set 0 (line % 1 == 0)
        cache.access(a)
        cache.access(b)
        cache.access(a)      # a becomes MRU
        cache.access(c)      # evicts b (LRU)
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_partitions_are_isolated_tags(self):
        cache = SetAssociativeCache(4 * KB, associativity=4, line_bytes=64)
        cache.access(0x40, partition=0)
        # Same address from another partition is a distinct line.
        assert cache.access(0x40, partition=1) is False
        assert cache.partition_occupancy(0) == 1
        assert cache.partition_occupancy(1) == 1

    def test_partition_quota_enforced(self):
        # One set of 4 ways; partition 0 is limited to 2 lines.
        cache = SetAssociativeCache(
            256, associativity=4, line_bytes=64, partition_targets={0: 2}
        )
        for k in range(4):
            cache.access(k * 256, partition=0)
        assert cache.partition_occupancy(0) == 2

    def test_quota_partition_cannot_evict_others(self):
        cache = SetAssociativeCache(
            256, associativity=4, line_bytes=64, partition_targets={1: 1}
        )
        cache.access(0 * 256, partition=0)
        cache.access(1 * 256, partition=0)
        cache.access(2 * 256, partition=1)
        cache.access(3 * 256, partition=1)  # must evict partition 1's own
        assert cache.partition_occupancy(0) == 2
        assert cache.partition_occupancy(1) == 1

    def test_run_returns_delta_stats(self):
        cache = SetAssociativeCache(4 * KB, associativity=4, line_bytes=64)
        stats = cache.run(np.array([0, 64, 0, 64]))
        assert stats.accesses == 4
        assert stats.hits == 2
        assert stats.miss_rate == pytest.approx(0.5)

    def test_per_partition_stats(self):
        cache = SetAssociativeCache(4 * KB, associativity=4, line_bytes=64)
        cache.access(0, partition=3)
        cache.access(0, partition=3)
        assert cache.partition_stats[3].hits == 1


class TestAddressStreamValidation:
    """Close the loop: generated streams hit real caches like the MRC says."""

    @pytest.fixture(scope="class")
    def mrc(self):
        return PowerLawMRC(0.8, 0.1, 64 * KB, 1.0)

    def test_measured_miss_rate_matches_model(self, mrc):
        rng = np.random.default_rng(5)
        gen = AddressStreamGenerator(mrc, line_bytes=64, max_bytes=1 * MB)
        addresses = gen.generate(rng, 30000)
        for capacity in (32 * KB, 128 * KB, 512 * KB):
            cache = SetAssociativeCache(capacity, associativity=16, line_bytes=64)
            warm = 5000
            cache.run(addresses[:warm])
            stats = cache.run(addresses[warm:])
            expected = mrc.miss_fraction(capacity)
            # Set-associative conflicts add noise on top of the model.
            assert stats.miss_rate == pytest.approx(expected, abs=0.07), capacity

    def test_stream_reuses_lines(self, mrc):
        rng = np.random.default_rng(6)
        gen = AddressStreamGenerator(mrc, line_bytes=64)
        addresses = gen.generate(rng, 2000)
        assert len(np.unique(addresses)) < len(addresses)
