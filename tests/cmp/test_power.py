"""The DVFS power model and its inverse."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmp import DVFSPowerModel, RAPL_QUANTUM_WATTS

_freqs = st.floats(min_value=0.8, max_value=4.0)


class TestVoltage:
    def test_envelope_endpoints(self):
        m = DVFSPowerModel()
        assert m.voltage(0.8) == pytest.approx(0.8)
        assert m.voltage(4.0) == pytest.approx(1.2)

    def test_clamped_outside_envelope(self):
        m = DVFSPowerModel()
        assert m.voltage(0.1) == pytest.approx(0.8)
        assert m.voltage(9.0) == pytest.approx(1.2)

    @given(_freqs, _freqs)
    @settings(max_examples=60, deadline=None)
    def test_monotone(self, a, b):
        m = DVFSPowerModel()
        lo, hi = sorted((a, b))
        assert m.voltage(lo) <= m.voltage(hi) + 1e-12


class TestPower:
    def test_dynamic_formula(self):
        m = DVFSPowerModel(effective_capacitance=2.0)
        # activity * C * V^2 * f at the top of the envelope.
        assert m.dynamic_power(4.0, activity=0.5) == pytest.approx(0.5 * 2.0 * 1.44 * 4.0)

    def test_peak_power_exceeds_tdp_share(self):
        # The 65 nm calibration: a fully active 4 GHz core draws well
        # over the 10 W TDP share, making power a contended resource.
        m = DVFSPowerModel()
        assert m.max_power(activity=1.0) > 15.0

    def test_activity_scales_dynamic_only(self):
        m = DVFSPowerModel()
        lo = m.total_power(2.0, activity=0.5)
        hi = m.total_power(2.0, activity=1.0)
        assert hi - lo == pytest.approx(m.dynamic_power(2.0, 0.5))

    @given(_freqs, _freqs)
    @settings(max_examples=60, deadline=None)
    def test_total_power_monotone_in_frequency(self, a, b):
        m = DVFSPowerModel()
        lo, hi = sorted((a, b))
        assert m.total_power(lo) <= m.total_power(hi) + 1e-12

    def test_static_power_grows_with_temperature(self):
        m = DVFSPowerModel()
        assert m.static_power(2.0, 100.0) > m.static_power(2.0, 60.0)

    def test_static_power_reference_point(self):
        m = DVFSPowerModel()
        assert m.static_power(4.0, m.reference_temperature_c) == pytest.approx(
            m.leakage_coefficient * 1.2
        )


class TestInverse:
    @given(_freqs)
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, f):
        m = DVFSPowerModel()
        watts = m.total_power(f, activity=0.9)
        assert m.frequency_for_power(watts, activity=0.9) == pytest.approx(f, abs=1e-6)

    def test_underpowered_returns_min_frequency(self):
        m = DVFSPowerModel()
        assert m.frequency_for_power(0.0) == 0.8

    def test_overpowered_returns_max_frequency(self):
        m = DVFSPowerModel()
        assert m.frequency_for_power(1e6) == 4.0

    def test_more_watts_more_frequency(self):
        m = DVFSPowerModel()
        f1 = m.frequency_for_power(5.0)
        f2 = m.frequency_for_power(10.0)
        assert f2 > f1


def test_rapl_quantum_matches_intel():
    assert RAPL_QUANTUM_WATTS == 0.125
