"""The analytic compute-phase + memory-phase core model."""

import numpy as np
import pytest

from repro.cmp import KB, MB, CoreModel, cmp_8core
from repro.cmp.spec_suite import app_by_name


@pytest.fixture(scope="module")
def mcf_core():
    return CoreModel(app_by_name("mcf"), cmp_8core())


@pytest.fixture(scope="module")
def hmmer_core():
    return CoreModel(app_by_name("hmmer"), cmp_8core())


class TestPerformance:
    def test_monotone_in_cache(self, mcf_core):
        perfs = [
            mcf_core.performance_gips(s * 128 * KB, 2.0) for s in range(1, 17)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(perfs, perfs[1:]))

    def test_monotone_in_frequency(self, mcf_core):
        perfs = [mcf_core.performance_gips(1 * MB, f) for f in (0.8, 2.0, 4.0)]
        assert perfs[0] < perfs[1] < perfs[2]

    def test_cache_clamped_beyond_umon_range(self, mcf_core):
        # Footnote 3: beyond 16 regions no additional utility.
        assert mcf_core.performance_gips(2 * MB, 2.0) == pytest.approx(
            mcf_core.performance_gips(16 * MB, 2.0)
        )

    def test_decomposition(self, hmmer_core):
        # Time per instruction = cpi/f + mpi * latency.
        app = hmmer_core.app
        t = hmmer_core.time_per_instruction_ns(1 * MB, 2.0)
        expected = app.cpi_exe / 2.0 + app.misses_per_instruction(
            1 * MB
        ) * hmmer_core.memory_latency_ns
        assert t == pytest.approx(expected)

    def test_phase_scales(self, hmmer_core):
        base = hmmer_core.time_per_instruction_ns(1 * MB, 2.0)
        heavier = hmmer_core.time_per_instruction_ns(
            1 * MB, 2.0, cpi_scale=2.0, apki_scale=2.0
        )
        assert heavier > base

    def test_latency_override(self, mcf_core):
        slow = mcf_core.performance_gips(256 * KB, 2.0, latency_ns=200.0)
        fast = mcf_core.performance_gips(256 * KB, 2.0, latency_ns=20.0)
        assert slow < fast


class TestUtility:
    def test_normalized_to_alone(self, mcf_core):
        cfg = mcf_core.config
        u = mcf_core.utility(cfg.umon_max_bytes, cfg.core.max_frequency_ghz)
        assert u == pytest.approx(1.0)

    def test_within_unit_interval(self, mcf_core):
        for s in (128 * KB, 512 * KB, 2 * MB):
            for f in (0.8, 2.4, 4.0):
                assert 0.0 < mcf_core.utility(s, f) <= 1.0 + 1e-12

    def test_mcf_figure2_anchor(self, mcf_core):
        # Figure 2: mcf's utility is ~0.2 below its working set and ~1.0
        # once 12 regions (1.5 MB) fit.
        low = mcf_core.utility(4 * 128 * KB, 4.0)
        high = mcf_core.utility(16 * 128 * KB, 4.0)
        assert low < 0.3
        assert high == pytest.approx(1.0, abs=0.01)


class TestPowerIntegration:
    def test_operating_point_consistency(self, hmmer_core):
        point = hmmer_core.operating_point(1 * MB, 8.0)
        assert 0.8 <= point.frequency_ghz <= 4.0
        assert point.power_watts <= 8.0 + 1e-6
        assert point.utility == pytest.approx(
            hmmer_core.performance_gips(1 * MB, point.frequency_ghz)
            / hmmer_core.alone_performance_gips
        )

    def test_min_power_runs_at_min_frequency(self, hmmer_core):
        point = hmmer_core.operating_point(1 * MB, hmmer_core.min_power_watts())
        assert point.frequency_ghz == pytest.approx(0.8)

    def test_power_beyond_max_caps_at_4ghz(self, hmmer_core):
        point = hmmer_core.operating_point(1 * MB, 1e3)
        assert point.frequency_ghz == pytest.approx(4.0)

    def test_activity_differentiates_power(self, mcf_core, hmmer_core):
        # hmmer's activity (0.98) makes its watts dearer than mcf's (0.70).
        assert hmmer_core.max_power_watts() > mcf_core.max_power_watts()
