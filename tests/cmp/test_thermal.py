"""The lumped RC thermal model."""

import pytest

from repro.cmp import ThermalModel, ThermalNode


class TestThermalNode:
    def test_steady_state(self):
        node = ThermalNode(resistance_k_per_w=3.5, ambient_c=45.0)
        assert node.steady_state_c(10.0) == pytest.approx(80.0)

    def test_converges_to_steady_state(self):
        node = ThermalNode(temperature_c=45.0)
        for _ in range(1000):
            node.step(10.0, 0.01)
        assert node.temperature_c == pytest.approx(node.steady_state_c(10.0), abs=0.1)

    def test_monotone_approach(self):
        node = ThermalNode(temperature_c=45.0)
        temps = [node.step(10.0, 0.001) for _ in range(20)]
        assert all(a <= b + 1e-9 for a, b in zip(temps, temps[1:]))

    def test_cooling(self):
        node = ThermalNode(temperature_c=95.0)
        node.step(0.0, 10.0)
        assert node.temperature_c == pytest.approx(node.ambient_c, abs=0.5)

    def test_unconditionally_stable_with_huge_dt(self):
        # The exponential integrator never overshoots, however large dt.
        node = ThermalNode(temperature_c=45.0)
        node.step(10.0, 1e6)
        assert node.temperature_c == pytest.approx(node.steady_state_c(10.0))


class TestThermalModel:
    def test_per_core_nodes(self):
        model = ThermalModel(4)
        temps = model.step([5.0, 10.0, 15.0, 20.0], 1.0)
        assert len(temps) == 4
        assert temps[3] > temps[0]

    def test_rejects_wrong_power_length(self):
        model = ThermalModel(2)
        with pytest.raises(ValueError):
            model.step([1.0], 0.1)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            ThermalModel(0)
