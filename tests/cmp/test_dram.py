"""DDR3-1600 timing and the contention model."""

import pytest

from repro.cmp import DDR3Timing, DRAMModel, ddr3_1600


class TestDDR3Timing:
    def test_ddr3_1600_parameters(self):
        t = ddr3_1600()
        assert t.clock_mhz == 800.0
        assert t.cl == t.trcd == t.trp == 11
        assert t.cycle_ns == pytest.approx(1.25)

    def test_latency_ordering(self):
        t = ddr3_1600()
        assert t.row_hit_ns() < t.row_closed_ns() < t.row_miss_ns()

    def test_component_values(self):
        t = ddr3_1600()
        assert t.row_hit_ns() == pytest.approx((11 + 4) * 1.25)
        assert t.row_miss_ns() == pytest.approx((11 + 11 + 11 + 4) * 1.25)


class TestDRAMModel:
    def test_uncontended_latency_is_mix(self):
        m = DRAMModel(row_hit_fraction=1.0, row_closed_fraction=0.0)
        assert m.uncontended_latency_ns() == pytest.approx(
            m.timing.row_hit_ns() + m.controller_overhead_ns
        )

    def test_peak_bandwidth_scales_with_channels(self):
        assert DRAMModel(channels=16).peak_bandwidth_gbps() == pytest.approx(
            8 * DRAMModel(channels=2).peak_bandwidth_gbps()
        )

    def test_ddr3_1600_channel_bandwidth(self):
        # 1600 MT/s x 8 bytes = 12.8 GB/s per channel.
        assert DRAMModel(channels=1).peak_bandwidth_gbps() == pytest.approx(12.8)

    def test_contention_monotone(self):
        m = DRAMModel(channels=2)
        lat = [m.latency_ns(bw) for bw in (0.0, 5.0, 10.0, 20.0)]
        assert all(a <= b for a, b in zip(lat, lat[1:]))
        assert lat[0] == pytest.approx(m.uncontended_latency_ns())

    def test_contention_capped(self):
        m = DRAMModel(channels=1)
        assert m.latency_ns(1e9) < 10 * m.uncontended_latency_ns()

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMModel(channels=0)
        with pytest.raises(ValueError):
            DRAMModel(row_hit_fraction=0.9, row_closed_fraction=0.3)
