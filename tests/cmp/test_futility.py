"""Futility Scaling partition control."""

import numpy as np
import pytest

from repro.cmp import MB, FutilityScalingController


class TestController:
    def test_converges_to_targets(self):
        ctrl = FutilityScalingController(4 * MB, 4)
        targets = np.array([0.5, 1.0, 1.5, 1.0]) * MB
        rates = np.array([10.0, 30.0, 5.0, 20.0])
        for _ in range(60):
            ctrl.step(targets, rates)
        assert ctrl.max_error_fraction(targets) < 0.02

    def test_capacity_conserved_every_epoch(self):
        ctrl = FutilityScalingController(4 * MB, 4)
        targets = np.array([0.5, 1.0, 1.5, 1.0]) * MB
        rates = np.array([1.0, 1.0, 1.0, 1.0])
        for _ in range(20):
            occ = ctrl.step(targets, rates)
            assert occ.sum() == pytest.approx(4 * MB, rel=1e-9)

    def test_slew_limit_respected(self):
        ctrl = FutilityScalingController(4 * MB, 2, max_slew_fraction=0.1)
        before = ctrl.occupancy_bytes.copy()
        after = ctrl.step(np.array([3.5 * MB, 0.5 * MB]), np.array([100.0, 1.0]))
        moved = np.abs(after - before).sum() / 2.0
        assert moved <= 0.1 * 4 * MB + 1e-6

    def test_tracks_target_changes(self):
        ctrl = FutilityScalingController(4 * MB, 2)
        rates = np.array([5.0, 5.0])
        for _ in range(40):
            ctrl.step(np.array([3.0 * MB, 1.0 * MB]), rates)
        assert ctrl.max_error_fraction(np.array([3.0 * MB, 1.0 * MB])) < 0.02
        for _ in range(40):
            ctrl.step(np.array([1.0 * MB, 3.0 * MB]), rates)
        assert ctrl.max_error_fraction(np.array([1.0 * MB, 3.0 * MB])) < 0.02

    def test_skewed_access_rates_still_converge(self):
        # A partition with a tiny access rate must still reach a large
        # target (the scaling factor compensates).
        ctrl = FutilityScalingController(4 * MB, 2)
        targets = np.array([3.0 * MB, 1.0 * MB])
        rates = np.array([0.1, 100.0])
        for _ in range(200):
            ctrl.step(targets, rates)
        assert ctrl.max_error_fraction(targets) < 0.05

    def test_storage_overhead_near_paper(self):
        ctrl = FutilityScalingController(4 * MB, 8)
        assert ctrl.storage_overhead_fraction == pytest.approx(0.015, abs=0.005)

    def test_validation(self):
        with pytest.raises(ValueError):
            FutilityScalingController(0.0, 2)
        with pytest.raises(ValueError):
            FutilityScalingController(1.0, 0)
        with pytest.raises(ValueError):
            FutilityScalingController(1.0, 2, gain=0.0)
