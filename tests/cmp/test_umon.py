"""UMON shadow tags."""

import numpy as np
import pytest

from repro.cmp import KB, UMONShadowTags
from repro.cmp.config import CACHE_REGION_BYTES


class TestObserve:
    def test_exact_curve_from_known_distances(self):
        umon = UMONShadowTags(max_regions=4, sampling_rate=1)
        region = CACHE_REGION_BYTES
        # Four accesses with distances in buckets 0, 1, 2 and overflow.
        umon.observe(np.array([0.5 * region, 1.5 * region, 2.5 * region, np.inf]))
        curve = umon.miss_curve()
        # With 1 region: only the first access hits -> 3/4 miss.
        np.testing.assert_allclose(curve, [0.75, 0.5, 0.25, 0.25])

    def test_sampling_rate_thins_observations(self):
        umon = UMONShadowTags(max_regions=2, sampling_rate=32)
        umon.observe(np.zeros(3200))
        assert umon.total_accesses == 3200
        assert umon.sampled_accesses == 100

    def test_sampling_rate_spans_batches(self):
        umon = UMONShadowTags(max_regions=2, sampling_rate=32)
        for _ in range(100):
            umon.observe(np.zeros(16))  # batches smaller than the rate
        assert umon.sampled_accesses == 50

    def test_overflow_accounting(self):
        umon = UMONShadowTags(max_regions=2, sampling_rate=1)
        umon.observe(np.array([np.inf, 10 * CACHE_REGION_BYTES, 0.0]))
        assert umon.overflow == 2
        np.testing.assert_allclose(umon.miss_curve(), [2 / 3, 2 / 3])

    def test_reset(self):
        umon = UMONShadowTags(sampling_rate=1)
        umon.observe(np.zeros(10))
        umon.reset()
        assert umon.sampled_accesses == 0
        np.testing.assert_allclose(umon.miss_curve(), 1.0)

    def test_empty_observation(self):
        umon = UMONShadowTags()
        umon.observe(np.array([]))
        assert umon.total_accesses == 0


class TestMissCurve:
    def test_monotone_non_increasing(self, rng):
        umon = UMONShadowTags(sampling_rate=1)
        umon.observe(rng.uniform(0, 4 * 1024 * 1024, size=5000))
        curve = umon.miss_curve()
        assert np.all(np.diff(curve) <= 1e-12)

    def test_no_observations_pessimistic(self):
        assert np.all(UMONShadowTags().miss_curve() == 1.0)

    def test_misses_at(self):
        umon = UMONShadowTags(max_regions=4, sampling_rate=1)
        umon.observe(np.array([0.0, np.inf]))
        assert umon.misses_at(1) == pytest.approx(0.5)
        assert umon.misses_at(0) == 1.0
        assert umon.misses_at(99) == pytest.approx(0.5)


class TestOverheads:
    def test_storage_near_paper_figure(self):
        # Section 5: 3.6 kB per core with stack distance 16 and rate 32.
        umon = UMONShadowTags(max_regions=16, sampling_rate=32)
        assert umon.storage_overhead_bytes == pytest.approx(3.6 * 1024, rel=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            UMONShadowTags(max_regions=0)
        with pytest.raises(ValueError):
            UMONShadowTags(sampling_rate=0)
