"""The whole-chip model and its market-facing problem."""

import numpy as np
import pytest

from repro.cmp import MB, ChipModel, cmp_8core
from repro.cmp.spec_suite import app_by_name
from repro.exceptions import MarketConfigurationError
from repro.workloads import paper_bbpc_bundle


class TestChipModel:
    def test_requires_one_app_per_core(self):
        with pytest.raises(MarketConfigurationError):
            ChipModel(cmp_8core(), [app_by_name("mcf")] * 3)

    def test_free_minimums(self, bbpc_chip):
        assert bbpc_chip.free.cache_bytes == 128 * 1024
        # Every core's free power runs it at 800 MHz.
        for core, watts in zip(bbpc_chip.cores, bbpc_chip.free.power_watts):
            assert core.frequency_for_power(watts) == pytest.approx(0.8)

    def test_extra_capacities(self, bbpc_chip):
        # 4 MB minus 8 free regions = 3 MB of market cache.
        assert bbpc_chip.extra_cache_capacity == 3 * MB
        assert 0.0 < bbpc_chip.extra_power_capacity < 80.0


class TestBuildProblem:
    def test_shapes_and_names(self, bbpc_problem):
        assert bbpc_problem.num_players == 8
        assert bbpc_problem.num_resources == 2
        assert list(bbpc_problem.resource_names) == ["cache_bytes", "power_watts"]
        assert bbpc_problem.player_names[4] == "mcf"

    def test_quanta_are_region_and_rapl(self, bbpc_problem):
        np.testing.assert_allclose(bbpc_problem.quanta, [128 * 1024, 0.125])

    def test_per_player_caps(self, bbpc_chip, bbpc_problem):
        caps = bbpc_problem.per_player_caps
        # Cache cap: 2 MB monitorable minus the free region.
        assert np.all(caps[:, 0] == 15 * 128 * 1024)
        for i, core in enumerate(bbpc_chip.cores):
            assert caps[i, 1] == pytest.approx(
                core.max_power_watts() - core.min_power_watts()
            )

    def test_custom_utilities_accepted(self, bbpc_chip):
        from repro.utility import LogUtility

        utilities = [LogUtility([1.0, 1.0])] * 8
        problem = bbpc_chip.build_problem(utilities=utilities)
        assert problem.utilities[0] is utilities[0]


class TestOperatingPoints:
    def test_roundtrip(self, bbpc_chip):
        n = bbpc_chip.config.num_cores
        extras = np.column_stack(
            [
                np.full(n, bbpc_chip.extra_cache_capacity / n),
                np.full(n, bbpc_chip.extra_power_capacity / n),
            ]
        )
        points = bbpc_chip.operating_points(extras)
        assert len(points) == n
        for p in points:
            assert 0.8 <= p.frequency_ghz <= 4.0
            assert 0.0 < p.utility <= 1.0

    def test_true_utilities_monotone_in_extras(self, bbpc_chip):
        n = bbpc_chip.config.num_cores
        small = np.tile([0.0, 0.0], (n, 1))
        big = np.column_stack(
            [
                np.full(n, bbpc_chip.extra_cache_capacity / n),
                np.full(n, bbpc_chip.extra_power_capacity / n),
            ]
        )
        assert np.all(
            bbpc_chip.true_utilities(big) >= bbpc_chip.true_utilities(small) - 1e-9
        )

    def test_total_power_within_budget_at_equal_share(self, bbpc_chip):
        n = bbpc_chip.config.num_cores
        extras = np.column_stack(
            [
                np.full(n, bbpc_chip.extra_cache_capacity / n),
                np.full(n, bbpc_chip.extra_power_capacity / n),
            ]
        )
        assert bbpc_chip.total_power(extras) <= bbpc_chip.config.power_budget_watts + 1e-6

    def test_rejects_bad_shape(self, bbpc_chip):
        with pytest.raises(MarketConfigurationError):
            bbpc_chip.operating_points(np.zeros((3, 2)))
