"""Application-granularity (thread-group) allocation."""

import numpy as np
import pytest

from repro.cmp import ChipModel, cmp_8core
from repro.cmp.groups import (
    GroupUtility,
    build_grouped_problem,
    expand_group_allocation,
)
from repro.core import EqualBudget
from repro.exceptions import MarketConfigurationError
from repro.utility import LinearUtility
from repro.workloads import paper_bbpc_bundle


@pytest.fixture(scope="module")
def chip():
    return ChipModel(cmp_8core(), paper_bbpc_bundle().apps)


#: BBPC layout: apsi, apsi, swim, swim, mcf, mcf, hmmer, sixtrack —
#: pairing the copies gives 6 application-level players.
GROUPS = [0, 0, 1, 1, 2, 2, 3, 4]


class TestGroupUtility:
    def test_sum_of_member_shares(self):
        u = GroupUtility([LinearUtility([2.0]), LinearUtility([4.0])])
        # Each member sees half the bundle: 2*2 + 4*2 = 12.
        assert u.value([4.0]) == pytest.approx(12.0)

    def test_gradient_matches_numeric(self):
        u = GroupUtility([LinearUtility([2.0, 1.0]), LinearUtility([4.0, 3.0])])
        np.testing.assert_allclose(u.gradient([4.0, 2.0]), [3.0, 2.0])

    def test_validation(self):
        with pytest.raises(MarketConfigurationError):
            GroupUtility([])
        with pytest.raises(MarketConfigurationError):
            GroupUtility([LinearUtility([1.0]), LinearUtility([1.0, 1.0])])


class TestGroupedProblem:
    def test_player_per_group(self, chip):
        problem = build_grouped_problem(chip, GROUPS)
        assert problem.num_players == 5
        assert problem.player_names[0] == "apsix2"
        assert problem.player_names[3] == "hmmer"

    def test_validation(self, chip):
        with pytest.raises(MarketConfigurationError):
            build_grouped_problem(chip, [0, 1])
        with pytest.raises(MarketConfigurationError):
            build_grouped_problem(chip, [0, 0, 0, 0, 2, 2, 2, 2])  # gap

    def test_market_clears(self, chip):
        problem = build_grouped_problem(chip, GROUPS)
        result = EqualBudget().allocate(problem)
        np.testing.assert_allclose(
            result.allocations.sum(axis=0), problem.capacities, rtol=1e-6
        )
        assert result.converged

    def test_expand_even_division(self, chip):
        problem = build_grouped_problem(chip, GROUPS)
        result = EqualBudget().allocate(problem)
        per_core = expand_group_allocation(result.allocations, GROUPS)
        assert per_core.shape == (8, 2)
        # Cores 0 and 1 (same group) get identical shares, each half.
        np.testing.assert_allclose(per_core[0], per_core[1])
        np.testing.assert_allclose(per_core[0] * 2, result.allocations[0])
        # Total is conserved.
        np.testing.assert_allclose(
            per_core.sum(axis=0), result.allocations.sum(axis=0)
        )

    def test_group_fairness_is_per_application(self, chip):
        # With equal budgets per *application*, single-threaded hmmer
        # has the same purse as two-thread apsi — the Section 5 policy.
        problem = build_grouped_problem(chip, GROUPS)
        result = EqualBudget().allocate(problem)
        assert result.envy_freeness >= 0.828 - 1e-9  # Lemma 3 still applies
