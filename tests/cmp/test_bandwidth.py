"""The 3-resource (cache, power, bandwidth) extension."""

import numpy as np
import pytest

from repro.cmp import ChipModel, CoreModel, cmp_8core
from repro.cmp.bandwidth import (
    BandwidthAwareUtility,
    BandwidthModel,
    build_bandwidth_problem,
)
from repro.cmp.dram import DRAMModel
from repro.cmp.spec_suite import app_by_name
from repro.workloads import generate_bundles


@pytest.fixture(scope="module")
def cfg():
    return cmp_8core()


@pytest.fixture(scope="module")
def bw_model(cfg):
    return BandwidthModel(DRAMModel(channels=cfg.memory_channels))


class TestBandwidthModel:
    def test_latency_decreasing_in_allocation(self, bw_model):
        lats = [bw_model.latency_ns(4.0, b) for b in (4.5, 8.0, 16.0, 64.0)]
        assert all(a >= b for a, b in zip(lats, lats[1:]))

    def test_latency_floor(self, bw_model):
        assert bw_model.latency_ns(1.0, 1e9) == pytest.approx(
            bw_model.min_latency_ns, rel=1e-3
        )

    def test_overload_stays_finite(self, bw_model):
        assert np.isfinite(bw_model.latency_ns(100.0, 0.001))
        assert np.isfinite(bw_model.latency_ns(1.0, 0.0))

    def test_demand_grows_with_frequency(self, cfg, bw_model):
        core = CoreModel(app_by_name("libquantum"), cfg)
        d1 = bw_model.demand_gbps(core, 256 * 1024, 1.0)
        d2 = bw_model.demand_gbps(core, 256 * 1024, 4.0)
        assert d2 > d1


class TestBandwidthAwareUtility:
    @pytest.fixture(scope="class")
    def utility(self, cfg, bw_model):
        core = CoreModel(app_by_name("swim"), cfg)
        return BandwidthAwareUtility(core, bw_model, cfg, free_bandwidth_gbps=0.3)

    def test_three_resources(self, utility):
        assert utility.num_resources == 3

    def test_normalized(self, utility, cfg):
        # With everything maxed the utility approaches 1.
        v = utility.value((cfg.umon_max_bytes, 100.0, 1000.0))
        assert v == pytest.approx(1.0, abs=0.02)

    def test_monotone_along_each_axis(self, utility):
        base = np.array([256.0 * 1024, 4.0, 1.0])
        v0 = utility.value(base)
        for j, bump in enumerate((256.0 * 1024, 4.0, 2.0)):
            trial = base.copy()
            trial[j] += bump
            assert utility.value(trial) >= v0 - 1e-9, j

    def test_bandwidth_matters_for_memory_bound_app(self, cfg, bw_model):
        core = CoreModel(app_by_name("libquantum"), cfg)
        u = BandwidthAwareUtility(core, bw_model, cfg, free_bandwidth_gbps=0.3)
        starved = u.value((0.0, 2.0, 0.0))
        fed = u.value((0.0, 2.0, 8.0))
        assert fed > starved + 0.05

    def test_concave_along_bandwidth(self, utility):
        bws = np.linspace(0.0, 10.0, 9)
        vals = [utility.value((256.0 * 1024, 4.0, b)) for b in bws]
        slopes = np.diff(vals) / np.diff(bws)
        assert np.all(np.diff(slopes) <= 1e-6)


class TestThreeResourceMarket:
    @pytest.fixture(scope="class")
    def problem(self, cfg):
        bundle = generate_bundles("CPBN", 8, count=1, seed=9)[0]
        chip = ChipModel(cfg, bundle.apps)
        return build_bandwidth_problem(chip)

    def test_problem_shape(self, problem):
        assert problem.num_resources == 3
        assert problem.resource_names[2] == "bandwidth_gbps"
        assert np.all(problem.capacities > 0)

    def test_market_clears_three_resources(self, problem):
        from repro.core import EqualBudget

        result = EqualBudget().allocate(problem)
        np.testing.assert_allclose(
            result.allocations.sum(axis=0), problem.capacities, rtol=1e-6
        )
        assert result.converged

    def test_rebudget_knob_works_with_three_resources(self, problem):
        from repro.core import EqualBudget, ReBudgetMechanism

        eq = EqualBudget().allocate(problem)
        rb = ReBudgetMechanism(step=40).allocate(problem)
        assert rb.efficiency >= eq.efficiency - 1e-6
        assert rb.envy_freeness <= eq.envy_freeness + 1e-6
