"""Talus shadow-partition planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmp import KB, MB, TalusController
from repro.cmp.application import CliffMRC


@pytest.fixture
def cliff_curve():
    """An mcf-style utility curve with a cliff (values = hit rate)."""
    mrc = CliffMRC(0.9, 0.05, 1536 * KB, 18.0)
    sizes = np.arange(1, 17, dtype=float) * 128 * KB
    values = np.array([1.0 - mrc.miss_fraction(s) for s in sizes])
    return sizes, values


class TestPlanning:
    def test_sizes_sum_to_target(self, cliff_curve):
        talus = TalusController(*cliff_curve)
        plan = talus.plan(1.0 * MB)
        assert plan.size_a_bytes + plan.size_b_bytes == pytest.approx(1.0 * MB)

    def test_stream_fractions_sum_to_one(self, cliff_curve):
        talus = TalusController(*cliff_curve)
        plan = talus.plan(0.7 * MB)
        assert plan.stream_fraction_a + plan.stream_fraction_b == pytest.approx(1.0)

    def test_shadow_partitions_scale_with_pois(self, cliff_curve):
        talus = TalusController(*cliff_curve)
        plan = talus.plan(1.0 * MB)
        rho = plan.stream_fraction_a
        assert plan.size_a_bytes == pytest.approx(rho * plan.poi_low_bytes)
        assert plan.size_b_bytes == pytest.approx((1 - rho) * plan.poi_high_bytes)

    def test_degenerate_at_poi(self, cliff_curve):
        talus = TalusController(*cliff_curve)
        xs, _ = talus.points_of_interest
        plan = talus.plan(float(xs[0]))
        assert plan.stream_fraction_a == pytest.approx(1.0)

    def test_realized_equals_hull(self, cliff_curve):
        sizes, values = cliff_curve
        talus = TalusController(sizes, values)
        raw = lambda s: float(np.interp(s, sizes, values))
        for target in (0.5 * MB, 1.0 * MB, 1.4 * MB, 1.8 * MB):
            plan = talus.plan(target)
            realized = talus.realized_value(plan, raw)
            assert realized == pytest.approx(talus.value_at(target), abs=1e-9)

    @given(st.floats(min_value=128 * KB, max_value=2 * MB))
    @settings(max_examples=60, deadline=None)
    def test_hull_dominates_raw_everywhere(self, target):
        mrc = CliffMRC(0.9, 0.05, 1536 * KB, 18.0)
        sizes = np.arange(1, 17, dtype=float) * 128 * KB
        values = np.array([1.0 - mrc.miss_fraction(s) for s in sizes])
        talus = TalusController(sizes, values)
        raw_value = float(np.interp(target, sizes, values))
        assert talus.value_at(target) >= raw_value - 1e-9


class TestPointsOfInterest:
    def test_cliff_has_few_pois(self, cliff_curve):
        talus = TalusController(*cliff_curve)
        xs, _ = talus.points_of_interest
        # A single cliff hulls down to a handful of vertices, far fewer
        # than the 16 samples.
        assert xs.size < 8

    def test_concave_curve_keeps_all_points(self):
        sizes = np.arange(1.0, 6.0)
        values = np.sqrt(sizes)
        talus = TalusController(sizes, values)
        xs, _ = talus.points_of_interest
        assert xs.size == 5
