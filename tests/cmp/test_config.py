"""Table 1 configuration constants."""

import pytest

from repro.cmp import CACHE_REGION_BYTES, KB, MB, CMPConfig, cmp_8core, cmp_64core


class TestTable1:
    def test_8core_configuration(self):
        cfg = cmp_8core()
        assert cfg.num_cores == 8
        assert cfg.power_budget_watts == 80.0          # 10 W per core
        assert cfg.l2_capacity_bytes == 4 * MB
        assert cfg.l2_associativity == 16
        assert cfg.memory_channels == 2

    def test_64core_configuration(self):
        cfg = cmp_64core()
        assert cfg.num_cores == 64
        assert cfg.power_budget_watts == 640.0
        assert cfg.l2_capacity_bytes == 32 * MB
        assert cfg.l2_associativity == 32
        assert cfg.memory_channels == 16

    def test_core_envelope(self):
        core = cmp_8core().core
        assert core.min_frequency_ghz == 0.8
        assert core.max_frequency_ghz == 4.0
        assert core.min_voltage == 0.8
        assert core.max_voltage == 1.2
        assert core.fetch_width == core.issue_width == core.commit_width == 4
        assert core.rob_entries == 128
        assert core.int_registers == core.fp_registers == 160
        assert core.l1_size_bytes == 32 * KB
        assert core.branch_mispredict_penalty_cycles == 9

    def test_cache_region_is_128kb(self):
        assert CACHE_REGION_BYTES == 128 * KB

    def test_derived_quantities(self):
        cfg = cmp_8core()
        assert cfg.total_cache_regions == 32          # 4 MB / 128 kB
        assert cfg.umon_max_bytes == 2 * MB           # 16 regions
        assert cfg.power_per_core_watts == 10.0
        assert cfg.umon_sampling_rate == 32
        assert cfg.allocation_period_ms == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CMPConfig(
                num_cores=0,
                power_budget_watts=10.0,
                l2_capacity_bytes=MB,
                l2_associativity=8,
                memory_channels=1,
            )
        with pytest.raises(ValueError):
            CMPConfig(
                num_cores=2,
                power_budget_watts=10.0,
                l2_capacity_bytes=MB + 1,
                l2_associativity=8,
                memory_channels=1,
            )
