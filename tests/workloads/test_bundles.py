"""Multiprogrammed bundle generation."""

import numpy as np
import pytest

from repro.cmp.spec_suite import INTENDED_CLASS
from repro.workloads import (
    BUNDLE_CATEGORIES,
    BUNDLES_PER_CATEGORY,
    generate_all_bundles,
    generate_bundle,
    generate_bundles,
    paper_bbpc_bundle,
)


class TestGenerateBundle:
    def test_composition_follows_category(self, rng):
        bundle = generate_bundle("CPBN", 8, rng)
        classes = [INTENDED_CLASS[a.name] for a in bundle.apps]
        assert classes == ["C", "C", "P", "P", "B", "B", "N", "N"]

    def test_64_core_composition(self, rng):
        bundle = generate_bundle("CCPP", 64, rng)
        classes = [INTENDED_CLASS[a.name] for a in bundle.apps]
        assert classes.count("C") == 32
        assert classes.count("P") == 32

    def test_sampling_with_replacement(self, rng):
        # 16 draws from a 6-app class must repeat applications.
        bundle = generate_bundle("CCCC", 64, rng)
        names = bundle.app_names()
        assert len(set(names)) < len(names)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_bundle("CPX", 8, rng)
        with pytest.raises(ValueError):
            generate_bundle("CPXZ", 8, rng)
        with pytest.raises(ValueError):
            generate_bundle("CPBN", 10, rng)


class TestGenerateBundles:
    def test_deterministic_for_seed(self):
        a = generate_bundles("CPBN", 8, count=5, seed=7)
        b = generate_bundles("CPBN", 8, count=5, seed=7)
        assert [x.app_names() for x in a] == [y.app_names() for y in b]

    def test_different_seeds_differ(self):
        a = generate_bundles("CPBN", 64, count=5, seed=7)
        b = generate_bundles("CPBN", 64, count=5, seed=8)
        assert [x.app_names() for x in a] != [y.app_names() for y in b]

    def test_prefix_stability(self):
        # Small sweeps are strict subsets of big ones (same seed).
        small = generate_bundles("BBPN", 8, count=3, seed=7)
        big = generate_bundles("BBPN", 8, count=10, seed=7)
        assert [x.app_names() for x in small] == [y.app_names() for y in big[:3]]

    def test_names(self):
        bundles = generate_bundles("BBCN", 8, count=2)
        assert bundles[0].name == "BBCN-00"
        assert bundles[1].name == "BBCN-01"


class TestGenerateAll:
    def test_paper_scale(self):
        all_bundles = generate_all_bundles(8, count=2)
        assert sorted(all_bundles.keys()) == sorted(BUNDLE_CATEGORIES)
        assert sum(len(v) for v in all_bundles.values()) == 12

    def test_default_counts_are_papers(self):
        assert BUNDLES_PER_CATEGORY == 40
        assert len(BUNDLE_CATEGORIES) == 6


class TestPaperBundle:
    def test_bbpc_composition(self):
        bundle = paper_bbpc_bundle()
        names = bundle.app_names()
        assert names.count("apsi") == 2
        assert names.count("swim") == 2
        assert names.count("mcf") == 2
        assert names.count("hmmer") == 1
        assert names.count("sixtrack") == 1
        assert bundle.num_cores == 8
