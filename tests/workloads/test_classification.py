"""Profiling-based C/P/B/N classification."""

import numpy as np
import pytest

from repro.cmp import cmp_8core
from repro.cmp.spec_suite import INTENDED_CLASS, app_by_name, spec_suite
from repro.workloads import classify, classify_suite, profile_application, sensitivities
from repro.workloads.classification import (
    PROFILE_CACHE_REGIONS,
    PROFILE_FREQUENCIES_GHZ,
)


class TestProfileGrid:
    def test_paper_90_point_grid(self):
        # Section 6: {1-6, 8, 10, 12, 16} regions x {0.8..4.0} GHz.
        assert PROFILE_CACHE_REGIONS == (1, 2, 3, 4, 5, 6, 8, 10, 12, 16)
        assert len(PROFILE_FREQUENCIES_GHZ) == 9
        assert len(PROFILE_CACHE_REGIONS) * len(PROFILE_FREQUENCIES_GHZ) == 90

    def test_profile_table_shape(self):
        table = profile_application(app_by_name("vpr"))
        assert table.utility.shape == (10, 9)
        assert table.power_watts.shape == (10, 9)
        assert table.app_name == "vpr"

    def test_utility_monotone_along_axes(self):
        table = profile_application(app_by_name("swim"))
        assert np.all(np.diff(table.utility, axis=0) >= -1e-9)
        assert np.all(np.diff(table.utility, axis=1) >= -1e-9)

    def test_power_independent_of_cache(self):
        table = profile_application(app_by_name("swim"))
        assert np.allclose(table.power_watts, table.power_watts[0:1, :])


class TestSensitivities:
    def test_mcf_is_cache_dominant(self):
        s = sensitivities(profile_application(app_by_name("mcf")))
        assert s.cache > 0.4
        assert s.power < 0.15

    def test_povray_is_power_dominant(self):
        s = sensitivities(profile_application(app_by_name("povray")))
        assert s.power > 0.6
        assert s.cache < 0.05


class TestClassify:
    def test_matches_design_intent_for_all_24(self):
        for app in spec_suite():
            assert classify(app) == INTENDED_CLASS[app.name], app.name

    def test_classify_suite_partitions(self):
        classes = classify_suite(spec_suite(), cmp_8core())
        assert sorted(classes.keys()) == ["B", "C", "N", "P"]
        assert sum(len(v) for v in classes.values()) == 24
        for cls, apps in classes.items():
            assert len(apps) == 6, cls
