"""Shared fixtures for the test suite.

Heavier objects (the BBPC chip, true utilities) are session-scoped so
the many tests that need a realistic multicore allocation problem don't
pay the construction cost repeatedly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cmp import ChipModel, cmp_8core
from repro.core import Market, Player, Resource, ResourceSet
from repro.utility import LogUtility
from repro.workloads import paper_bbpc_bundle


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def two_resource_set():
    return ResourceSet.of(Resource("cache", 10.0), Resource("power", 5.0))


@pytest.fixture
def small_market(two_resource_set):
    """Three log-utility players over two resources, equal budgets."""
    players = [
        Player("a", LogUtility([1.0, 0.2], [1.0, 1.0]), 100.0),
        Player("b", LogUtility([0.2, 1.0], [1.0, 1.0]), 100.0),
        Player("c", LogUtility([0.6, 0.6], [1.0, 1.0]), 100.0),
    ]
    return Market(two_resource_set, players)


@pytest.fixture(scope="session")
def bbpc_chip():
    """The paper's 8-core BBPC case-study chip (Section 6.1.1)."""
    return ChipModel(cmp_8core(), paper_bbpc_bundle().apps)


@pytest.fixture(scope="session")
def bbpc_problem(bbpc_chip):
    """The convexified phase-1 allocation problem for the BBPC chip."""
    return bbpc_chip.build_problem()
