"""The ``python -m repro`` command-line harness."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig4_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.bundles == 3
        assert args.cores == 64

    def test_fig5_categories(self):
        args = build_parser().parse_args(["fig5", "--categories", "CPBN", "BBNN"])
        assert args.categories == ["CPBN", "BBNN"]


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out
        assert "Theorem 2" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "mcf raw" in out
        assert "vpr hull" in out

    def test_fig3_with_generated_bundle(self, capsys):
        assert main(["fig3", "--bundle-category", "CPBN"]) == 0
        out = capsys.readouterr().out
        assert "MUR" in out
        assert "ReBudget-20" in out

    def test_fig4_small(self, capsys):
        assert main(["fig4", "--bundles", "1", "--cores", "8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4a series" in out
        assert "EqualBudget" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--epochs", "2", "--cores", "8", "--categories", "CPBN"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5 summary" in out

    def test_convergence_small(self, capsys):
        assert main(["convergence", "--bundles", "1"]) == 0
        out = capsys.readouterr().out
        assert "convergence statistics" in out

    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "class" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "UMON" in out and "Futility" in out
