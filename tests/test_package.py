"""Public-API integrity: imports, __all__ consistency, version."""

import importlib

import pytest

import repro

SUBPACKAGES = ["core", "utility", "cmp", "workloads", "sim", "analysis"]


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_importable(self, name):
        module = importlib.import_module(f"repro.{name}")
        assert module is not None

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_names_resolve(self, name):
        module = importlib.import_module(f"repro.{name}")
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"repro.{name}.{symbol}"

    def test_top_level_all_resolves(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol), symbol

    def test_exceptions_hierarchy(self):
        from repro.exceptions import ConvergenceError, MarketConfigurationError, ReproError

        assert issubclass(MarketConfigurationError, ReproError)
        assert issubclass(ConvergenceError, ReproError)

    def test_public_entry_points_documented(self):
        # Every public module carries a docstring (the documentation
        # deliverable's floor).
        for name in SUBPACKAGES:
            module = importlib.import_module(f"repro.{name}")
            assert module.__doc__, f"repro.{name} missing docstring"
        assert repro.__doc__
