"""Parametric utility families: values, gradients, and concavity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utility import (
    AdditiveUtility,
    CobbDouglasUtility,
    LinearUtility,
    LogUtility,
    PowerUtility,
    SaturatingUtility,
    ScaledUtility,
    is_concave_on_grid,
    is_nondecreasing_on_grid,
    numeric_gradient,
)

_allocations = st.lists(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    min_size=2,
    max_size=2,
).map(np.array)


class TestLinearUtility:
    def test_value_and_gradient(self):
        u = LinearUtility([2.0, 3.0])
        assert u.value([1.0, 1.0]) == pytest.approx(5.0)
        assert u.gradient([4.0, 4.0]).tolist() == [2.0, 3.0]

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            LinearUtility([-1.0, 2.0])

    def test_callable_protocol(self):
        u = LinearUtility([1.0])
        assert u((2.0,)) == pytest.approx(2.0)


class TestLogUtility:
    def test_value(self):
        u = LogUtility([1.0], [1.0])
        assert u.value([np.e - 1.0]) == pytest.approx(1.0)

    def test_gradient_matches_numeric(self):
        u = LogUtility([1.5, 0.5], [2.0, 1.0])
        point = np.array([3.0, 4.0])
        np.testing.assert_allclose(
            u.gradient(point), numeric_gradient(u.value, point), rtol=1e-4
        )

    def test_concave_and_nondecreasing(self):
        u = LogUtility([1.0, 2.0], [1.0, 3.0])
        grids = [np.linspace(0.0, 10.0, 8)] * 2
        assert is_concave_on_grid(u.value, grids)
        assert is_nondecreasing_on_grid(u.value, grids)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogUtility([-1.0], [1.0])
        with pytest.raises(ValueError):
            LogUtility([1.0], [0.0])


class TestPowerUtility:
    def test_value(self):
        u = PowerUtility([2.0], [0.5])
        assert u.value([4.0]) == pytest.approx(4.0)

    def test_gradient_matches_numeric(self):
        u = PowerUtility([1.0, 2.0], [0.5, 0.8])
        point = np.array([2.0, 3.0])
        np.testing.assert_allclose(
            u.gradient(point), numeric_gradient(u.value, point), rtol=1e-3
        )

    def test_rejects_convex_exponent(self):
        with pytest.raises(ValueError):
            PowerUtility([1.0], [1.5])
        with pytest.raises(ValueError):
            PowerUtility([1.0], [0.0])

    @given(_allocations, _allocations)
    @settings(max_examples=60, deadline=None)
    def test_midpoint_concavity(self, a, b):
        u = PowerUtility([1.0, 1.0], [0.5, 0.7])
        mid = (a + b) / 2.0
        assert u.value(mid) >= (u.value(a) + u.value(b)) / 2.0 - 1e-9


class TestCobbDouglas:
    def test_value(self):
        u = CobbDouglasUtility([0.5, 0.5], scale=2.0)
        assert u.value([4.0, 9.0]) == pytest.approx(12.0)

    def test_zero_allocation_gives_zero(self):
        u = CobbDouglasUtility([0.5, 0.5])
        assert u.value([0.0, 5.0]) == 0.0

    def test_gradient_matches_numeric(self):
        u = CobbDouglasUtility([0.3, 0.6], scale=1.5)
        point = np.array([2.0, 5.0])
        np.testing.assert_allclose(
            u.gradient(point), numeric_gradient(u.value, point), rtol=1e-3
        )

    def test_rejects_superlinear(self):
        with pytest.raises(ValueError):
            CobbDouglasUtility([0.7, 0.7])

    def test_rejects_negative_elasticity(self):
        with pytest.raises(ValueError):
            CobbDouglasUtility([-0.1, 0.5])


class TestSaturatingUtility:
    def test_ramp_and_cap(self):
        u = SaturatingUtility([1.0], [4.0])
        assert u.value([2.0]) == pytest.approx(0.5)
        assert u.value([8.0]) == pytest.approx(1.0)

    def test_gradient_zero_past_cap(self):
        u = SaturatingUtility([1.0, 2.0], [4.0, 2.0])
        grad = u.gradient([5.0, 1.0])
        assert grad[0] == 0.0
        assert grad[1] == pytest.approx(1.0)

    def test_rejects_nonpositive_caps(self):
        with pytest.raises(ValueError):
            SaturatingUtility([1.0], [0.0])


class TestAdditiveUtility:
    def test_composes_single_resource_parts(self):
        u = AdditiveUtility([LinearUtility([2.0]), PowerUtility([1.0], [0.5])])
        assert u.num_resources == 2
        assert u.value([3.0, 4.0]) == pytest.approx(8.0)
        np.testing.assert_allclose(u.gradient([3.0, 4.0]), [2.0, 0.25])

    def test_rejects_multiresource_components(self):
        with pytest.raises(ValueError):
            AdditiveUtility([LinearUtility([1.0, 1.0])])


class TestScaledUtility:
    def test_affine_wrap(self):
        u = ScaledUtility(LinearUtility([1.0]), scale=0.5, offset=1.0)
        assert u.value([4.0]) == pytest.approx(3.0)
        assert u.gradient([4.0])[0] == pytest.approx(0.5)

    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            ScaledUtility(LinearUtility([1.0]), scale=-1.0)
