"""Tabulated utilities: interpolation, hulls, and the 2-D grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utility import GridUtility2D, HullUtility1D, TabularUtility1D


class TestTabularUtility1D:
    def test_interpolates_and_clamps(self):
        u = TabularUtility1D([0.0, 1.0, 2.0], [0.0, 1.0, 1.5])
        assert u.value([0.5]) == pytest.approx(0.5)
        assert u.value([1.5]) == pytest.approx(1.25)
        assert u.value([-1.0]) == 0.0
        assert u.value([9.0]) == 1.5

    def test_gradient_is_segment_slope(self):
        u = TabularUtility1D([0.0, 1.0, 3.0], [0.0, 2.0, 3.0])
        assert u.gradient([0.5])[0] == pytest.approx(2.0)
        assert u.gradient([2.0])[0] == pytest.approx(0.5)
        assert u.gradient([5.0])[0] == 0.0

    def test_preserves_cliffs(self):
        # Unlike the hull version, the raw table keeps non-concavity.
        u = TabularUtility1D([0.0, 1.0, 2.0], [0.2, 0.2, 1.0])
        assert u.value([1.0]) == pytest.approx(0.2)
        assert u.value([1.5]) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            TabularUtility1D([1.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            TabularUtility1D([], [])
        with pytest.raises(ValueError):
            TabularUtility1D([0.0, 1.0], [0.0])


class TestHullUtility1D:
    def test_convexifies_cliff(self):
        u = HullUtility1D([0.0, 1.0, 2.0], [0.2, 0.2, 1.0])
        # The hull bridges linearly from (0, 0.2) to (2, 1.0).
        assert u.value([1.0]) == pytest.approx(0.6)

    def test_gradient_non_increasing(self):
        u = HullUtility1D([0.0, 1.0, 2.0, 3.0], [0.0, 0.5, 1.2, 1.3])
        grads = [u.gradient([x])[0] for x in np.linspace(0.0, 3.0, 13)]
        assert all(a >= b - 1e-12 for a, b in zip(grads, grads[1:]))

    def test_points_of_interest_exposed(self):
        u = HullUtility1D([0.0, 1.0, 2.0], [0.2, 0.2, 1.0])
        xs, ys = u.points_of_interest
        assert xs[0] == 0.0 and xs[-1] == 2.0


class TestGridUtility2D:
    @pytest.fixture
    def grid(self):
        xs = np.array([0.0, 1.0, 2.0])
        ys = np.array([0.0, 2.0])
        values = np.array([[0.0, 1.0], [1.0, 2.0], [1.5, 2.5]])
        return GridUtility2D(xs, ys, values)

    def test_exact_at_grid_points(self, grid):
        assert grid.value([1.0, 2.0]) == pytest.approx(2.0)
        assert grid.value([2.0, 0.0]) == pytest.approx(1.5)

    def test_bilinear_between_points(self, grid):
        assert grid.value([0.5, 1.0]) == pytest.approx(1.0)

    def test_clamps_outside(self, grid):
        assert grid.value([-5.0, -5.0]) == pytest.approx(0.0)
        assert grid.value([99.0, 99.0]) == pytest.approx(2.5)

    def test_degenerate_axes(self):
        u = GridUtility2D([1.0], [0.0, 1.0], np.array([[0.0, 2.0]]))
        assert u.value([1.0, 0.5]) == pytest.approx(1.0)
        v = GridUtility2D([0.0, 1.0], [2.0], np.array([[0.0], [4.0]]))
        assert v.value([0.25, 2.0]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GridUtility2D([0.0, 1.0], [0.0], np.zeros((3, 1)))
        with pytest.raises(ValueError):
            GridUtility2D([1.0, 0.0], [0.0], np.zeros((2, 1)))

    @given(
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_within_value_range(self, x, y):
        grid = GridUtility2D(
            np.array([0.0, 1.0, 2.0]),
            np.array([0.0, 2.0]),
            np.array([[0.0, 1.0], [1.0, 2.0], [1.5, 2.5]]),
        )
        v = grid.value([x, y])
        assert 0.0 - 1e-9 <= v <= 2.5 + 1e-9
