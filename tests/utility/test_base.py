"""Numeric gradient and grid-probe helpers."""

import numpy as np
import pytest

from repro.utility import (
    LinearUtility,
    is_concave_on_grid,
    is_nondecreasing_on_grid,
    numeric_gradient,
)
from repro.utility.base import UtilityFunction


class TestNumericGradient:
    def test_quadratic(self):
        grad = numeric_gradient(lambda r: r[0] ** 2 + 3 * r[1], np.array([2.0, 1.0]))
        np.testing.assert_allclose(grad, [4.0, 3.0], rtol=1e-4)

    def test_scales_steps_for_large_coordinates(self):
        # Cache allocations are ~1e6 bytes; a fixed 1e-6 step would vanish.
        grad = numeric_gradient(lambda r: 2e-6 * r[0], np.array([1e6]))
        np.testing.assert_allclose(grad, [2e-6], rtol=1e-4)

    def test_one_sided_at_zero_boundary(self):
        # sqrt has infinite slope at 0; the forward difference must not
        # evaluate at negative coordinates (which would be NaN).
        grad = numeric_gradient(lambda r: np.sqrt(max(r[0], 0.0)), np.array([0.0]))
        assert np.isfinite(grad[0]) and grad[0] > 0.0


class TestGridProbes:
    def test_concave_detects_convex_function(self):
        grids = [np.linspace(0.0, 4.0, 9)]
        assert not is_concave_on_grid(lambda r: r[0] ** 2, grids)
        assert is_concave_on_grid(lambda r: np.sqrt(r[0]), grids)

    def test_concave_2d(self):
        grids = [np.linspace(0.1, 4.0, 5)] * 2
        assert is_concave_on_grid(lambda r: np.sqrt(r[0]) + np.sqrt(r[1]), grids)
        assert not is_concave_on_grid(lambda r: r[0] * r[0] + r[1], grids)

    def test_nondecreasing(self):
        grids = [np.linspace(0.0, 4.0, 9)] * 2
        assert is_nondecreasing_on_grid(lambda r: r[0] + r[1], grids)
        assert not is_nondecreasing_on_grid(lambda r: r[0] - r[1], grids)


class TestUtilityFunctionBase:
    def test_default_gradient_and_marginal(self):
        class Quadratic(UtilityFunction):
            num_resources = 2

            def value(self, allocation):
                return float(allocation[0] * 2.0 + allocation[1])

        u = Quadratic()
        assert u.marginal([1.0, 1.0], 0) == pytest.approx(2.0, rel=1e-4)
        assert u.marginal([1.0, 1.0], 1) == pytest.approx(1.0, rel=1e-4)

    def test_abstract(self):
        with pytest.raises(TypeError):
            UtilityFunction()
