"""Upper-convex-hull tests, including hypothesis properties.

The hull is the mathematical core of Talus; these properties must hold
for every input: the hull dominates all samples, its slopes are
non-increasing, and it passes through the first and last sample.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utility.convex_hull import (
    PiecewiseLinearConcave,
    hull_interpolate,
    upper_convex_hull,
)


def _curves(min_size=1, max_size=40):
    """Strategy: strictly increasing xs with arbitrary bounded ys."""
    return st.lists(
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        min_size=min_size,
        max_size=max_size,
    ).map(lambda ys: (np.arange(1.0, len(ys) + 1.0), np.array(ys)))


class TestUpperConvexHull:
    def test_single_point(self):
        hx, hy = upper_convex_hull([2.0], [5.0])
        assert hx.tolist() == [2.0]
        assert hy.tolist() == [5.0]

    def test_linear_curve_keeps_endpoints_only_in_value(self):
        xs = np.array([0.0, 1.0, 2.0, 3.0])
        ys = 2.0 * xs
        hx, hy = upper_convex_hull(xs, ys)
        # Collinear points may be kept or dropped; values must match.
        for x, y in zip(xs, ys):
            assert hull_interpolate(hx, hy, x) == pytest.approx(y)

    def test_cliff_is_linearized(self):
        # An mcf-style step: flat then jump.
        xs = np.arange(1.0, 6.0)
        ys = np.array([0.2, 0.2, 0.2, 1.0, 1.0])
        hx, hy = upper_convex_hull(xs, ys)
        # The hull bridges straight from the first point to the jump.
        assert hull_interpolate(hx, hy, 2.5) == pytest.approx(0.2 + 0.8 * 1.5 / 3.0)

    def test_rejects_unsorted_x(self):
        with pytest.raises(ValueError):
            upper_convex_hull([1.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            upper_convex_hull([2.0, 1.0], [0.0, 1.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            upper_convex_hull([1.0, 2.0], [0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            upper_convex_hull([], [])

    @given(_curves())
    @settings(max_examples=120, deadline=None)
    def test_hull_dominates_samples(self, curve):
        xs, ys = curve
        hx, hy = upper_convex_hull(xs, ys)
        for x, y in zip(xs, ys):
            assert hull_interpolate(hx, hy, x) >= y - 1e-9

    @given(_curves(min_size=2))
    @settings(max_examples=120, deadline=None)
    def test_hull_slopes_non_increasing(self, curve):
        xs, ys = curve
        hx, hy = upper_convex_hull(xs, ys)
        if hx.size >= 3:
            slopes = np.diff(hy) / np.diff(hx)
            assert np.all(np.diff(slopes) <= 1e-9)

    @given(_curves())
    @settings(max_examples=120, deadline=None)
    def test_hull_keeps_endpoints(self, curve):
        xs, ys = curve
        hx, hy = upper_convex_hull(xs, ys)
        assert hx[0] == xs[0] and hy[0] == ys[0]
        assert hx[-1] == xs[-1] and hy[-1] == ys[-1]

    @given(_curves(min_size=2), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=120, deadline=None)
    def test_hull_is_midpoint_concave(self, curve, t):
        xs, ys = curve
        hx, hy = upper_convex_hull(xs, ys)
        a, b = xs[0], xs[-1]
        x1 = a + t * (b - a)
        x2 = b - t * (b - a) / 2.0
        mid = (x1 + x2) / 2.0
        v1 = hull_interpolate(hx, hy, x1)
        v2 = hull_interpolate(hx, hy, x2)
        vm = hull_interpolate(hx, hy, mid)
        assert vm >= (v1 + v2) / 2.0 - 1e-9


class TestHullInterpolate:
    def test_clamps_below_and_above(self):
        hx = np.array([1.0, 3.0])
        hy = np.array([0.5, 1.5])
        assert hull_interpolate(hx, hy, 0.0) == 0.5
        assert hull_interpolate(hx, hy, 10.0) == 1.5

    def test_linear_between_vertices(self):
        hx = np.array([0.0, 2.0])
        hy = np.array([0.0, 4.0])
        assert hull_interpolate(hx, hy, 1.0) == pytest.approx(2.0)


class TestPiecewiseLinearConcave:
    def test_points_of_interest_are_hull_vertices(self):
        xs = np.arange(1.0, 6.0)
        ys = np.array([0.2, 0.2, 0.2, 1.0, 1.0])
        f = PiecewiseLinearConcave(xs, ys)
        px, py = f.points_of_interest
        assert px[0] == 1.0 and px[-1] == 5.0
        assert np.all(np.diff(py) >= -1e-12)

    def test_derivative_is_right_slope(self):
        f = PiecewiseLinearConcave([0.0, 1.0, 2.0], [0.0, 1.0, 1.2])
        assert f.derivative(0.5) == pytest.approx(1.0)
        assert f.derivative(1.5) == pytest.approx(0.2)
        assert f.derivative(5.0) == 0.0

    def test_derivative_non_increasing(self):
        f = PiecewiseLinearConcave([0.0, 1.0, 2.0, 3.0], [0.0, 2.0, 3.0, 3.4])
        ds = [f.derivative(x) for x in np.linspace(0.0, 3.0, 20)]
        assert all(a >= b - 1e-12 for a, b in zip(ds, ds[1:]))

    def test_bracketing_pois(self):
        f = PiecewiseLinearConcave([0.0, 2.0, 4.0], [0.0, 3.0, 4.0])
        (lo, _), (hi, _) = f.bracketing_pois(1.0)
        assert lo == 0.0 and hi == 2.0
        (lo, _), (hi, _) = f.bracketing_pois(-1.0)
        assert lo == hi == 0.0
        (lo, _), (hi, _) = f.bracketing_pois(9.0)
        assert lo == hi == 4.0

    def test_callable(self):
        f = PiecewiseLinearConcave([0.0, 1.0], [0.0, 1.0])
        assert f(0.5) == pytest.approx(0.5)
