"""Batched utility evaluation: every ``value_batch`` / ``gradient_batch``
must reproduce the looped scalar calls — bitwise for the families whose
overrides mirror the scalar arithmetic operation for operation, within
an explicit (documented) tolerance where a vectorized reduction may
reassociate a summation.  Also covers the stacked-grid fast path, the
compiled :class:`BatchedUtilitySet`, and the evaluation counters the
hot-loop bench reads.
"""

import numpy as np
import pytest

from repro.utility import (
    EVAL_COUNTERS,
    AdditiveUtility,
    BatchedUtilitySet,
    CobbDouglasUtility,
    GridUtility2D,
    HullUtility1D,
    LinearUtility,
    LogUtility,
    PiecewiseLinearConcave,
    PowerUtility,
    SaturatingUtility,
    ScaledUtility,
    StackedGrids,
    TabularUtility1D,
    UtilityFunction,
    numeric_gradient,
    numeric_gradient_batch,
)


def looped_values(utility, points):
    return np.array([utility.value(p) for p in points], dtype=float)


def looped_gradients(utility, points):
    return np.stack(
        [np.asarray(utility.gradient(p), dtype=float) for p in points]
    )


def assert_batch_matches(utility, points, exact=True):
    values = utility.value_batch(points)
    gradients = utility.gradient_batch(points)
    assert values.shape == (points.shape[0],)
    assert gradients.shape == points.shape
    if exact:
        assert np.array_equal(values, looped_values(utility, points))
        assert np.array_equal(gradients, looped_gradients(utility, points))
    else:
        np.testing.assert_allclose(
            values, looped_values(utility, points), rtol=1e-12, atol=1e-15
        )
        np.testing.assert_allclose(
            gradients, looped_gradients(utility, points), rtol=1e-12, atol=1e-15
        )


def make_grid(seed=0, nx=5, ny=4, x_span=4.0, y_span=2.0):
    rng = np.random.default_rng(seed)
    xs = np.linspace(0.0, x_span, nx)
    ys = np.linspace(0.0, y_span, ny) * (1.0 + 0.3 * seed)
    # Concave, non-decreasing surface with some per-seed texture.
    values = np.sqrt(1.0 + xs[:, None]) * np.log1p(1.0 + ys[None, :])
    values = values + 0.01 * rng.random((nx, ny))
    values = np.maximum.accumulate(np.maximum.accumulate(values, axis=0), axis=1)
    return GridUtility2D(xs, ys, values)


#: Points exercising the edge cases the clamping (tabulated) overrides
#: must handle identically: below the first sample, above the last,
#: exactly on bounds, zero rows.
POINTS_1D = np.array([[-1.0], [0.0], [0.3], [1.0], [2.7], [3.0], [99.0]])
POINTS_2D = np.array(
    [
        [0.0, 0.0],
        [-1.0, -1.0],
        [0.5, 0.25],
        [4.0, 2.0],
        [1.7, 0.9],
        [99.0, 99.0],
        [0.0, 2.5],
    ]
)
#: Non-negative points for the closed-form families (utilities are only
#: defined over non-negative allocations; the market never goes below 0).
NONNEG_2D = np.array(
    [[0.0, 0.0], [0.5, 0.25], [4.0, 2.0], [1.7, 0.9], [99.0, 99.0], [0.0, 2.5]]
)
#: Strictly positive points for families whose gradients blow up at zero.
POSITIVE_2D = np.array([[0.5, 0.25], [1.0, 1.0], [4.0, 2.0], [1.7, 0.9], [9.0, 0.1]])


CASES = [
    pytest.param(
        lambda: TabularUtility1D([0.0, 1.0, 3.0], [0.0, 2.0, 3.0]),
        POINTS_1D,
        True,
        id="tabular1d",
    ),
    pytest.param(
        lambda: HullUtility1D([0.0, 1.0, 2.0, 3.0], [0.0, 0.5, 1.2, 1.3]),
        POINTS_1D,
        True,
        id="hull1d",
    ),
    pytest.param(lambda: make_grid(1), POINTS_2D, True, id="grid2d"),
    pytest.param(
        lambda: GridUtility2D([1.0], [0.0, 1.0], np.array([[0.0, 2.0]])),
        POINTS_2D,
        True,
        id="grid2d-degenerate-x",
    ),
    pytest.param(
        lambda: GridUtility2D([0.0, 1.0], [2.0], np.array([[0.0], [4.0]])),
        POINTS_2D,
        True,
        id="grid2d-degenerate-y",
    ),
    pytest.param(lambda: LinearUtility([1.0, 2.5]), NONNEG_2D, True, id="linear"),
    pytest.param(
        lambda: LogUtility([1.0, 0.5], [2.0, 1.0]), NONNEG_2D, True, id="log"
    ),
    pytest.param(
        lambda: PowerUtility([1.0, 0.7], [0.5, 0.9]), POSITIVE_2D, True, id="power"
    ),
    pytest.param(
        lambda: CobbDouglasUtility([0.3, 0.4], scale=2.0),
        POSITIVE_2D,
        True,
        id="cobb-douglas",
    ),
    pytest.param(
        lambda: SaturatingUtility([1.0, 2.0], [3.0, 1.5]),
        NONNEG_2D,
        True,
        id="saturating",
    ),
    pytest.param(
        lambda: AdditiveUtility(
            [
                TabularUtility1D([0.0, 1.0, 3.0], [0.0, 2.0, 3.0]),
                LogUtility([1.0], [1.0]),
            ]
        ),
        NONNEG_2D,
        True,
        id="additive",
    ),
    pytest.param(
        lambda: ScaledUtility(LogUtility([1.0, 0.5], [2.0, 1.0]), 2.0, 0.1),
        NONNEG_2D,
        True,
        id="scaled",
    ),
]


class TestBatchEqualsScalar:
    @pytest.mark.parametrize("factory, points, exact", CASES)
    def test_batch_matches_looped_scalar(self, factory, points, exact):
        assert_batch_matches(factory(), points, exact=exact)

    def test_empty_batch(self):
        u = LogUtility([1.0, 0.5])
        points = np.empty((0, 2))
        assert u.value_batch(points).shape == (0,)
        assert u.gradient_batch(points).shape == (0, 2)

    def test_shape_validation(self):
        # The generic fallback validates via _as_point_matrix; fast
        # overrides are internal hot-path code and skip the check.
        u = OnlyScalar()
        with pytest.raises(ValueError):
            u.value_batch(np.zeros(2))  # 1-D, not (K, M)
        with pytest.raises(ValueError):
            u.gradient_batch(np.zeros((3, 5)))  # wrong resource count


class OnlyScalar(UtilityFunction):
    """A subclass implementing nothing beyond the scalar interface."""

    num_resources = 2

    def value(self, allocation):
        r = np.asarray(allocation, dtype=float)
        return float(np.sqrt(1.0 + r[0]) + np.log1p(r[1]))


class TestGenericFallback:
    def test_fallback_matches_scalar_bitwise(self):
        u = OnlyScalar()
        assert_batch_matches(u, NONNEG_2D, exact=True)

    def test_fallback_counts_scalar_per_point(self):
        u = OnlyScalar()
        before = EVAL_COUNTERS.snapshot()
        u.value_batch(NONNEG_2D)
        delta = EVAL_COUNTERS.since(before)
        assert delta["scalar_value_calls"] == NONNEG_2D.shape[0]
        assert delta["batch_calls"] == 0

    def test_fast_override_counts_batch_not_scalar(self):
        u = make_grid(2)
        before = EVAL_COUNTERS.snapshot()
        u.value_batch(POINTS_2D)
        delta = EVAL_COUNTERS.since(before)
        assert delta["batch_value_calls"] == 1
        assert delta["batch_points"] == POINTS_2D.shape[0]
        assert delta["scalar_calls"] == 0


class TestNumericGradientBatch:
    def test_matches_scalar_including_zero_boundary(self):
        # Rows with zero coordinates exercise the forward-difference
        # fallback; both paths must pick it for exactly the same rows.
        def f(p):
            p = np.asarray(p, dtype=float)
            return float(np.sqrt(1.0 + p[0]) * np.log1p(1.0 + p[1]))

        def f_batch(points):
            return np.sqrt(1.0 + points[:, 0]) * np.log1p(1.0 + points[:, 1])

        points = np.array([[0.0, 0.0], [0.0, 3.0], [2.0, 0.0], [1.5, 0.5]])
        expected = np.stack([numeric_gradient(f, p) for p in points])
        assert np.array_equal(numeric_gradient_batch(f_batch, points), expected)

    def test_empty(self):
        out = numeric_gradient_batch(lambda pts: pts[:, 0], np.empty((0, 2)))
        assert out.shape == (0, 2)


class TestPiecewiseLinearConcave:
    def test_batch_matches_scalar_bitwise(self):
        hull = PiecewiseLinearConcave(
            [0.0, 1.0, 2.0, 4.0], [0.0, 0.9, 1.3, 1.5]
        )
        xs = np.array([-1.0, 0.0, 0.5, 1.0, 3.0, 4.0, 9.0])
        values = hull.value_batch(xs)
        derivatives = hull.derivative_batch(xs)
        assert np.array_equal(values, [hull.value(x) for x in xs])
        assert np.array_equal(derivatives, [hull.derivative(x) for x in xs])


class TestStackedGrids:
    def test_matches_per_grid_scalar_bitwise(self):
        # Same sample counts, *different* axes per grid — the Fig-4 case
        # (shared cache axis, per-app power scaling).
        grids = [make_grid(seed) for seed in range(3)]
        stack = StackedGrids(grids)
        rng = np.random.default_rng(7)
        points = rng.uniform(-1.0, 5.0, size=(20, 2))
        owners = rng.integers(0, 3, size=20)
        values = stack.value_points(points, owners)
        gradients = stack.gradient_points(points, owners)
        for k in range(20):
            grid = grids[owners[k]]
            assert values[k] == grid.value(points[k])
            assert np.array_equal(gradients[k], grid.gradient(points[k]))


class TestBatchedUtilitySet:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BatchedUtilitySet([])

    def test_all_grids_compile_to_one_group(self):
        # 8 same-shape grids with distinct power axes must fuse into a
        # single stacked group: one gradients() call costs exactly one
        # batched gradient dispatch (plus its inner value dispatch).
        utilities = [make_grid(seed) for seed in range(8)]
        evaluator = BatchedUtilitySet(utilities)
        allocations = np.tile([1.5, 0.8], (8, 1))
        before = EVAL_COUNTERS.snapshot()
        evaluator.gradients(allocations)
        delta = EVAL_COUNTERS.since(before)
        assert delta["batch_gradient_calls"] == 1
        assert delta["batch_value_calls"] == 1
        assert delta["scalar_calls"] == 0

    def test_mixed_groups_match_per_player_scalar(self):
        shared = LogUtility([1.0, 0.5], [2.0, 1.0])
        utilities = [
            make_grid(0),
            make_grid(1),
            shared,
            shared,  # same object twice: one shared-group dispatch
            LinearUtility([1.0, 2.0]),
            SaturatingUtility([1.0, 2.0], [3.0, 1.5]),
        ]
        evaluator = BatchedUtilitySet(utilities)
        rng = np.random.default_rng(3)
        allocations = rng.uniform(0.0, 3.0, size=(len(utilities), 2))
        out = evaluator.gradients(allocations)
        for i, utility in enumerate(utilities):
            assert np.array_equal(out[i], utility.gradient(allocations[i])), i

    def test_player_subset(self):
        utilities = [make_grid(seed) for seed in range(4)] + [
            LogUtility([1.0, 1.0])
        ]
        evaluator = BatchedUtilitySet(utilities)
        players = np.array([4, 1, 3])
        allocations = np.array([[1.0, 0.5], [2.0, 1.0], [0.0, 0.0]])
        out = evaluator.gradients(allocations, players=players)
        for k, i in enumerate(players):
            assert np.array_equal(out[k], utilities[i].gradient(allocations[k]))

    def test_duplicate_player_rows(self):
        # The same player may appear on several rows (probe batches).
        utilities = [make_grid(0), LogUtility([1.0, 1.0])]
        evaluator = BatchedUtilitySet(utilities)
        players = np.array([0, 0, 1, 0])
        allocations = np.array([[1.0, 0.5], [2.0, 1.0], [1.0, 1.0], [1.0, 0.5]])
        out = evaluator.gradients(allocations, players=players)
        for k, i in enumerate(players):
            assert np.array_equal(out[k], utilities[i].gradient(allocations[k]))
