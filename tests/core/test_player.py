"""Player mechanics: Equation 2 allocation and the bid-marginal chain rule."""

import numpy as np
import pytest

from repro.core import Player, bid_to_allocation, marginal_utility_of_bids
from repro.exceptions import MarketConfigurationError
from repro.utility import LinearUtility, LogUtility


class TestPlayer:
    def test_fields_and_utility(self):
        p = Player("mcf", LinearUtility([1.0, 2.0]), 100.0)
        assert p.budget == 100.0
        assert p.utility_of([1.0, 1.0]) == pytest.approx(3.0)

    def test_rejects_negative_budget(self):
        with pytest.raises(MarketConfigurationError):
            Player("x", LinearUtility([1.0]), -5.0)


class TestBidToAllocation:
    def test_equation_2(self):
        # r_j = b_j / (b_j + y_j) * C_j
        alloc = bid_to_allocation(
            np.array([2.0, 1.0]), np.array([2.0, 3.0]), np.array([8.0, 8.0])
        )
        np.testing.assert_allclose(alloc, [4.0, 2.0])

    def test_sole_bidder_gets_everything(self):
        alloc = bid_to_allocation(np.array([0.5]), np.array([0.0]), np.array([4.0]))
        np.testing.assert_allclose(alloc, [4.0])

    def test_unbid_resource_goes_nowhere(self):
        alloc = bid_to_allocation(np.array([0.0]), np.array([0.0]), np.array([4.0]))
        np.testing.assert_allclose(alloc, [0.0])


class TestMarginalUtilityOfBids:
    def test_matches_numeric_derivative(self):
        utility = LogUtility([1.0, 0.5], [1.0, 1.0])
        bids = np.array([3.0, 2.0])
        others = np.array([5.0, 4.0])
        caps = np.array([10.0, 6.0])
        analytic = marginal_utility_of_bids(utility, bids, others, caps)

        def u_of_bids(b):
            return utility.value(bid_to_allocation(b, others, caps))

        eps = 1e-6
        for j in range(2):
            hi = bids.copy()
            hi[j] += eps
            lo = bids.copy()
            lo[j] -= eps
            numeric = (u_of_bids(hi) - u_of_bids(lo)) / (2 * eps)
            assert analytic[j] == pytest.approx(numeric, rel=1e-4)

    def test_zero_when_alone_on_resource(self):
        # Owning the whole resource already: more bid buys nothing.
        utility = LinearUtility([1.0])
        marg = marginal_utility_of_bids(
            utility, np.array([2.0]), np.array([0.0]), np.array([5.0])
        )
        assert marg[0] == 0.0

    def test_large_for_first_bid_on_unbid_resource(self):
        utility = LinearUtility([1.0])
        marg = marginal_utility_of_bids(
            utility, np.array([0.0]), np.array([0.0]), np.array([5.0])
        )
        assert marg[0] > 1e6
