"""Zhang's two market settings coincide under normalized utilities.

Section 2.3 notes that because the multicore utility is normalized to
the standalone maximum (U_max = 1 for everyone), Zhang's
"proportionally balanced budget" market (budget proportional to maximum
utility, Lemma 2) and the equal-budget market (Lemma 3) are equivalent
within the paper's scope.  These tests pin that observation down.
"""

import numpy as np
import pytest

from repro.core import EqualBudget, find_equilibrium


class TestProportionalBudgetEquivalence:
    def test_budgets_proportional_to_max_utility_equal_normalized(self, bbpc_problem):
        # Max utility over purchasable extras is 1 for every player (the
        # utilities are normalized to standalone performance).
        for i, utility in enumerate(bbpc_problem.utilities):
            cap = bbpc_problem.per_player_caps[i]
            assert utility.value(cap) == pytest.approx(1.0, abs=1e-6)

    def test_proportional_and_equal_budget_markets_coincide(self, bbpc_problem):
        base = 100.0
        max_utils = np.array(
            [
                u.value(bbpc_problem.per_player_caps[i])
                for i, u in enumerate(bbpc_problem.utilities)
            ]
        )
        proportional = base * max_utils / max_utils.max()
        eq_equal = find_equilibrium(bbpc_problem.build_market([base] * 8))
        eq_prop = find_equilibrium(bbpc_problem.build_market(proportional.tolist()))
        np.testing.assert_allclose(
            eq_prop.state.allocations, eq_equal.state.allocations, rtol=1e-6
        )

    def test_lemma2_and_lemma3_bounds_both_apply(self, bbpc_problem):
        # With the two markets equivalent, the equal-budget equilibrium
        # carries Lemma 3's fairness (0.828-EF) while being the market
        # Lemma 2's PoA statement covers.
        result = EqualBudget().allocate(bbpc_problem)
        assert result.envy_freeness >= 0.828 - 1e-9
