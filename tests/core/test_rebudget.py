"""The ReBudget reassignment loop (Section 4.2)."""

import numpy as np
import pytest

from repro.core import (
    Market,
    Player,
    ReBudgetConfig,
    Resource,
    ResourceSet,
    run_rebudget,
)
from repro.core.theory import ef_lower_bound, min_mbr_for_envy_freeness
from repro.exceptions import MarketConfigurationError
from repro.utility import LogUtility, SaturatingUtility


def _heterogeneous_market():
    """One hungry player, one nearly saturated player, one flat player.

    The flat player's lambda is far below the hungry one's, so ReBudget
    must cut its budget.
    """
    rs = ResourceSet.of(Resource("cache", 10.0), Resource("power", 10.0))
    players = [
        Player("hungry", LogUtility([5.0, 5.0], [5.0, 5.0]), 100.0),
        Player("modest", LogUtility([1.0, 1.0], [1.0, 1.0]), 100.0),
        Player("flat", SaturatingUtility([0.05, 0.05], [0.5, 0.5]), 100.0),
    ]
    return Market(rs, players)


class TestReBudgetConfig:
    def test_explicit_step(self):
        step, floor = ReBudgetConfig(step=20.0).resolve()
        assert step == 20.0
        assert floor == 0.0

    def test_envy_freeness_target_derives_step_and_floor(self):
        cfg = ReBudgetConfig(min_envy_freeness=0.5)
        step, floor = cfg.resolve()
        mbr = min_mbr_for_envy_freeness(0.5)
        assert floor == pytest.approx(mbr * 100.0)
        assert step == pytest.approx((1.0 - mbr) * 100.0 / 2.0)

    def test_needs_step_or_target(self):
        with pytest.raises(MarketConfigurationError):
            ReBudgetConfig().resolve()

    def test_validation(self):
        with pytest.raises(MarketConfigurationError):
            ReBudgetConfig(step=-1.0).resolve()
        with pytest.raises(MarketConfigurationError):
            ReBudgetConfig(step=1.0, initial_budget=0.0).resolve()
        with pytest.raises(MarketConfigurationError):
            ReBudgetConfig(step=1.0, lambda_threshold=1.5).resolve()
        with pytest.raises(MarketConfigurationError):
            ReBudgetConfig(step=1.0, backoff=1.0).resolve()


class TestReBudgetRun:
    def test_cuts_low_lambda_players(self):
        market = _heterogeneous_market()
        result = run_rebudget(market, ReBudgetConfig(step=20.0))
        budgets = result.final_budgets
        # The flat player must have been cut; the hungry one must not.
        assert budgets[2] < 100.0
        assert budgets[0] == pytest.approx(100.0)

    def test_paper_budget_schedule(self):
        # With step=20 and stop at 1% of 100, cuts are 20+10+5+2.5+1.25,
        # so a player cut every round ends at 61.25 (Section 6.1.3).
        market = _heterogeneous_market()
        result = run_rebudget(market, ReBudgetConfig(step=20.0))
        always_cut_floor = 100.0 - (20.0 + 10.0 + 5.0 + 2.5 + 1.25)
        assert np.all(result.final_budgets >= always_cut_floor - 1e-9)
        assert result.final_budgets.min() == pytest.approx(61.25)

    def test_budgets_never_exceed_initial(self):
        market = _heterogeneous_market()
        result = run_rebudget(market, ReBudgetConfig(step=40.0))
        for r in result.rounds:
            assert np.all(r.budgets <= 100.0 + 1e-9)

    def test_mbr_floor_enforced(self):
        market = _heterogeneous_market()
        cfg = ReBudgetConfig(min_envy_freeness=0.6)
        result = run_rebudget(market, cfg)
        mbr_floor = min_mbr_for_envy_freeness(0.6)
        assert result.mbr >= mbr_floor - 1e-9
        # Theorem 2: the realized EF guarantee is at least the target.
        assert result.guaranteed_envy_freeness >= 0.6 - 1e-9

    def test_overshooting_step_cuts_onto_floor(self):
        # step=50 overshoots the MBR floor derived from the fairness
        # target (69 of 100): a full cut would land at 50, below the
        # floor.  The guard used to skip such players entirely, leaving
        # low-lambda budgets stranded at 100 and the configured fairness
        # knob without effect; a partial cut must land exactly on the
        # floor instead.
        market = _heterogeneous_market()
        cfg = ReBudgetConfig(min_envy_freeness=0.6, step=50.0)
        floor = min_mbr_for_envy_freeness(0.6) * 100.0
        assert 100.0 - 50.0 < floor  # the full step does cross the floor
        result = run_rebudget(market, cfg)
        assert result.rounds[0].cut_players  # the cut happened anyway
        assert result.final_budgets.min() == pytest.approx(floor)
        assert np.all(result.final_budgets >= floor - 1e-9)
        assert result.guaranteed_envy_freeness >= 0.6 - 1e-9

    def test_efficiency_non_decreasing_vs_equal_budget(self):
        market = _heterogeneous_market()
        result = run_rebudget(market, ReBudgetConfig(step=40.0))
        first = result.rounds[0].efficiency  # equal budgets
        assert result.efficiency >= first - 1e-6

    def test_mur_improves_or_holds(self):
        market = _heterogeneous_market()
        result = run_rebudget(market, ReBudgetConfig(step=40.0))
        assert result.mur >= result.rounds[0].mur - 0.05

    def test_final_round_reflects_last_cuts(self):
        market = _heterogeneous_market()
        result = run_rebudget(market, ReBudgetConfig(step=20.0))
        last = result.rounds[-1]
        np.testing.assert_allclose(last.budgets, market.budgets)
        # The final recorded round makes no further cuts.
        assert last.cut_players == []

    def test_quiescent_market_stops_immediately(self, small_market):
        # Symmetric-ish log players: lambdas are close, nobody is below
        # half the max, so the loop ends after one round.
        result = run_rebudget(small_market, ReBudgetConfig(step=20.0))
        assert len(result.rounds) == 1
        np.testing.assert_allclose(result.final_budgets, 100.0)

    def test_total_iterations_accumulates(self):
        market = _heterogeneous_market()
        result = run_rebudget(market, ReBudgetConfig(step=20.0))
        assert result.total_equilibrium_iterations == sum(
            r.equilibrium.iterations for r in result.rounds
        )

    def test_history_records_lambdas_and_metrics(self):
        market = _heterogeneous_market()
        result = run_rebudget(market, ReBudgetConfig(step=20.0))
        for r in result.rounds:
            assert r.lambdas.shape == (3,)
            assert 0.0 <= r.mur <= 1.0
            assert 0.0 <= r.mbr <= 1.0
            assert r.efficiency > 0.0

    def test_realized_ef_respects_theorem2(self):
        market = _heterogeneous_market()
        result = run_rebudget(market, ReBudgetConfig(step=40.0))
        eq = result.final_equilibrium
        from repro.core import envy_freeness

        realized = envy_freeness(
            [p.utility for p in market.players], eq.state.allocations
        )
        assert realized >= ef_lower_bound(result.mbr) - 1e-9
