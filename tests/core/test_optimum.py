"""The MaxEfficiency greedy + exchange welfare maximizer."""

import numpy as np
import pytest

from repro.core import max_efficiency_allocation
from repro.exceptions import MarketConfigurationError
from repro.utility import GridUtility2D, LinearUtility, LogUtility, SaturatingUtility


class TestGreedyOptimum:
    def test_linear_utilities_winner_takes_all(self):
        # OPT for linear utilities: each resource goes wholly to the
        # player with the largest weight (see the proof of Theorem 1).
        utilities = [LinearUtility([3.0, 1.0]), LinearUtility([1.0, 2.0])]
        out = max_efficiency_allocation(utilities, [10.0, 10.0], [0.5, 0.5])
        np.testing.assert_allclose(out.allocations[0], [10.0, 0.0])
        np.testing.assert_allclose(out.allocations[1], [0.0, 10.0])
        assert out.efficiency == pytest.approx(50.0)

    def test_saturating_utilities_split_at_caps(self):
        # Each player only values the first 2 units of resource 0.
        utilities = [
            SaturatingUtility([1.0, 0.0], [2.0, 1.0]),
            SaturatingUtility([1.0, 0.0], [2.0, 1.0]),
        ]
        out = max_efficiency_allocation(utilities, [4.0, 1.0], [0.25, 0.25])
        assert out.allocations[0, 0] == pytest.approx(2.0)
        assert out.allocations[1, 0] == pytest.approx(2.0)
        assert out.efficiency == pytest.approx(2.0)

    def test_symmetric_log_split_evenly(self):
        utilities = [LogUtility([1.0], [1.0]) for _ in range(4)]
        out = max_efficiency_allocation(utilities, [8.0], [0.125])
        np.testing.assert_allclose(out.allocations[:, 0], 2.0, atol=0.2)

    def test_no_leftovers(self):
        # Even when nobody values a resource, everything is handed out.
        utilities = [LinearUtility([1.0, 0.0]), LinearUtility([1.0, 0.0])]
        out = max_efficiency_allocation(utilities, [4.0, 6.0], [1.0, 1.0])
        assert out.allocations[:, 1].sum() == pytest.approx(6.0)

    def test_per_player_caps_respected(self):
        utilities = [LinearUtility([5.0]), LinearUtility([1.0])]
        caps = np.array([[3.0], [100.0]])
        out = max_efficiency_allocation(utilities, [10.0], [1.0], per_player_caps=caps)
        assert out.allocations[0, 0] <= 3.0 + 1e-9
        # The remainder flows to the second-best player.
        assert out.allocations[1, 0] == pytest.approx(7.0)

    def test_complementary_resources_fixed_by_exchange(self):
        # Player 0's cache is worthless without power and vice versa
        # (bilinear-ish complement via a grid); the myopic greedy can
        # stall, the exchange pass must recover the joint optimum.
        grid = GridUtility2D(
            np.array([0.0, 1.0]),
            np.array([0.0, 1.0]),
            np.array([[0.0, 0.0], [0.0, 10.0]]),
        )
        utilities = [grid, LinearUtility([0.5, 0.5])]
        out = max_efficiency_allocation(utilities, [1.0, 1.0], [0.25, 0.25])
        # OPT = 10 (give player 0 both) vs 1.0 for giving player 1 all.
        assert out.efficiency == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(MarketConfigurationError):
            max_efficiency_allocation([LinearUtility([1.0])], [1.0], [1.0, 1.0])
        with pytest.raises(MarketConfigurationError):
            max_efficiency_allocation([LinearUtility([1.0])], [1.0], [0.0])
        with pytest.raises(MarketConfigurationError):
            max_efficiency_allocation(
                [LinearUtility([1.0])], [1.0], [1.0], per_player_caps=np.zeros((2, 1))
            )

    def test_matches_analytic_concave_optimum(self):
        # For U_i = w_i * log(1 + r), the water-filling optimum equalizes
        # w_i / (1 + r_i); with w = (1, 2) and C = 3 the solution is
        # r = (2/3, 7/3).
        utilities = [LogUtility([1.0], [1.0]), LogUtility([2.0], [1.0])]
        out = max_efficiency_allocation(utilities, [3.0], [0.01])
        assert out.allocations[0, 0] == pytest.approx(2.0 / 3.0, abs=0.05)
        assert out.allocations[1, 0] == pytest.approx(7.0 / 3.0, abs=0.05)

    def test_beats_market_on_bbpc(self, bbpc_problem):
        from repro.core import EqualBudget, MaxEfficiency

        opt = MaxEfficiency().allocate(bbpc_problem)
        market = EqualBudget().allocate(bbpc_problem)
        assert opt.efficiency >= market.efficiency - 1e-6
