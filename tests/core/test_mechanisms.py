"""Allocation mechanisms behind the Figure 4/5 comparison."""

import numpy as np
import pytest

from repro.core import (
    AllocationProblem,
    BalancedBudget,
    ElasticitiesProportional,
    EqualBudget,
    EqualShare,
    MaxEfficiency,
    ReBudgetMechanism,
    standard_mechanism_suite,
)
from repro.exceptions import MarketConfigurationError
from repro.utility import CobbDouglasUtility, LogUtility, SaturatingUtility


@pytest.fixture
def synthetic_problem():
    """Three heterogeneous players over two abstract resources."""
    return AllocationProblem(
        utilities=[
            LogUtility([2.0, 0.5], [1.0, 1.0]),
            LogUtility([0.5, 2.0], [1.0, 1.0]),
            SaturatingUtility([0.3, 0.3], [1.0, 1.0]),
        ],
        capacities=np.array([10.0, 10.0]),
        resource_names=["cache", "power"],
        player_names=["a", "b", "c"],
        quanta=np.array([0.25, 0.25]),
    )


class TestAllocationProblem:
    def test_default_quanta(self):
        problem = AllocationProblem(
            utilities=[LogUtility([1.0])],
            capacities=np.array([256.0]),
            resource_names=["cache"],
            player_names=["p"],
        )
        np.testing.assert_allclose(problem.quanta, [1.0])

    def test_validation(self):
        with pytest.raises(MarketConfigurationError):
            AllocationProblem(
                utilities=[],
                capacities=np.array([1.0]),
                resource_names=["x"],
                player_names=[],
            )
        with pytest.raises(MarketConfigurationError):
            AllocationProblem(
                utilities=[LogUtility([1.0])],
                capacities=np.array([1.0]),
                resource_names=["x", "y"],
                player_names=["p"],
            )

    def test_build_market(self, synthetic_problem):
        market = synthetic_problem.build_market([10.0, 20.0, 30.0])
        np.testing.assert_allclose(market.budgets, [10.0, 20.0, 30.0])
        assert market.resources.names == ["cache", "power"]


class TestEqualShare:
    def test_even_split(self, synthetic_problem):
        result = EqualShare().allocate(synthetic_problem)
        np.testing.assert_allclose(result.allocations, np.full((3, 2), 10.0 / 3.0))
        assert result.envy_freeness == pytest.approx(1.0)

    def test_metrics_populated(self, synthetic_problem):
        result = EqualShare().allocate(synthetic_problem)
        assert result.efficiency == pytest.approx(float(result.utilities.sum()))
        assert result.mechanism == "EqualShare"


class TestEqualBudget:
    def test_equilibrium_metrics(self, synthetic_problem):
        result = EqualBudget().allocate(synthetic_problem)
        assert result.mbr == pytest.approx(1.0)
        assert result.mur is not None and 0.0 <= result.mur <= 1.0
        assert result.iterations >= 1
        np.testing.assert_allclose(result.budgets, 100.0)
        np.testing.assert_allclose(
            result.allocations.sum(axis=0), synthetic_problem.capacities, rtol=1e-9
        )

    def test_beats_equal_share_on_heterogeneous_problem(self, synthetic_problem):
        share = EqualShare().allocate(synthetic_problem)
        market = EqualBudget().allocate(synthetic_problem)
        assert market.efficiency >= share.efficiency - 1e-9


class TestBalancedBudget:
    @pytest.fixture
    def offset_problem(self):
        """Players with non-zero minimum utilities (free minimums).

        Potential = (U_max - U_min) / U_max differs only when U_min > 0,
        which is the normal CMP situation (every core's free resources
        already buy some performance).
        """
        from repro.utility import ScaledUtility

        return AllocationProblem(
            utilities=[
                ScaledUtility(LogUtility([0.4, 0.1], [1.0, 1.0]), 1.0, 0.1),
                ScaledUtility(SaturatingUtility([0.1, 0.1], [1.0, 1.0]), 1.0, 0.8),
            ],
            capacities=np.array([10.0, 10.0]),
            resource_names=["cache", "power"],
            player_names=["hungry", "content"],
            quanta=np.array([0.25, 0.25]),
        )

    def test_low_potential_players_get_less(self, offset_problem):
        result = BalancedBudget().allocate(offset_problem)
        # The content player starts at 0.8 of its max: tiny potential.
        assert result.budgets[1] < result.budgets[0]
        assert result.budgets.max() == pytest.approx(100.0)

    def test_mbr_below_one(self, offset_problem):
        result = BalancedBudget().allocate(offset_problem)
        assert result.mbr < 1.0

    def test_equal_potentials_degenerate_to_equal_budgets(self, synthetic_problem):
        # With U_min = 0 for everyone, potential is 1 for everyone and
        # Balanced collapses to EqualBudget (the paper's observation 1).
        result = BalancedBudget().allocate(synthetic_problem)
        np.testing.assert_allclose(result.budgets, 100.0)


class TestReBudgetMechanism:
    def test_names(self):
        assert ReBudgetMechanism(step=20).name == "ReBudget-20"
        assert ReBudgetMechanism(min_envy_freeness=0.5).name == "ReBudget(EF>=0.5)"

    def test_details_contain_rounds(self, synthetic_problem):
        result = ReBudgetMechanism(step=30).allocate(synthetic_problem)
        rebudget = result.details["rebudget"]
        assert len(rebudget.rounds) >= 1
        assert result.mbr <= 1.0

    def test_ef_target_guarantee(self, synthetic_problem):
        result = ReBudgetMechanism(min_envy_freeness=0.6).allocate(synthetic_problem)
        from repro.core.theory import ef_lower_bound

        assert result.envy_freeness >= ef_lower_bound(result.mbr) - 1e-9
        assert ef_lower_bound(result.mbr) >= 0.6 - 1e-9


class TestMaxEfficiency:
    def test_is_upper_bound_among_mechanisms(self, synthetic_problem):
        opt = MaxEfficiency().allocate(synthetic_problem)
        for mech in (EqualShare(), EqualBudget(), ReBudgetMechanism(step=30)):
            assert opt.efficiency >= mech.allocate(synthetic_problem).efficiency - 1e-6


class TestElasticitiesProportional:
    def test_recovers_cobb_douglas_elasticities(self):
        problem = AllocationProblem(
            utilities=[
                CobbDouglasUtility([0.8, 0.1]),
                CobbDouglasUtility([0.1, 0.8]),
            ],
            capacities=np.array([10.0, 10.0]),
            resource_names=["cache", "power"],
            player_names=["a", "b"],
        )
        result = ElasticitiesProportional().allocate(problem)
        fitted = result.details["elasticities"]
        np.testing.assert_allclose(fitted[0], [0.8, 0.1], atol=0.05)
        np.testing.assert_allclose(fitted[1], [0.1, 0.8], atol=0.05)
        # Resource split is elasticity-proportional.
        assert result.allocations[0, 0] == pytest.approx(10.0 * 0.8 / 0.9, rel=0.05)

    def test_misallocates_on_cliffy_utilities(self, bbpc_problem):
        # The paper's critique: EP underperforms the market when the
        # utilities are not Cobb-Douglas shaped.
        ep = ElasticitiesProportional().allocate(bbpc_problem)
        market = EqualBudget().allocate(bbpc_problem)
        assert ep.efficiency <= market.efficiency + 1e-6


class TestStandardSuite:
    def test_lineup(self):
        names = [m.name for m in standard_mechanism_suite()]
        assert names == [
            "EqualShare",
            "EqualBudget",
            "Balanced",
            "ReBudget-20",
            "ReBudget-40",
            "MaxEfficiency",
        ]
