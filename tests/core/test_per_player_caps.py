"""Per-player caps: no mechanism may allocate beyond ``extra_capacity_for``.

Regression for the bug where ``EqualShare`` and
``ElasticitiesProportional`` ignored ``problem.per_player_caps``,
handing a player more of a resource than its cap and inflating its
measured utility relative to the cap-honoring ``MaxEfficiency``.
"""

import numpy as np
import pytest

from repro.core import (
    AllocationProblem,
    ElasticitiesProportional,
    EqualShare,
    clamp_to_per_player_caps,
    standard_mechanism_suite,
)
from repro.utility import LogUtility


class TestClampToPerPlayerCaps:
    def test_noop_when_under_caps(self):
        alloc = np.array([[2.0, 1.0], [3.0, 2.0]])
        caps = np.full((2, 2), 10.0)
        np.testing.assert_allclose(clamp_to_per_player_caps(alloc, caps), alloc)

    def test_surplus_redistributed_proportionally(self):
        alloc = np.array([[6.0], [3.0], [1.0]])
        caps = np.array([[4.0], [10.0], [10.0]])
        clamped = clamp_to_per_player_caps(alloc, caps)
        # Player 0 is cut to 4; its surplus of 2 goes 3:1 to the others.
        np.testing.assert_allclose(clamped[:, 0], [4.0, 4.5, 1.5])
        assert clamped.sum() == pytest.approx(alloc.sum())

    def test_cascading_redistribution(self):
        # Redistribution pushes player 1 over its own cap; the second
        # pass must cut it too and hand the remainder to player 2.
        alloc = np.array([[8.0], [3.0], [1.0]])
        caps = np.array([[2.0], [4.0], [10.0]])
        clamped = clamp_to_per_player_caps(alloc, caps)
        np.testing.assert_allclose(clamped[:, 0], [2.0, 4.0, 6.0])
        assert np.all(clamped <= caps + 1e-9)

    def test_unabsorbable_surplus_dropped(self):
        alloc = np.array([[5.0], [5.0]])
        caps = np.array([[2.0], [2.0]])
        clamped = clamp_to_per_player_caps(alloc, caps)
        np.testing.assert_allclose(clamped[:, 0], [2.0, 2.0])

    def test_zero_allocation_receivers_share_equally(self):
        alloc = np.array([[6.0], [0.0], [0.0]])
        caps = np.array([[2.0], [10.0], [10.0]])
        clamped = clamp_to_per_player_caps(alloc, caps)
        np.testing.assert_allclose(clamped[:, 0], [2.0, 2.0, 2.0])

    def test_shape_mismatch_rejected(self):
        from repro.exceptions import MarketConfigurationError

        with pytest.raises(MarketConfigurationError):
            clamp_to_per_player_caps(np.ones((2, 2)), np.ones((3, 2)))


@pytest.fixture
def capped_problem():
    """Two resources; player 0's cache cap is far below its equal share."""
    return AllocationProblem(
        utilities=[
            LogUtility([2.0, 0.5], [1.0, 1.0]),
            LogUtility([0.5, 2.0], [1.0, 1.0]),
            LogUtility([1.0, 1.0], [1.0, 1.0]),
        ],
        capacities=np.array([12.0, 12.0]),
        resource_names=["cache", "power"],
        player_names=["a", "b", "c"],
        quanta=np.array([0.25, 0.25]),
        per_player_caps=np.array([[1.0, 12.0], [12.0, 2.0], [12.0, 12.0]]),
    )


class TestMechanismsHonorCaps:
    def test_equal_share_clamps_and_redistributes(self, capped_problem):
        result = EqualShare().allocate(capped_problem)
        assert np.all(result.allocations <= capped_problem.per_player_caps + 1e-9)
        # Equal share would give everyone 4.0 cache; player 0's cap is
        # 1.0, so the surplus must flow to players 1 and 2.
        assert result.allocations[0, 0] == pytest.approx(1.0)
        assert result.allocations[1:, 0].sum() == pytest.approx(11.0)

    def test_elasticities_proportional_clamps(self, capped_problem):
        result = ElasticitiesProportional().allocate(capped_problem)
        assert np.all(result.allocations <= capped_problem.per_player_caps + 1e-9)

    def test_no_mechanism_allocates_above_caps(self, capped_problem):
        for mech in standard_mechanism_suite() + [ElasticitiesProportional()]:
            result = mech.allocate(capped_problem)
            assert np.all(
                result.allocations <= capped_problem.per_player_caps + 1e-6
            ), mech.name

    def test_capless_problem_unchanged(self):
        problem = AllocationProblem(
            utilities=[LogUtility([1.0, 1.0], [1.0, 1.0])] * 2,
            capacities=np.array([10.0, 10.0]),
            resource_names=["cache", "power"],
            player_names=["a", "b"],
            quanta=np.array([0.25, 0.25]),
        )
        result = EqualShare().allocate(problem)
        np.testing.assert_allclose(result.allocations, np.full((2, 2), 5.0))
