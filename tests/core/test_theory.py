"""Theorem 1 and Theorem 2 bound functions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    check_theorem1,
    check_theorem2,
    ef_lower_bound,
    fig1_ef_series,
    fig1_poa_series,
    min_mbr_for_envy_freeness,
    poa_lower_bound,
    zhang_equal_budget_ef_bound,
    zhang_poa_order,
)

_unit = st.floats(min_value=0.0, max_value=1.0)


class TestTheorem1:
    def test_anchor_points(self):
        # Theorem 1's statement: MUR >= 0.5 -> PoA >= 1 - 1/(4 MUR) >= 0.5.
        assert poa_lower_bound(0.5) == pytest.approx(0.5)
        assert poa_lower_bound(1.0) == pytest.approx(0.75)
        # Below 0.5 the bound is MUR itself.
        assert poa_lower_bound(0.3) == pytest.approx(0.3)
        assert poa_lower_bound(0.0) == 0.0

    def test_continuous_at_half(self):
        assert poa_lower_bound(0.5 - 1e-9) == pytest.approx(poa_lower_bound(0.5), abs=1e-6)

    @given(_unit, _unit)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_mur(self, a, b):
        lo, hi = sorted((a, b))
        assert poa_lower_bound(lo) <= poa_lower_bound(hi) + 1e-12

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            poa_lower_bound(-0.1)
        with pytest.raises(ValueError):
            poa_lower_bound(1.5)

    def test_check_helper(self):
        assert check_theorem1(0.8, 0.9)
        assert not check_theorem1(0.8, 0.5)


class TestTheorem2:
    def test_anchor_points(self):
        # MBR = 1 (equal budgets) recovers Zhang's 0.828 bound.
        assert ef_lower_bound(1.0) == pytest.approx(2.0 * math.sqrt(2.0) - 2.0)
        assert ef_lower_bound(0.0) == pytest.approx(0.0)

    def test_paper_rebudget_bounds(self):
        # Section 6.2: ReBudget-20 -> bound ~0.53, ReBudget-40 -> ~0.19.
        # Those correspond to minimum budgets of 61.25 and 21.25.
        assert ef_lower_bound(0.6125) == pytest.approx(0.54, abs=0.01)
        assert ef_lower_bound(0.2125) == pytest.approx(0.20, abs=0.01)

    @given(_unit, _unit)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_mbr(self, a, b):
        lo, hi = sorted((a, b))
        assert ef_lower_bound(lo) <= ef_lower_bound(hi) + 1e-12

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ef_lower_bound(-0.01)
        with pytest.raises(ValueError):
            ef_lower_bound(1.01)

    def test_check_helper(self):
        assert check_theorem2(1.0, 0.9)
        assert not check_theorem2(1.0, 0.5)


class TestInversion:
    @given(st.floats(min_value=0.0, max_value=2.0 * math.sqrt(2.0) - 2.0))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, ef_target):
        mbr = min_mbr_for_envy_freeness(ef_target)
        assert ef_lower_bound(mbr) >= ef_target - 1e-9

    def test_tightness(self):
        # The returned MBR is the smallest that works (up to clamping).
        mbr = min_mbr_for_envy_freeness(0.5)
        assert ef_lower_bound(mbr) == pytest.approx(0.5, abs=1e-9)

    def test_rejects_unachievable_targets(self):
        with pytest.raises(ValueError):
            min_mbr_for_envy_freeness(0.9)
        with pytest.raises(ValueError):
            min_mbr_for_envy_freeness(-0.1)


class TestZhangResults:
    def test_equal_budget_bound_value(self):
        assert zhang_equal_budget_ef_bound() == pytest.approx(0.828, abs=5e-4)

    def test_poa_order(self):
        assert zhang_poa_order(64) == pytest.approx(0.125)
        with pytest.raises(ValueError):
            zhang_poa_order(0)


class TestFig1Series:
    def test_shapes_and_ends(self):
        mur, poa = fig1_poa_series(51)
        mbr, ef = fig1_ef_series(51)
        assert mur.size == poa.size == 51
        assert poa[0] == 0.0 and poa[-1] == pytest.approx(0.75)
        assert ef[0] == 0.0 and ef[-1] == pytest.approx(0.828, abs=5e-4)
        assert np.all(np.diff(poa) >= -1e-12)
        assert np.all(np.diff(ef) >= -1e-12)
