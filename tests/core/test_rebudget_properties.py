"""Property-based invariants of the ReBudget loop on random markets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Market, Player, ReBudgetConfig, Resource, ResourceSet, run_rebudget
from repro.core.theory import ef_lower_bound, min_mbr_for_envy_freeness
from repro.utility import LogUtility, SaturatingUtility

_weight = st.floats(min_value=0.05, max_value=4.0)


@st.composite
def rebudget_markets(draw):
    """Random 3-5 player markets mixing hungry and saturating utilities."""
    num_players = draw(st.integers(min_value=3, max_value=5))
    players = []
    for i in range(num_players):
        if draw(st.booleans()):
            utility = LogUtility([draw(_weight), draw(_weight)], [1.0, 1.0])
        else:
            cap = draw(st.floats(min_value=0.2, max_value=3.0))
            utility = SaturatingUtility([draw(_weight), draw(_weight)], [cap, cap])
        players.append(Player(f"p{i}", utility, 100.0))
    resources = ResourceSet.of(Resource("r0", 10.0), Resource("r1", 6.0))
    return Market(resources, players)


class TestReBudgetInvariants:
    @given(rebudget_markets(), st.sampled_from([10.0, 20.0, 40.0]))
    @settings(max_examples=25, deadline=None)
    def test_budget_envelope(self, market, step):
        result = run_rebudget(market, ReBudgetConfig(step=step))
        # Budgets only ever decrease, never exceed B, and never fall
        # below B minus the geometric cut series.
        max_total_cut = step * 2.0
        for r in result.rounds:
            assert np.all(r.budgets <= 100.0 + 1e-9)
            assert np.all(r.budgets >= 100.0 - max_total_cut - 1e-9)

    @given(rebudget_markets())
    @settings(max_examples=20, deadline=None)
    def test_budgets_monotone_across_rounds(self, market):
        result = run_rebudget(market, ReBudgetConfig(step=30.0))
        for earlier, later in zip(result.rounds, result.rounds[1:]):
            assert np.all(later.budgets <= earlier.budgets + 1e-9)

    @given(rebudget_markets(), st.sampled_from([0.3, 0.5, 0.7]))
    @settings(max_examples=20, deadline=None)
    def test_ef_target_always_guaranteed(self, market, ef_target):
        result = run_rebudget(
            market, ReBudgetConfig(min_envy_freeness=ef_target)
        )
        assert result.mbr >= min_mbr_for_envy_freeness(ef_target) - 1e-9
        assert ef_lower_bound(result.mbr) >= ef_target - 1e-9

    @given(rebudget_markets())
    @settings(max_examples=20, deadline=None)
    def test_realized_ef_respects_theorem2(self, market):
        from repro.core import envy_freeness

        result = run_rebudget(market, ReBudgetConfig(step=40.0))
        realized = envy_freeness(
            [p.utility for p in market.players],
            result.final_equilibrium.state.allocations,
        )
        assert realized >= ef_lower_bound(result.mbr) - 1e-6
