"""Bidding strategies: the paper's hill climb and the exact reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExactBidder, HillClimbBidder
from repro.core.bidding import BiddingStrategy, _project_to_simplex
from repro.core.player import bid_to_allocation
from repro.utility import LinearUtility, LogUtility, SaturatingUtility


def _u_of_bids(utility, others, caps):
    def f(bids):
        return utility.value(bid_to_allocation(bids, others, caps))

    return f


class TestHillClimbBidder:
    def test_spends_full_budget(self):
        bidder = HillClimbBidder()
        bids = bidder.optimize(
            LogUtility([1.0, 1.0]), 100.0, np.array([50.0, 50.0]), np.array([10.0, 10.0])
        )
        assert bids.sum() == pytest.approx(100.0)
        assert np.all(bids >= 0.0)

    def test_improves_on_equal_split(self):
        # Utility strongly favouring resource 0: the climb must shift
        # money toward it.
        utility = LogUtility([5.0, 0.1])
        others = np.array([50.0, 50.0])
        caps = np.array([10.0, 10.0])
        bidder = HillClimbBidder()
        bids = bidder.optimize(utility, 100.0, others, caps)
        f = _u_of_bids(utility, others, caps)
        assert f(bids) >= f(np.array([50.0, 50.0]))
        assert bids[0] > bids[1]

    def test_single_resource_bids_everything(self):
        bids = HillClimbBidder().optimize(
            LinearUtility([1.0]), 42.0, np.array([10.0]), np.array([5.0])
        )
        np.testing.assert_allclose(bids, [42.0])

    def test_zero_budget(self):
        bids = HillClimbBidder().optimize(
            LinearUtility([1.0, 1.0]), 0.0, np.array([1.0, 1.0]), np.array([5.0, 5.0])
        )
        np.testing.assert_allclose(bids, [0.0, 0.0])

    def test_near_equalizes_marginals_when_interior(self):
        from repro.core.player import marginal_utility_of_bids

        utility = LogUtility([1.0, 1.0])
        others = np.array([80.0, 20.0])
        caps = np.array([10.0, 10.0])
        bids = HillClimbBidder().optimize(utility, 100.0, others, caps)
        marg = marginal_utility_of_bids(utility, bids, others, caps)
        # Stop criterion: within 5% (plus the finite final step).
        assert marg.max() - marg.min() <= 0.12 * marg.max()

    @given(
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=1.0, max_value=200.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_budget_feasibility_property(self, w0, w1, others_scale):
        utility = LogUtility([w0, w1])
        others = np.array([others_scale, others_scale / 2.0])
        caps = np.array([10.0, 10.0])
        bids = HillClimbBidder().optimize(utility, 100.0, others, caps)
        assert bids.sum() <= 100.0 + 1e-9
        assert np.all(bids >= -1e-12)


class TestExactBidder:
    def test_matches_or_beats_hill_climb(self):
        utility = LogUtility([3.0, 1.0])
        others = np.array([40.0, 60.0])
        caps = np.array([10.0, 10.0])
        f = _u_of_bids(utility, others, caps)
        hill = HillClimbBidder().optimize(utility, 100.0, others, caps)
        exact = ExactBidder().optimize(utility, 100.0, others, caps)
        assert f(exact) >= f(hill) - 1e-6

    def test_analytic_two_symmetric_resources(self):
        # Symmetric utility + symmetric others => optimal bids are equal.
        utility = LogUtility([1.0, 1.0])
        others = np.array([30.0, 30.0])
        caps = np.array([10.0, 10.0])
        bids = ExactBidder().optimize(utility, 100.0, others, caps)
        assert bids[0] == pytest.approx(bids[1], rel=1e-3)

    def test_warm_start_rescaled(self):
        utility = LogUtility([1.0, 1.0])
        bids = ExactBidder().optimize(
            utility,
            50.0,
            np.array([10.0, 10.0]),
            np.array([5.0, 5.0]),
            current_bids=np.array([80.0, 20.0]),
        )
        assert bids.sum() == pytest.approx(50.0)

    def test_saturating_utility_stops_buying(self):
        # Once saturated, extra bids add nothing; budget still feasible.
        utility = SaturatingUtility([1.0, 1.0], [1.0, 1.0])
        bids = ExactBidder().optimize(
            utility, 100.0, np.array([1.0, 1.0]), np.array([10.0, 10.0])
        )
        assert bids.sum() <= 100.0 + 1e-9


class TestPlayerLambda:
    def test_lambda_is_max_active_marginal(self):
        utility = LogUtility([1.0, 1.0])
        bids = np.array([50.0, 0.0])
        others = np.array([50.0, 50.0])
        caps = np.array([10.0, 10.0])
        lam = BiddingStrategy.player_lambda(utility, bids, others, caps)
        from repro.core.player import marginal_utility_of_bids

        marg = marginal_utility_of_bids(utility, bids, others, caps)
        assert lam == pytest.approx(marg[0])

    def test_lambda_zero_bids(self):
        utility = LogUtility([1.0, 1.0])
        lam = BiddingStrategy.player_lambda(
            utility, np.zeros(2), np.array([1.0, 1.0]), np.array([5.0, 5.0])
        )
        assert lam >= 0.0


class TestSimplexProjection:
    def test_already_feasible(self):
        p = _project_to_simplex(np.array([30.0, 70.0]), 100.0)
        np.testing.assert_allclose(p, [30.0, 70.0])

    def test_clips_negative(self):
        p = _project_to_simplex(np.array([-50.0, 150.0]), 100.0)
        assert np.all(p >= 0.0)
        assert p.sum() == pytest.approx(100.0)

    @given(
        st.lists(st.floats(min_value=-100.0, max_value=100.0), min_size=2, max_size=6),
        st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_projection_properties(self, vector, total):
        p = _project_to_simplex(np.array(vector), total)
        assert np.all(p >= -1e-9)
        assert p.sum() == pytest.approx(total, rel=1e-6)

    def test_zero_total(self):
        p = _project_to_simplex(np.array([1.0, 2.0]), 0.0)
        np.testing.assert_allclose(p, [0.0, 0.0])
