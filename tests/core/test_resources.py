"""Resource descriptors."""

import numpy as np
import pytest

from repro.core import Resource, ResourceSet
from repro.exceptions import MarketConfigurationError


class TestResource:
    def test_fields(self):
        r = Resource("cache", 4.0e6, unit="bytes")
        assert r.name == "cache"
        assert r.capacity == 4.0e6
        assert r.unit == "bytes"

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(MarketConfigurationError):
            Resource("cache", 0.0)
        with pytest.raises(MarketConfigurationError):
            Resource("cache", -1.0)


class TestResourceSet:
    def test_of_and_accessors(self):
        rs = ResourceSet.of(Resource("cache", 2.0), Resource("power", 3.0))
        assert len(rs) == 2
        assert rs.names == ["cache", "power"]
        np.testing.assert_allclose(rs.capacities, [2.0, 3.0])
        assert rs[1].name == "power"
        assert [r.name for r in rs] == ["cache", "power"]

    def test_index_of(self):
        rs = ResourceSet.of(Resource("cache", 2.0), Resource("power", 3.0))
        assert rs.index_of("power") == 1
        with pytest.raises(KeyError):
            rs.index_of("dram")

    def test_rejects_empty(self):
        with pytest.raises(MarketConfigurationError):
            ResourceSet.of()

    def test_rejects_duplicates(self):
        with pytest.raises(MarketConfigurationError):
            ResourceSet.of(Resource("x", 1.0), Resource("x", 2.0))
