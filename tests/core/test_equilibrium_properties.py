"""Property-based invariants of the market equilibrium.

Hypothesis generates random markets (players with random concave
utilities and budgets); every equilibrium the solver produces must
satisfy the structural invariants of Section 2 — full distribution,
budget feasibility, price consistency — and the realized metrics must
respect Theorems 1 and 2.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Market,
    Player,
    Resource,
    ResourceSet,
    envy_freeness,
    find_equilibrium,
    market_budget_range,
    market_utility_range,
)
from repro.core.theory import ef_lower_bound
from repro.utility import LogUtility, PowerUtility

_weight = st.floats(min_value=0.05, max_value=5.0)
_budget = st.floats(min_value=10.0, max_value=200.0)


@st.composite
def random_markets(draw):
    num_players = draw(st.integers(min_value=2, max_value=6))
    players = []
    for i in range(num_players):
        kind = draw(st.sampled_from(["log", "power"]))
        w = [draw(_weight), draw(_weight)]
        if kind == "log":
            utility = LogUtility(w, [1.0, 1.0])
        else:
            utility = PowerUtility(w, [0.5, 0.7])
        players.append(Player(f"p{i}", utility, draw(_budget)))
    resources = ResourceSet.of(Resource("r0", 10.0), Resource("r1", 4.0))
    return Market(resources, players)


class TestEquilibriumInvariants:
    @given(random_markets())
    @settings(max_examples=40, deadline=None)
    def test_full_distribution_and_feasibility(self, market):
        eq = find_equilibrium(market)
        # Every unit of every resource is handed out (strictly positive
        # marginal utilities -> everyone bids on everything).
        np.testing.assert_allclose(
            eq.state.allocations.sum(axis=0), market.capacities, rtol=1e-9
        )
        # Nobody exceeds its budget.
        spent = eq.state.bids.sum(axis=1)
        for player, s in zip(market.players, spent):
            assert s <= player.budget + 1e-9
        # Prices reconstruct total bids (Equation 1).
        np.testing.assert_allclose(
            eq.state.prices * market.capacities, eq.state.bids.sum(axis=0), rtol=1e-9
        )

    @given(random_markets())
    @settings(max_examples=40, deadline=None)
    def test_allocations_proportional_to_bids(self, market):
        eq = find_equilibrium(market)
        bids = eq.state.bids
        totals = bids.sum(axis=0)
        for j in range(market.num_resources):
            if totals[j] > 0:
                shares = bids[:, j] / totals[j]
                np.testing.assert_allclose(
                    eq.state.allocations[:, j], shares * market.capacities[j], rtol=1e-9
                )

    @given(random_markets())
    @settings(max_examples=30, deadline=None)
    def test_theorem2_on_random_markets(self, market):
        eq = find_equilibrium(market)
        mbr = market_budget_range(market.budgets)
        realized = envy_freeness(
            [p.utility for p in market.players], eq.state.allocations
        )
        assert realized >= ef_lower_bound(mbr) - 1e-6

    @given(random_markets())
    @settings(max_examples=30, deadline=None)
    def test_metrics_in_range(self, market):
        eq = find_equilibrium(market)
        assert 0.0 <= market_utility_range(eq.lambdas) <= 1.0
        assert eq.efficiency >= 0.0
        assert eq.iterations <= 30
