"""Price-taking vs price-anticipating bidders.

Economic folklore the implementation should reproduce: anticipating
one's own price impact matters in small markets and washes out in large
ones (each player's bid is a vanishing share of the price).
"""

import numpy as np
import pytest

from repro.core import (
    HillClimbBidder,
    Market,
    Player,
    PriceTakingBidder,
    Resource,
    ResourceSet,
    find_equilibrium,
)
from repro.utility import LogUtility


def _market(n, weights=None):
    rs = ResourceSet.of(Resource("cache", 10.0), Resource("power", 5.0))
    players = []
    for i in range(n):
        w = weights[i] if weights else [1.0 + (i % 3), 1.0 + ((i + 1) % 3)]
        players.append(Player(f"p{i}", LogUtility(w, [1.0, 1.0]), 100.0))
    return Market(rs, players)


class TestPriceTakingBidder:
    def test_spends_at_most_budget(self):
        bidder = PriceTakingBidder()
        bids = bidder.optimize(
            LogUtility([2.0, 1.0]), 100.0, np.array([50.0, 50.0]), np.array([10.0, 5.0])
        )
        assert bids.sum() <= 100.0 + 1e-9
        assert np.all(bids >= 0.0)

    def test_single_resource(self):
        bids = PriceTakingBidder().optimize(
            LogUtility([1.0]), 40.0, np.array([10.0]), np.array([5.0])
        )
        np.testing.assert_allclose(bids, [40.0])

    def test_zero_budget(self):
        bids = PriceTakingBidder().optimize(
            LogUtility([1.0, 1.0]), 0.0, np.array([1.0, 1.0]), np.array([5.0, 5.0])
        )
        np.testing.assert_allclose(bids, 0.0)

    def test_shifts_toward_valuable_resource(self):
        bids = PriceTakingBidder().optimize(
            LogUtility([5.0, 0.1]), 100.0, np.array([50.0, 50.0]), np.array([10.0, 10.0])
        )
        assert bids[0] > bids[1]


class TestAnticipationEffect:
    def test_large_market_agreement(self):
        # With 12 players, one bid barely moves prices: the two bidder
        # models converge to nearly the same equilibrium welfare.
        anticipating = find_equilibrium(_market(12), bidder=HillClimbBidder())
        taking = find_equilibrium(_market(12), bidder=PriceTakingBidder())
        assert taking.efficiency == pytest.approx(anticipating.efficiency, rel=0.03)

    def test_equilibria_allocate_everything(self):
        eq = find_equilibrium(_market(4), bidder=PriceTakingBidder())
        np.testing.assert_allclose(
            eq.state.allocations.sum(axis=0), [10.0, 5.0], rtol=1e-9
        )
