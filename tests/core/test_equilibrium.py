"""The bidding-pricing equilibrium loop (Section 2.1)."""

import numpy as np
import pytest

from repro.core import (
    ExactBidder,
    HillClimbBidder,
    Market,
    Player,
    Resource,
    ResourceSet,
    find_equilibrium,
)
from repro.core.equilibrium import _prices_stable
from repro.utility import LogUtility


def _symmetric_market(n=4):
    rs = ResourceSet.of(Resource("cache", 10.0), Resource("power", 5.0))
    players = [
        Player(f"p{i}", LogUtility([1.0, 1.0], [1.0, 1.0]), 100.0) for i in range(n)
    ]
    return Market(rs, players)


class TestFindEquilibrium:
    def test_converges_and_allocates_everything(self, small_market):
        eq = find_equilibrium(small_market)
        assert eq.converged
        assert eq.iterations <= 30
        np.testing.assert_allclose(
            eq.state.allocations.sum(axis=0), small_market.capacities, rtol=1e-9
        )

    def test_symmetric_players_get_equal_shares(self):
        market = _symmetric_market()
        eq = find_equilibrium(market)
        assert eq.converged
        for j in range(2):
            col = eq.state.allocations[:, j]
            np.testing.assert_allclose(col, col[0], rtol=1e-6)

    def test_lambdas_positive_for_hungry_players(self, small_market):
        eq = find_equilibrium(small_market)
        assert np.all(eq.lambdas > 0.0)

    def test_fail_safe_iteration_cap(self, small_market):
        eq = find_equilibrium(small_market, max_iterations=1, price_tolerance=1e-12)
        assert eq.iterations == 1
        assert not eq.converged

    def test_price_history_recorded(self, small_market):
        eq = find_equilibrium(small_market)
        assert len(eq.price_history) == eq.iterations + 1

    def test_gauss_seidel_agrees_with_jacobi(self, small_market):
        jac = find_equilibrium(small_market, update="jacobi")
        gs = find_equilibrium(small_market, update="gauss-seidel")
        assert gs.efficiency == pytest.approx(jac.efficiency, rel=0.05)

    def test_rejects_unknown_update(self, small_market):
        with pytest.raises(ValueError):
            find_equilibrium(small_market, update="chaotic")

    def test_warm_start(self, small_market):
        cold = find_equilibrium(small_market)
        warm = find_equilibrium(small_market, initial_bids=cold.state.bids)
        assert warm.iterations <= cold.iterations
        assert warm.efficiency == pytest.approx(cold.efficiency, rel=1e-2)

    def test_exact_bidder_supported(self, small_market):
        eq = find_equilibrium(small_market, bidder=ExactBidder())
        assert eq.converged
        assert eq.efficiency > 0.0

    def test_budget_constraint_respected(self, small_market):
        eq = find_equilibrium(small_market)
        spent = eq.state.bids.sum(axis=1)
        for player, s in zip(small_market.players, spent):
            assert s <= player.budget + 1e-9

    def test_higher_budget_buys_more(self):
        rs = ResourceSet.of(Resource("cache", 10.0))
        players = [
            Player("rich", LogUtility([1.0]), 200.0),
            Player("poor", LogUtility([1.0]), 50.0),
        ]
        eq = find_equilibrium(Market(rs, players))
        assert eq.state.allocations[0, 0] > eq.state.allocations[1, 0]
        # With identical single-resource utilities, allocation is exactly
        # budget-proportional.
        assert eq.state.allocations[0, 0] == pytest.approx(8.0)

    def test_efficiency_property(self, small_market):
        eq = find_equilibrium(small_market)
        assert eq.efficiency == pytest.approx(float(eq.utilities.sum()))


class TestPriceStability:
    def test_within_tolerance(self):
        assert _prices_stable(np.array([1.0, 2.0]), np.array([1.005, 2.01]), 0.01)

    def test_outside_tolerance(self):
        assert not _prices_stable(np.array([1.0]), np.array([1.1]), 0.01)

    def test_zero_prices_are_stable(self):
        assert _prices_stable(np.array([0.0]), np.array([0.0]), 0.01)
