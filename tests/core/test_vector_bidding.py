"""Lockstep multi-player hill climb vs. the scalar reference.

The :class:`VectorHillClimbBidder` advances every player's Section 4.1.2
climb with batched marginal evaluations; because each per-player decision
mirrors the scalar arithmetic operation for operation, the bid matrices
must be *bitwise identical* to N independent scalar climbs — cold, warm,
stale-seeded, zero-budget, and single-resource alike.  The same holds
end-to-end through ``find_equilibrium``, where the lockstep path must
also cut the Python-level utility-call count at least 3x on the paper's
8-core reference chip.
"""

import numpy as np
import pytest

from repro.core import (
    HillClimbBidder,
    Market,
    Player,
    Resource,
    ResourceSet,
    VectorHillClimbBidder,
    bid_to_allocation,
    bid_to_allocation_batch,
    find_equilibrium,
    marginal_utility_of_bids,
    marginal_utility_of_bids_batch,
)
from repro.utility import LinearUtility, LogUtility, UtilityFunction
from repro.utility.batch import BatchedUtilitySet


def scalar_reference(utilities, budgets, others, capacities, current_bids=None, step_hints=None):
    """N independent scalar climbs, row for row."""
    bidder = HillClimbBidder()
    out = np.zeros((len(utilities), capacities.size))
    for i, utility in enumerate(utilities):
        out[i] = bidder.optimize(
            utility,
            float(budgets[i]),
            others[i],
            capacities,
            current_bids=None if current_bids is None else current_bids[i],
            step_hint=None if step_hints is None else float(step_hints[i]),
        )
    return out


@pytest.fixture
def mixed_setup(bbpc_problem):
    """The BBPC chip's grid utilities plus two closed-form stragglers."""
    utilities = list(bbpc_problem.utilities) + [
        LogUtility([1.0, 0.5], [2.0e6, 1.0]),
        LinearUtility([1e-7, 0.02]),
    ]
    capacities = bbpc_problem.capacities
    rng = np.random.default_rng(42)
    budgets = rng.uniform(20.0, 150.0, size=len(utilities))
    others = rng.uniform(0.0, 80.0, size=(len(utilities), capacities.size))
    return utilities, budgets, others, capacities


class TestPlayerBatchSeams:
    """The (K, M) player seams must reproduce their scalar forms row for
    row — including zero-capacity resources, all-zero bid rows, and the
    first-bid (nobody-else-bids) marginal."""

    #: Rows covering: ordinary bids, all-zero bids, a first bid on an
    #: otherwise un-bid resource, and a bid against a dead resource.
    BIDS = np.array(
        [[10.0, 5.0, 1.0], [0.0, 0.0, 0.0], [3.0, 0.0, 7.0], [1.0, 1.0, 1.0]]
    )
    OTHERS = np.array(
        [[20.0, 10.0, 0.0], [5.0, 5.0, 5.0], [0.0, 0.0, 2.0], [9.0, 0.0, 4.0]]
    )
    #: Middle resource has zero capacity (e.g. a powered-off domain).
    CAPACITIES = np.array([10.0, 0.0, 5.0])

    def test_allocation_batch_matches_scalar(self):
        batch = bid_to_allocation_batch(self.BIDS, self.OTHERS, self.CAPACITIES)
        for k in range(self.BIDS.shape[0]):
            expected = bid_to_allocation(
                self.BIDS[k], self.OTHERS[k], self.CAPACITIES
            )
            assert np.array_equal(batch[k], expected)

    def test_allocation_batch_broadcasts_shared_others(self):
        shared = self.OTHERS[0]
        batch = bid_to_allocation_batch(self.BIDS, shared, self.CAPACITIES)
        for k in range(self.BIDS.shape[0]):
            expected = bid_to_allocation(self.BIDS[k], shared, self.CAPACITIES)
            assert np.array_equal(batch[k], expected)

    def test_marginal_batch_matches_scalar(self):
        utility = LogUtility([1.0, 0.5, 2.0], [2.0, 1.0, 3.0])
        batch = marginal_utility_of_bids_batch(
            self.BIDS, self.OTHERS, self.CAPACITIES, utility=utility
        )
        for k in range(self.BIDS.shape[0]):
            expected = marginal_utility_of_bids(
                utility, self.BIDS[k], self.OTHERS[k], self.CAPACITIES
            )
            assert np.array_equal(batch[k], expected)

    def test_marginal_batch_requires_an_evaluation_route(self):
        with pytest.raises(ValueError):
            marginal_utility_of_bids_batch(
                self.BIDS, self.OTHERS, self.CAPACITIES
            )


class TestOptimizeAll:
    def test_cold_matches_scalar_bitwise(self, mixed_setup):
        utilities, budgets, others, capacities = mixed_setup
        bids = VectorHillClimbBidder().optimize_all(
            utilities, budgets, others, capacities
        )
        expected = scalar_reference(utilities, budgets, others, capacities)
        assert np.array_equal(bids, expected)

    def test_warm_with_hints_matches_scalar_bitwise(self, mixed_setup):
        utilities, budgets, others, capacities = mixed_setup
        cold = scalar_reference(utilities, budgets, others, capacities)
        # Perturb the seed slightly and hand every player a small hint;
        # some rows will probe as stale (full-mobility climb) and some
        # fresh — both branches must mirror the scalar path.
        rng = np.random.default_rng(7)
        seed = cold * rng.uniform(0.9, 1.1, size=cold.shape)
        seed = seed * (budgets / seed.sum(axis=1))[:, None]
        hints = rng.uniform(0.5, 5.0, size=budgets.size)
        bids = VectorHillClimbBidder().optimize_all(
            utilities, budgets, others, capacities,
            current_bids=seed, step_hints=hints,
        )
        expected = scalar_reference(
            utilities, budgets, others, capacities,
            current_bids=seed, step_hints=hints,
        )
        assert np.array_equal(bids, expected)

    def test_zero_budget_players(self, mixed_setup):
        utilities, budgets, others, capacities = mixed_setup
        budgets = budgets.copy()
        budgets[1] = 0.0
        budgets[3] = -5.0
        bids = VectorHillClimbBidder().optimize_all(
            utilities, budgets, others, capacities
        )
        expected = scalar_reference(utilities, budgets, others, capacities)
        assert np.array_equal(bids, expected)
        assert np.all(bids[1] == 0.0) and np.all(bids[3] == 0.0)

    def test_single_resource_short_circuit(self):
        utilities = [LogUtility([1.0]), LogUtility([2.0]), LogUtility([0.5])]
        budgets = np.array([10.0, 0.0, 3.0])
        others = np.array([[5.0], [5.0], [5.0]])
        capacities = np.array([4.0])
        bids = VectorHillClimbBidder().optimize_all(
            utilities, budgets, others, capacities
        )
        expected = scalar_reference(utilities, budgets, others, capacities)
        assert np.array_equal(bids, expected)

    def test_prebuilt_evaluator_gives_same_answer(self, mixed_setup):
        utilities, budgets, others, capacities = mixed_setup
        evaluator = BatchedUtilitySet(utilities)
        with_eval = VectorHillClimbBidder().optimize_all(
            utilities, budgets, others, capacities, evaluator=evaluator
        )
        without = VectorHillClimbBidder().optimize_all(
            utilities, budgets, others, capacities
        )
        assert np.array_equal(with_eval, without)


class FlippedGradient(UtilityFunction):
    """Scalar and batched gradients deliberately disagree (test rig)."""

    num_resources = 2

    def value(self, allocation):
        r = np.asarray(allocation, dtype=float)
        return float(2.0 * r[0] + r[1])

    def gradient(self, allocation):
        return np.array([2.0, 1.0])

    def gradient_batch(self, allocations):
        points = np.asarray(allocations, dtype=float)
        return np.tile([1.0, 2.0], (points.shape[0], 1))  # flipped!


class TestStrictMode:
    def test_strict_passes_on_builtin_utilities(self, mixed_setup):
        utilities, budgets, others, capacities = mixed_setup
        strict = VectorHillClimbBidder(strict=True)
        loose = VectorHillClimbBidder()
        assert np.array_equal(
            strict.optimize_all(utilities, budgets, others, capacities),
            loose.optimize_all(utilities, budgets, others, capacities),
        )

    def test_strict_trips_on_divergent_batch_override(self):
        utilities = [FlippedGradient(), FlippedGradient()]
        budgets = np.array([100.0, 100.0])
        others = np.array([[10.0, 10.0], [10.0, 10.0]])
        capacities = np.array([4.0, 4.0])
        with pytest.raises(AssertionError, match="diverged"):
            VectorHillClimbBidder(strict=True).optimize_all(
                utilities, budgets, others, capacities
            )


class TestFindEquilibriumLockstep:
    def _market(self, problem):
        return problem.build_market(np.full(problem.num_players, 100.0))

    def test_vector_matches_scalar_bitwise(self, bbpc_problem):
        market = self._market(bbpc_problem)
        scalar = find_equilibrium(market, bidder=HillClimbBidder())
        vector = find_equilibrium(market, bidder=VectorHillClimbBidder())
        assert np.array_equal(vector.state.bids, scalar.state.bids)
        assert np.array_equal(vector.state.allocations, scalar.state.allocations)
        assert np.array_equal(vector.lambdas, scalar.lambdas)
        assert vector.converged == scalar.converged
        assert vector.iterations == scalar.iterations

    def test_vector_cuts_utility_calls_3x(self, bbpc_problem):
        market = self._market(bbpc_problem)
        scalar = find_equilibrium(market, bidder=HillClimbBidder())
        vector = find_equilibrium(market, bidder=VectorHillClimbBidder())
        assert scalar.eval_counts is not None and vector.eval_counts is not None
        assert scalar.eval_counts["total_calls"] >= 3 * vector.eval_counts["total_calls"]

    def test_warm_verification_round_matches_scalar(self, bbpc_problem):
        market = self._market(bbpc_problem)
        cold = find_equilibrium(market, bidder=VectorHillClimbBidder())
        warm_scalar = find_equilibrium(
            market, bidder=HillClimbBidder(), warm_start=cold.warm_start
        )
        warm_vector = find_equilibrium(
            market, bidder=VectorHillClimbBidder(), warm_start=cold.warm_start
        )
        assert warm_vector.iterations == warm_scalar.iterations
        assert np.array_equal(warm_vector.state.bids, warm_scalar.state.bids)
        # The reused-lambda fast path must still agree bitwise with the
        # scalar path's freshly computed lambdas.
        assert np.array_equal(warm_vector.lambdas, warm_scalar.lambdas)

    def test_warm_verification_round_reuses_climb_marginals(self, bbpc_problem):
        market = self._market(bbpc_problem)
        cold = find_equilibrium(market, bidder=VectorHillClimbBidder())
        warm = find_equilibrium(
            market, bidder=VectorHillClimbBidder(), warm_start=cold.warm_start
        )
        assert warm.iterations == 1
        # One batched staleness probe + one climb evaluation; the final
        # lambda collection reuses the climb's marginals instead of
        # paying a third batched dispatch.
        assert warm.eval_counts["batch_gradient_calls"] == 2

    def test_default_bidder_is_lockstep(self, bbpc_problem):
        market = self._market(bbpc_problem)
        default = find_equilibrium(market)
        explicit = find_equilibrium(market, bidder=VectorHillClimbBidder())
        assert np.array_equal(default.state.bids, explicit.state.bids)
        assert default.eval_counts["batch_gradient_calls"] > 0


class TestGaussSeidelIncrementalTotals:
    def test_matches_recomputed_sum_oracle(self, bbpc_problem):
        """The O(N*M)-per-round running totals must reproduce the old
        recompute-``bids.sum(axis=0)``-per-player semantics: identical
        convergence and bids within float-dust (1e-9 of budget)."""
        market = bbpc_problem.build_market(
            np.full(bbpc_problem.num_players, 100.0)
        )
        result = find_equilibrium(
            market, bidder=HillClimbBidder(), update="gauss-seidel"
        )

        # Reference loop: the pre-optimization Gauss-Seidel semantics,
        # re-summing the whole bid matrix for every player.
        bidder = HillClimbBidder()
        capacities = market.capacities
        bids = market.equal_split_bids()
        prices = market.prices(bids)
        last_moves = None
        converged = False
        iterations = 0
        for iterations in range(1, 31):
            previous_bids = bids
            resume = iterations > 1
            bids = bids.copy()
            for i, player in enumerate(market.players):
                others = bids.sum(axis=0) - bids[i]
                bids[i] = bidder.optimize(
                    player.utility,
                    player.budget,
                    others,
                    capacities,
                    current_bids=bids[i] if resume else None,
                    step_hint=None if last_moves is None else float(last_moves[i]),
                )
            new_prices = market.prices(bids)
            last_moves = np.abs(bids - previous_bids).max(axis=1)
            stable = np.abs(new_prices - prices) <= 0.01 * np.where(
                np.maximum(np.abs(prices), np.abs(new_prices)) > 0.0,
                np.maximum(np.abs(prices), np.abs(new_prices)),
                1.0,
            )
            prices = new_prices
            if np.all(stable):
                converged = True
                break

        assert result.converged == converged
        assert result.iterations == iterations
        np.testing.assert_allclose(
            result.state.bids, bids, rtol=0.0, atol=1e-9 * 100.0
        )


class TestLastLambdaExposure:
    def test_fresh_exit_exposes_lambda(self):
        # A climb that stops on the tolerance condition evaluated its
        # marginals at exactly the returned bids: lambda is free.
        bidder = HillClimbBidder()
        utility = LogUtility([1.0, 1.0], [1.0, 1.0])
        others = np.array([50.0, 50.0])
        capacities = np.array([10.0, 5.0])
        bids = bidder.optimize(utility, 100.0, others, capacities)
        assert bidder.last_marginals is not None
        assert bidder.last_lambda == bidder.player_lambda(
            utility, bids, others, capacities
        )

    def test_stale_exit_exposes_nothing(self):
        # A heavily lopsided linear utility keeps moving money until the
        # step decays below the floor, so the climb's last act is a move
        # and the stored marginals would be stale.
        bidder = HillClimbBidder()
        utility = LinearUtility([1.0, 100.0])
        others = np.array([1000.0, 0.01])
        capacities = np.array([10.0, 5.0])
        bidder.optimize(utility, 100.0, others, capacities)
        assert bidder.last_marginals is None
        assert bidder.last_lambda is None

    def test_reset_between_calls(self):
        bidder = HillClimbBidder()
        utility = LogUtility([1.0, 1.0], [1.0, 1.0])
        others = np.array([50.0, 50.0])
        capacities = np.array([10.0, 5.0])
        bidder.optimize(utility, 100.0, others, capacities)
        assert bidder.last_lambda is not None
        bidder.optimize(utility, 0.0, others, capacities)  # zero budget
        assert bidder.last_lambda is None


def test_gauss_seidel_keeps_scalar_path(bbpc_problem):
    """GS rounds are sequential by construction; the lockstep bidder must
    fall back to its inherited scalar ``optimize`` there and still agree
    with the plain scalar bidder."""
    market = bbpc_problem.build_market(np.full(bbpc_problem.num_players, 100.0))
    scalar = find_equilibrium(market, bidder=HillClimbBidder(), update="gauss-seidel")
    vector = find_equilibrium(
        market, bidder=VectorHillClimbBidder(), update="gauss-seidel"
    )
    assert np.array_equal(vector.state.bids, scalar.state.bids)
    assert vector.eval_counts["batch_gradient_calls"] == 0
