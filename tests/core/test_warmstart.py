"""The epoch-to-epoch warm-start layer.

Three contracts, bottom to top:

* bidders honor ``current_bids`` (the latent contract bug: the paper's
  hill climb used to silently restart from an equal split every round);
* ``find_equilibrium`` consumes and produces :class:`WarmStart` state,
  terminating in a single verification round when the warm bids still
  clear the market, and reaching the same equilibrium as a cold search
  within the paper's 1% price tolerance;
* mechanisms carry warm state across ``allocate`` calls and drop it
  when the player set changes.
"""

import numpy as np
import pytest

from repro.core import (
    AllocationProblem,
    BalancedBudget,
    EqualBudget,
    HillClimbBidder,
    Market,
    Player,
    PriceTakingBidder,
    ReBudgetConfig,
    ReBudgetMechanism,
    Resource,
    ResourceSet,
    WarmStart,
    find_equilibrium,
    run_rebudget,
)
from repro.utility import LogUtility, SaturatingUtility


@pytest.fixture
def market():
    """Three heterogeneous log-utility players over two resources."""
    return Market(
        ResourceSet.of(Resource("cache", 10.0), Resource("power", 5.0)),
        [
            Player("a", LogUtility([1.0, 0.2], [1.0, 1.0]), 100.0),
            Player("b", LogUtility([0.2, 1.0], [1.0, 1.0]), 100.0),
            Player("c", LogUtility([0.6, 0.6], [1.0, 1.0]), 100.0),
        ],
    )


@pytest.fixture
def problem():
    # Demand is skewed toward cache so the cold search needs several
    # rounds of price movement; a mirror-symmetric player set would
    # cancel out and converge in one round, hiding the warm-start win.
    return AllocationProblem(
        utilities=[
            LogUtility([2.0, 0.4], [1.0, 1.0]),
            LogUtility([1.5, 0.6], [1.0, 1.0]),
            SaturatingUtility([0.3, 0.3], [1.0, 1.0]),
        ],
        capacities=np.array([10.0, 10.0]),
        resource_names=["cache", "power"],
        player_names=["a", "b", "c"],
        quanta=np.array([0.25, 0.25]),
    )


class TestHillClimbWarmStart:
    """HillClimbBidder honors ``current_bids`` (the contract bug)."""

    def setup_method(self):
        self.utility = LogUtility([1.0, 0.3], [1.0, 1.0])
        self.others = np.array([50.0, 50.0])
        self.capacities = np.array([10.0, 5.0])

    def test_optimum_is_a_fixed_point(self):
        bidder = HillClimbBidder()
        first = bidder.optimize(self.utility, 100.0, self.others, self.capacities)
        again = bidder.optimize(
            self.utility, 100.0, self.others, self.capacities, current_bids=first
        )
        # Resuming from an optimum must stay at the optimum.
        np.testing.assert_allclose(again, first, atol=1e-9)

    def test_warm_start_actually_used(self):
        # From a converged starting point with a tiny step hint the climb
        # cannot wander: the result stays within one minimal move.
        bidder = HillClimbBidder()
        opt = bidder.optimize(self.utility, 100.0, self.others, self.capacities)
        nudged = opt + np.array([0.5, -0.5])
        warm = bidder.optimize(
            self.utility,
            100.0,
            self.others,
            self.capacities,
            current_bids=nudged,
            step_hint=0.5,
        )
        assert np.abs(warm - nudged).max() <= 1.0 + 1e-9

    def test_budget_change_falls_back_to_equal_split(self):
        bidder = HillClimbBidder()
        stale = np.array([90.0, 10.0])  # sums to 100, budget is now 50
        warm = bidder.optimize(
            self.utility, 50.0, self.others, self.capacities, current_bids=stale
        )
        cold = bidder.optimize(self.utility, 50.0, self.others, self.capacities)
        np.testing.assert_allclose(warm, cold)

    @pytest.mark.parametrize(
        "bad",
        [
            np.array([0.0, 0.0]),
            np.array([np.nan, 100.0]),
            np.array([100.0]),  # wrong shape
        ],
    )
    def test_malformed_current_bids_ignored(self, bad):
        bidder = HillClimbBidder()
        cold = bidder.optimize(self.utility, 100.0, self.others, self.capacities)
        warm = bidder.optimize(
            self.utility, 100.0, self.others, self.capacities, current_bids=bad
        )
        np.testing.assert_allclose(warm, cold)

    def test_budget_preserved(self):
        bidder = HillClimbBidder()
        bids = bidder.optimize(
            self.utility,
            80.0,
            self.others,
            self.capacities,
            current_bids=np.array([60.0, 20.0]),
            step_hint=5.0,
        )
        assert bids.sum() == pytest.approx(80.0)
        assert np.all(bids >= 0.0)


class TestPriceTakingWarmStart:
    def test_climb_starts_from_price_defining_bids(self):
        # The fix: the bids being optimized are the same bids the fixed
        # prices were derived from, so re-optimizing from an optimum is
        # (approximately) a fixed point rather than an equal-split jump.
        bidder = PriceTakingBidder()
        utility = LogUtility([1.0, 0.3], [1.0, 1.0])
        others = np.array([50.0, 50.0])
        caps = np.array([10.0, 5.0])
        bids = np.full(2, 50.0)
        for _ in range(30):
            bids = bidder.optimize(utility, 100.0, others, caps, current_bids=bids)
        settled = bidder.optimize(utility, 100.0, others, caps, current_bids=bids)
        assert np.abs(settled - bids).max() <= 2.0 + 1e-9


class TestFindEquilibriumWarmStart:
    def test_result_always_carries_warm_start(self, market):
        result = find_equilibrium(market)
        ws = result.warm_start
        assert isinstance(ws, WarmStart)
        np.testing.assert_allclose(ws.bids, result.state.bids)
        np.testing.assert_allclose(ws.budgets, market.budgets)
        np.testing.assert_allclose(ws.prices, result.state.prices, rtol=1e-9)
        assert ws.converged == result.converged
        assert ws.last_moves.shape == (market.num_players,)

    def test_warm_restart_converges_in_one_round(self, market):
        cold = find_equilibrium(market)
        warm = find_equilibrium(market, warm_start=cold.warm_start)
        assert warm.warm_started
        assert warm.converged
        assert warm.iterations == 1
        assert cold.iterations > warm.iterations

    def test_warm_matches_cold_within_price_tolerance(self, market):
        cold = find_equilibrium(market)
        warm = find_equilibrium(market, warm_start=cold.warm_start)
        np.testing.assert_allclose(
            warm.state.prices, cold.state.prices, rtol=0.01
        )
        np.testing.assert_allclose(
            warm.state.allocations, cold.state.allocations,
            atol=0.01 * market.capacities.max(),
        )

    def test_incompatible_warm_start_is_ignored(self, market):
        bogus = WarmStart(
            bids=np.ones((5, 3)),
            budgets=np.ones(5),
            prices=np.ones(3),
        )
        result = find_equilibrium(market, warm_start=bogus)
        cold = find_equilibrium(market)
        assert not result.warm_started
        np.testing.assert_allclose(result.state.bids, cold.state.bids)

    def test_bids_for_rescales_to_new_budgets(self, market):
        result = find_equilibrium(market)
        new_budgets = np.array([50.0, 200.0, 100.0])
        rescaled = result.warm_start.bids_for(new_budgets)
        np.testing.assert_allclose(rescaled.sum(axis=1), new_budgets)
        # Each player's split is preserved.
        old = result.warm_start.bids
        np.testing.assert_allclose(
            rescaled / rescaled.sum(axis=1, keepdims=True),
            old / old.sum(axis=1, keepdims=True),
            atol=1e-12,
        )

    def test_bids_for_wrong_player_count_returns_none(self, market):
        result = find_equilibrium(market)
        assert result.warm_start.bids_for(np.ones(7)) is None

    def test_zero_bid_row_falls_back_to_equal_split(self):
        ws = WarmStart(
            bids=np.array([[4.0, 6.0], [0.0, 0.0]]),
            budgets=np.array([10.0, 10.0]),
            prices=np.array([1.0, 1.0]),
        )
        rescaled = ws.bids_for(np.array([10.0, 8.0]))
        np.testing.assert_allclose(rescaled[1], [4.0, 4.0])

    def test_warm_start_after_budget_change_still_converges(self, market):
        # A budget change degrades the seed (bids are rescaled, not
        # re-derived); the search must still converge, to a point in the
        # same tolerance band as a cold search.
        cold = find_equilibrium(market)
        market.players[0].budget = 40.0
        warm = find_equilibrium(market, warm_start=cold.warm_start)
        reference = find_equilibrium(market)
        assert warm.converged
        np.testing.assert_allclose(
            warm.state.prices, reference.state.prices, rtol=0.05
        )


class TestRunRebudgetWarmStart:
    def test_warm_seed_reduces_total_iterations(self, market):
        config = ReBudgetConfig(step=40.0)
        cold = run_rebudget(market, config)
        seed = cold.rounds[0].equilibrium.warm_start
        warm = run_rebudget(market, config, warm_start=seed)
        assert warm.total_equilibrium_iterations <= cold.total_equilibrium_iterations
        assert warm.mbr == pytest.approx(cold.mbr, abs=0.01)
        np.testing.assert_allclose(
            warm.final_budgets, cold.final_budgets, rtol=0.01
        )


class TestMechanismWarmState:
    ALLOC_BAND = 0.01  # fraction of capacity

    def test_equal_budget_reuses_state(self, problem):
        mech = EqualBudget()
        first = mech.allocate(problem)
        assert mech.warm_state is not None
        second = mech.allocate(problem)
        assert second.iterations < first.iterations
        np.testing.assert_allclose(
            second.allocations, first.allocations,
            atol=self.ALLOC_BAND * problem.capacities.max(),
        )

    def test_warm_false_stays_cold(self, problem):
        mech = EqualBudget(warm=False)
        first = mech.allocate(problem)
        assert mech.warm_state is None
        second = mech.allocate(problem)
        assert second.iterations == first.iterations

    def test_balanced_budget_reuses_state(self, problem):
        mech = BalancedBudget()
        first = mech.allocate(problem)
        second = mech.allocate(problem)
        assert second.iterations <= first.iterations
        np.testing.assert_allclose(
            second.allocations, first.allocations,
            atol=self.ALLOC_BAND * problem.capacities.max(),
        )

    def test_rebudget_mechanism_reuses_state(self, problem):
        mech = ReBudgetMechanism(step=30)
        first = mech.allocate(problem)
        second = mech.allocate(problem)
        assert second.iterations <= first.iterations
        np.testing.assert_allclose(
            second.allocations, first.allocations,
            atol=0.01 * problem.capacities.max(),
        )

    def test_reset_warm_state(self, problem):
        mech = EqualBudget()
        mech.allocate(problem)
        assert mech.warm_state is not None
        mech.reset_warm_state()
        assert mech.warm_state is None

    def test_state_invalidated_when_players_change(self, problem):
        mech = EqualBudget()
        mech.allocate(problem)
        different = AllocationProblem(
            utilities=[
                LogUtility([1.0, 1.0], [1.0, 1.0]),
                LogUtility([1.0, 0.2], [1.0, 1.0]),
            ],
            capacities=np.array([10.0, 10.0]),
            resource_names=["cache", "power"],
            player_names=["x", "y"],
            quanta=np.array([0.25, 0.25]),
        )
        # Different player set: the stale state must not be consumed
        # (and must be replaced by the new problem's state).
        result = mech.allocate(different)
        assert result.allocations.shape == (2, 2)
        assert mech.warm_state.player_names == ("x", "y")

    def test_stale_state_detected_by_names(self, problem):
        mech = EqualBudget()
        mech.allocate(problem)
        renamed = AllocationProblem(
            utilities=problem.utilities,
            capacities=problem.capacities,
            resource_names=problem.resource_names,
            player_names=["a", "b", "z"],
            quanta=problem.quanta,
        )
        assert not mech.warm_state.matches(renamed)
        assert mech.warm_state.matches(problem)
