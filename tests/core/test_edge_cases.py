"""Failure injection and degenerate markets.

The market layer must stay well-behaved when players are broke,
indifferent, or alone, and when resources attract no bids at all.
"""

import numpy as np
import pytest

from repro.core import (
    EqualBudget,
    AllocationProblem,
    Market,
    Player,
    ReBudgetConfig,
    Resource,
    ResourceSet,
    find_equilibrium,
    run_rebudget,
)
from repro.utility import LinearUtility, LogUtility, SaturatingUtility


class TestDegenerateMarkets:
    def test_single_player_takes_everything(self):
        rs = ResourceSet.of(Resource("cache", 8.0), Resource("power", 4.0))
        market = Market(rs, [Player("solo", LogUtility([1.0, 1.0]), 50.0)])
        eq = find_equilibrium(market)
        np.testing.assert_allclose(eq.state.allocations[0], [8.0, 4.0])

    def test_broke_player_gets_nothing(self):
        rs = ResourceSet.of(Resource("cache", 8.0))
        market = Market(
            rs,
            [
                Player("rich", LogUtility([1.0]), 100.0),
                Player("broke", LogUtility([1.0]), 0.0),
            ],
        )
        eq = find_equilibrium(market)
        assert eq.state.allocations[1, 0] == 0.0
        assert eq.state.allocations[0, 0] == pytest.approx(8.0)

    def test_indifferent_player_leaves_resource_to_others(self):
        rs = ResourceSet.of(Resource("cache", 8.0), Resource("power", 4.0))
        market = Market(
            rs,
            [
                Player("cache-only", LinearUtility([1.0, 0.0]), 100.0),
                Player("power-only", LinearUtility([0.0, 1.0]), 100.0),
            ],
        )
        eq = find_equilibrium(market)
        # Each specialist ends up with (almost) all of its resource.
        assert eq.state.allocations[0, 0] > 7.5
        assert eq.state.allocations[1, 1] > 3.75

    def test_fully_saturated_market_is_stable(self):
        # Everyone's utility is flat at their current holdings: lambdas
        # are 0, MUR degenerates to 1, ReBudget does nothing.
        rs = ResourceSet.of(Resource("cache", 8.0), Resource("power", 4.0))
        market = Market(
            rs,
            [
                Player(f"p{i}", SaturatingUtility([1.0, 1.0], [1e-6, 1e-6]), 100.0)
                for i in range(3)
            ],
        )
        result = run_rebudget(market, ReBudgetConfig(step=20.0))
        np.testing.assert_allclose(result.final_budgets, 100.0)
        assert result.mur == 1.0

    def test_zero_budget_everywhere(self):
        rs = ResourceSet.of(Resource("cache", 8.0))
        market = Market(
            rs, [Player(f"p{i}", LogUtility([1.0]), 0.0) for i in range(2)]
        )
        eq = find_equilibrium(market)
        assert eq.state.allocations.sum() == 0.0
        assert eq.converged  # zero prices are stable prices


class TestProblemEdgeCases:
    def test_single_resource_problem(self):
        problem = AllocationProblem(
            utilities=[LogUtility([1.0]), LogUtility([2.0])],
            capacities=np.array([10.0]),
            resource_names=["cache"],
            player_names=["a", "b"],
            quanta=np.array([0.1]),
        )
        result = EqualBudget().allocate(problem)
        assert result.allocations.shape == (2, 1)
        np.testing.assert_allclose(result.allocations.sum(), 10.0)

    def test_many_players_few_resources(self):
        n = 32
        problem = AllocationProblem(
            utilities=[LogUtility([1.0, 1.0]) for _ in range(n)],
            capacities=np.array([10.0, 10.0]),
            resource_names=["cache", "power"],
            player_names=[f"p{i}" for i in range(n)],
        )
        result = EqualBudget().allocate(problem)
        # Symmetric players: near-equal split.
        np.testing.assert_allclose(
            result.allocations, 10.0 / n, rtol=0.05
        )
        assert result.envy_freeness > 0.9
