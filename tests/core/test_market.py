"""Market clearing: Equation 1 pricing and proportional allocation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Market, Player, Resource, ResourceSet
from repro.exceptions import MarketConfigurationError
from repro.utility import LinearUtility


def _market(num_players=3, capacities=(10.0, 5.0)):
    rs = ResourceSet.of(
        *[Resource(f"r{j}", c) for j, c in enumerate(capacities)]
    )
    players = [
        Player(f"p{i}", LinearUtility([1.0] * len(capacities)), 100.0)
        for i in range(num_players)
    ]
    return Market(rs, players)


class TestMarketBasics:
    def test_shape_properties(self):
        m = _market()
        assert m.num_players == 3
        assert m.num_resources == 2
        np.testing.assert_allclose(m.capacities, [10.0, 5.0])
        np.testing.assert_allclose(m.budgets, [100.0] * 3)

    def test_rejects_empty_players(self):
        rs = ResourceSet.of(Resource("x", 1.0))
        with pytest.raises(MarketConfigurationError):
            Market(rs, [])

    def test_rejects_utility_dimension_mismatch(self):
        rs = ResourceSet.of(Resource("x", 1.0), Resource("y", 1.0))
        with pytest.raises(MarketConfigurationError):
            Market(rs, [Player("p", LinearUtility([1.0]), 1.0)])


class TestPricing:
    def test_equation_1(self):
        m = _market()
        bids = np.array([[4.0, 1.0], [4.0, 1.0], [2.0, 3.0]])
        prices = m.prices(bids)
        # p_j = sum_i b_ij / C_j
        np.testing.assert_allclose(prices, [1.0, 1.0])

    def test_rejects_bad_shapes_and_negative_bids(self):
        m = _market()
        with pytest.raises(MarketConfigurationError):
            m.prices(np.zeros((2, 2)))
        with pytest.raises(MarketConfigurationError):
            m.prices(np.full((3, 2), -1.0))


class TestAllocation:
    def test_proportional_to_bids(self):
        m = _market(2)
        bids = np.array([[3.0, 1.0], [1.0, 3.0]])
        state = m.allocate(bids)
        np.testing.assert_allclose(state.allocations[0], [7.5, 1.25])
        np.testing.assert_allclose(state.allocations[1], [2.5, 3.75])

    def test_unbid_resource_unallocated(self):
        m = _market(2)
        bids = np.array([[3.0, 0.0], [1.0, 0.0]])
        state = m.allocate(bids)
        assert state.allocations[:, 1].sum() == 0.0

    @given(
        st.lists(
            st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=2, max_size=2),
            min_size=3,
            max_size=3,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_no_overallocation(self, bid_rows):
        m = _market()
        bids = np.array(bid_rows)
        state = m.allocate(bids)
        totals = state.allocations.sum(axis=0)
        for j, cap in enumerate(m.capacities):
            bid_total = bids[:, j].sum()
            if bid_total > 0:
                # Everything is handed out ("no leftovers").
                assert totals[j] == pytest.approx(cap)
            else:
                assert totals[j] == 0.0

    def test_allocation_for_matches_full_clear(self):
        m = _market()
        bids = np.array([[4.0, 1.0], [2.0, 2.0], [1.0, 1.0]])
        state = m.allocate(bids)
        for i in range(3):
            np.testing.assert_allclose(
                m.allocation_for(bids, i), state.allocations[i]
            )

    def test_others_bids(self):
        m = _market()
        bids = np.array([[4.0, 1.0], [2.0, 2.0], [1.0, 1.0]])
        np.testing.assert_allclose(m.others_bids(bids, 0), [3.0, 3.0])


class TestHelpers:
    def test_equal_split_bids(self):
        m = _market()
        bids = m.equal_split_bids()
        np.testing.assert_allclose(bids, np.full((3, 2), 50.0))

    def test_strongly_competitive(self):
        m = _market()
        assert m.is_strongly_competitive(np.ones((3, 2)))
        weak = np.array([[1.0, 1.0], [0.0, 1.0], [0.0, 1.0]])
        assert not m.is_strongly_competitive(weak)

    def test_utilities_vector(self):
        m = _market(2)
        allocs = np.array([[1.0, 1.0], [2.0, 0.0]])
        np.testing.assert_allclose(m.utilities(allocs), [2.0, 2.0])
