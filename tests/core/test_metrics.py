"""Efficiency, envy-freeness, MUR and MBR metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    efficiency,
    envy_freeness,
    envy_matrix,
    market_budget_range,
    market_utility_range,
    price_of_anarchy,
)
from repro.utility import LinearUtility


class TestEfficiency:
    def test_sum_of_utilities(self):
        assert efficiency([0.5, 0.7, 0.8]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert efficiency([]) == 0.0


class TestEnvyMatrix:
    def test_entries(self):
        utilities = [LinearUtility([1.0]), LinearUtility([2.0])]
        allocations = np.array([[1.0], [3.0]])
        matrix = envy_matrix(utilities, allocations)
        np.testing.assert_allclose(matrix, [[1.0, 3.0], [2.0, 6.0]])


class TestEnvyFreeness:
    def test_equal_split_identical_players_is_envy_free(self):
        utilities = [LinearUtility([1.0, 1.0])] * 3
        allocations = np.tile([2.0, 2.0], (3, 1))
        assert envy_freeness(utilities, allocations) == pytest.approx(1.0)

    def test_definition_3(self):
        # Player 0 values player 1's bundle at 4 vs its own 1 -> EF 0.25.
        utilities = [LinearUtility([1.0]), LinearUtility([1.0])]
        allocations = np.array([[1.0], [4.0]])
        assert envy_freeness(utilities, allocations) == pytest.approx(0.25)

    def test_capped_at_one(self):
        # Everyone strictly prefers their own bundle: EF is 1 (the i==j
        # pairs are included in the minimum).
        utilities = [LinearUtility([1.0, 0.0]), LinearUtility([0.0, 1.0])]
        allocations = np.array([[5.0, 0.0], [0.0, 5.0]])
        assert envy_freeness(utilities, allocations) == 1.0

    def test_worthless_bundles_ignored(self):
        utilities = [LinearUtility([1.0, 0.0]), LinearUtility([0.0, 1.0])]
        # Player 1 holds something player 0 values at zero.
        allocations = np.array([[2.0, 0.0], [0.0, 3.0]])
        assert envy_freeness(utilities, allocations) == 1.0

    def test_zero_own_utility_with_positive_envy(self):
        utilities = [LinearUtility([1.0]), LinearUtility([1.0])]
        allocations = np.array([[0.0], [4.0]])
        assert envy_freeness(utilities, allocations) == 0.0

    def test_single_player(self):
        assert envy_freeness([LinearUtility([1.0])], np.array([[1.0]])) == 1.0

    @given(
        st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=3)
    )
    @settings(max_examples=60, deadline=None)
    def test_always_in_unit_interval_for_positive_bundles(self, amounts):
        utilities = [LinearUtility([1.0])] * 3
        allocations = np.array(amounts)[:, None]
        ef = envy_freeness(utilities, allocations)
        assert 0.0 <= ef <= 1.0


class TestPriceOfAnarchy:
    def test_ratio(self):
        assert price_of_anarchy(8.0, 10.0) == pytest.approx(0.8)

    def test_degenerate_opt(self):
        assert price_of_anarchy(1.0, 0.0) == 1.0


class TestRanges:
    def test_mur(self):
        assert market_utility_range([1.0, 2.0, 4.0]) == pytest.approx(0.25)

    def test_mur_all_zero(self):
        assert market_utility_range([0.0, 0.0]) == 1.0

    def test_mbr(self):
        assert market_budget_range([50.0, 100.0]) == pytest.approx(0.5)

    def test_mbr_equal_budgets(self):
        assert market_budget_range([100.0] * 5) == 1.0

    def test_negative_lambda_clamped_to_theorem_domain(self):
        # Monitored (noisy) utilities can report a negative marginal
        # utility of money; the raw min/max ratio would go below zero
        # and poa_lower_bound / ef_lower_bound would raise.  The ranges
        # clamp to [0, 1] instead.
        from repro.core.theory import ef_lower_bound, poa_lower_bound

        mur = market_utility_range([-0.2, 1.0])
        mbr = market_budget_range([-5.0, 100.0])
        assert mur == 0.0
        assert mbr == 0.0
        assert poa_lower_bound(mur) >= 0.0  # must not raise
        assert ef_lower_bound(mbr) >= 0.0

    @given(
        st.lists(st.floats(min_value=-100.0, max_value=100.0), min_size=1, max_size=8)
    )
    @settings(max_examples=80, deadline=None)
    def test_ranges_in_unit_interval(self, values):
        assert 0.0 <= market_utility_range(values) <= 1.0
        assert 0.0 <= market_budget_range(values) <= 1.0
