"""SweepExecutor: determinism, error isolation, progress, validation."""

import numpy as np
import pytest

from repro.exec import SweepExecutor, SweepProgress


def _draw_cell(spec, seed_seq):
    """Return (spec, one random draw) — exposes the cell's entropy."""
    rng = np.random.default_rng(seed_seq)
    return spec, float(rng.random())


def _square_cell(spec, seed_seq):
    return spec * spec


def _explode_on_three(spec, seed_seq):
    if spec == 3:
        raise ValueError(f"cell {spec} exploded")
    return spec * 10


class TestDeterminism:
    def test_serial_matches_parallel(self):
        specs = list(range(8))
        serial = SweepExecutor(workers=1, seed=42).run(_draw_cell, specs)
        pooled = SweepExecutor(workers=4, seed=42).run(_draw_cell, specs)
        assert serial.values() == pooled.values()

    def test_worker_count_is_invisible(self):
        specs = list(range(6))
        runs = [
            SweepExecutor(workers=w, seed=7).run(_draw_cell, specs).values()
            for w in (1, 2, 3)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_seed_changes_entropy(self):
        specs = list(range(4))
        a = SweepExecutor(workers=1, seed=1).run(_draw_cell, specs)
        b = SweepExecutor(workers=1, seed=2).run(_draw_cell, specs)
        assert a.values() != b.values()

    def test_results_in_submission_order(self):
        run = SweepExecutor(workers=4).run(_square_cell, [5, 3, 1, 4, 2])
        assert run.values() == [25, 9, 1, 16, 4]
        assert [cell.index for cell in run.cells] == [0, 1, 2, 3, 4]


class TestErrorIsolation:
    def test_failure_recorded_not_raised(self):
        run = SweepExecutor(workers=1).run(_explode_on_three, [1, 2, 3, 4])
        assert run.values() == [10, 20, 40]
        assert len(run.failures) == 1
        failed = run.failures[0]
        assert not failed.ok
        assert "ValueError" in failed.error
        assert "cell 3 exploded" in failed.error

    def test_failure_isolated_under_pool(self):
        run = SweepExecutor(workers=2).run(_explode_on_three, [1, 2, 3, 4])
        assert run.values() == [10, 20, 40]
        assert len(run.failures) == 1

    def test_raise_failures(self):
        run = SweepExecutor(workers=1).run(
            _explode_on_three, [1, 3], labels=["fine", "doomed"]
        )
        with pytest.raises(RuntimeError, match="doomed"):
            run.raise_failures()
        SweepExecutor(workers=1).run(_square_cell, [1, 2]).raise_failures()


class TestProgress:
    def test_beats_cover_every_cell(self):
        beats = []
        executor = SweepExecutor(workers=1, progress=beats.append)
        executor.run(_square_cell, [1, 2, 3], labels=["a", "b", "c"])
        assert [b.completed for b in beats] == [1, 2, 3]
        assert all(isinstance(b, SweepProgress) for b in beats)
        assert all(b.total == 3 for b in beats)
        assert {b.label for b in beats} == {"a", "b", "c"}
        assert beats[-1].eta_s == 0.0

    def test_describe_mentions_failure(self):
        beats = []
        executor = SweepExecutor(workers=1, progress=beats.append)
        executor.run(_explode_on_three, [3], labels=["boom"])
        assert "FAILED" in beats[0].describe()
        assert "boom" in beats[0].describe()


class TestValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            SweepExecutor(workers=0)

    def test_rejects_bad_chunksize(self):
        with pytest.raises(ValueError, match="chunksize"):
            SweepExecutor(chunksize=0)

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            SweepExecutor().run(_square_cell, [1, 2], labels=["only-one"])

    def test_empty_specs(self):
        run = SweepExecutor(workers=4).run(_square_cell, [])
        assert run.cells == [] and run.values() == []
