"""Per-rule positive/negative fixtures: every rule must fire on its
minimal bad snippet and stay silent on the good twin."""

import textwrap

import pytest

from repro.qa import Linter


def lint(*named_sources):
    """Lint in-memory ``(path, source)`` pairs; single-string calls get
    a default module path."""
    pairs = []
    for item in named_sources:
        if isinstance(item, str):
            pairs.append(("pkg/mod.py", textwrap.dedent(item)))
        else:
            pairs.append((item[0], textwrap.dedent(item[1])))
    return Linter().lint_sources(pairs)


def rule_ids(report):
    return {f.rule for f in report.findings}


class TestFloatEquality:
    def test_fires_on_float_literal_neq(self):
        report = lint("def f(diff):\n    return diff != 0.0\n")
        assert "REPRO101" in rule_ids(report)

    def test_fires_on_float_call_eq(self):
        report = lint("def f(a, b):\n    return float(a) == b\n")
        assert "REPRO101" in rule_ids(report)

    def test_silent_on_int_comparison(self):
        report = lint("def f(n):\n    return n == 0\n")
        assert "REPRO101" not in rule_ids(report)

    def test_silent_on_isclose_twin(self):
        report = lint(
            """
            import math

            def f(diff):
                return not math.isclose(diff, 0.0, rel_tol=0.0, abs_tol=1e-9)
            """
        )
        assert "REPRO101" not in rule_ids(report)

    def test_silent_on_float_inequality_ordering(self):
        report = lint("def f(x):\n    return x > 0.0\n")
        assert "REPRO101" not in rule_ids(report)


class TestMutableDefaultArg:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "dict()", "list()"])
    def test_fires(self, default):
        report = lint(f"def f(x={default}):\n    return x\n")
        assert "REPRO102" in rule_ids(report)

    def test_fires_on_kwonly_default(self):
        report = lint("def f(*, x=[]):\n    return x\n")
        assert "REPRO102" in rule_ids(report)

    def test_silent_on_none_twin(self):
        report = lint(
            """
            def f(x=None):
                if x is None:
                    x = []
                return x
            """
        )
        assert "REPRO102" not in rule_ids(report)

    def test_silent_on_immutable_defaults(self):
        report = lint("def f(x=(), y=0, z='a'):\n    return x, y, z\n")
        assert "REPRO102" not in rule_ids(report)


class TestOverbroadExcept:
    def test_fires_on_bare_except(self):
        report = lint(
            """
            def f():
                try:
                    return 1
                except:
                    return None
            """
        )
        assert "REPRO103" in rule_ids(report)

    def test_fires_on_swallowed_exception(self):
        report = lint(
            """
            def f():
                try:
                    return 1
                except Exception:
                    return None
            """
        )
        assert "REPRO103" in rule_ids(report)

    def test_silent_when_traceback_recorded(self):
        report = lint(
            """
            import traceback

            def f():
                try:
                    return 1
                except Exception:
                    return traceback.format_exc()
            """
        )
        assert "REPRO103" not in rule_ids(report)

    def test_silent_when_reraised(self):
        report = lint(
            """
            def f():
                try:
                    return 1
                except Exception as exc:
                    raise RuntimeError("wrapped") from exc
            """
        )
        assert "REPRO103" not in rule_ids(report)

    def test_silent_on_specific_exception(self):
        report = lint(
            """
            def f(d):
                try:
                    return d["k"]
                except KeyError:
                    return None
            """
        )
        assert "REPRO103" not in rule_ids(report)


class TestUnseededRng:
    def test_fires_on_np_random_global(self):
        report = lint("import numpy as np\nx = np.random.rand(3)\n")
        assert "REPRO104" in rule_ids(report)

    def test_fires_on_np_random_seed(self):
        report = lint("import numpy as np\nnp.random.seed(0)\n")
        assert "REPRO104" in rule_ids(report)

    def test_fires_on_stdlib_random(self):
        report = lint("import random\n\ndef f(x):\n    random.shuffle(x)\n")
        assert "REPRO104" in rule_ids(report)

    def test_fires_on_from_random_import(self):
        report = lint("from random import shuffle\n")
        assert "REPRO104" in rule_ids(report)

    def test_silent_on_seed_sequence_and_default_rng(self):
        report = lint(
            """
            import numpy as np

            def f(seed_seq):
                rng = np.random.default_rng(seed_seq)
                child = np.random.SeedSequence(7)
                return rng, child
            """
        )
        assert "REPRO104" not in rule_ids(report)

    def test_silent_on_explicit_random_instance(self):
        report = lint("import random\nrng = random.Random(7)\n")
        assert "REPRO104" not in rule_ids(report)


WORKER_HARNESS = """
from repro.exec import SweepExecutor

{globals_block}

def worker(spec, seed_seq):
{worker_body}

def run_all(specs):
    executor = SweepExecutor(workers=2)
    return executor.run(worker, specs)
"""


def worker_module(worker_body, globals_block=""):
    body = textwrap.indent(textwrap.dedent(worker_body).strip(), "    ")
    return WORKER_HARNESS.format(globals_block=globals_block, worker_body=body)


class TestWorkerNondeterminism:
    def test_fires_on_mutable_global_in_worker(self):
        report = lint(
            worker_module("_CACHE[spec] = 1\nreturn _CACHE", "_CACHE = {}")
        )
        assert "REPRO105" in rule_ids(report)
        assert any("_CACHE" in f.message for f in report.findings)

    def test_fires_transitively_through_helpers(self):
        source = worker_module("return helper(spec)", "_SEEN = []")
        source += "\ndef helper(s):\n    _SEEN.append(s)\n    return s\n"
        report = lint(source)
        assert "REPRO105" in rule_ids(report)
        assert any("'helper'" in f.message for f in report.findings)

    def test_fires_on_wall_clock_read(self):
        source = worker_module("import time\nreturn time.time()")
        report = lint(source)
        assert "REPRO105" in rule_ids(report)
        assert any("wall clock" in f.message for f in report.findings)

    def test_fires_on_set_iteration(self):
        report = lint(
            worker_module(
                "out = []\nfor x in set(spec):\n    out.append(x)\nreturn out"
            )
        )
        assert "REPRO105" in rule_ids(report)

    def test_silent_on_local_state_twin(self):
        report = lint(
            worker_module(
                "cache = {}\ncache[spec] = 1\n"
                "for x in sorted(set(spec)):\n    cache[x] = x\nreturn cache"
            )
        )
        assert "REPRO105" not in rule_ids(report)

    def test_silent_without_executor_entry(self):
        # Same global mutation, but the function is never handed to a
        # SweepExecutor — single-process code may keep module caches.
        report = lint(
            """
            _CACHE = {}

            def not_a_worker(spec):
                _CACHE[spec] = 1
                return _CACHE
            """
        )
        assert "REPRO105" not in rule_ids(report)

    def test_perf_counter_allowed(self):
        source = worker_module("import time\nreturn time.perf_counter()")
        report = lint(source)
        assert "REPRO105" not in rule_ids(report)

    def test_cross_module_resolution(self):
        runner = """
        from repro.exec import SweepExecutor
        from pkg.cells import cell

        def go(specs):
            ex = SweepExecutor(workers=4)
            return ex.run(cell, specs)
        """
        cells = """
        _HITS = {}

        def cell(spec, seed_seq):
            _HITS[spec] = 1
            return spec
        """
        report = lint(("pkg/runner.py", runner), ("pkg/cells.py", cells))
        assert "REPRO105" in rule_ids(report)
        assert any(f.path == "pkg/cells.py" for f in report.findings)


class TestDunderAllDrift:
    def test_fires_on_missing_all(self):
        report = lint("def public_api():\n    return 1\n")
        assert "REPRO106" in rule_ids(report)

    def test_fires_on_stale_name(self):
        report = lint("__all__ = ['gone']\n\ndef _private():\n    return 1\n")
        assert any(
            f.rule == "REPRO106" and "gone" in f.message for f in report.findings
        )

    def test_fires_on_missing_public_name(self):
        report = lint(
            "__all__ = ['f']\n\ndef f():\n    return 1\n\nCONST = 2\n"
        )
        assert any(
            f.rule == "REPRO106" and "CONST" in f.message for f in report.findings
        )

    def test_silent_on_reconciled_module(self):
        report = lint(
            """
            __all__ = ["CONST", "f"]

            CONST = 2
            _INTERNAL = 3

            def f():
                return CONST

            def _helper():
                return _INTERNAL
            """
        )
        assert "REPRO106" not in rule_ids(report)

    def test_init_reexports_must_be_listed(self):
        report = lint(
            ("pkg/__init__.py", "from .mod import thing\n__all__ = []\n")
        )
        assert any(
            f.rule == "REPRO106" and "thing" in f.message for f in report.findings
        )

    def test_main_module_exempt(self):
        report = lint(("pkg/__main__.py", "def run():\n    return 1\n"))
        assert "REPRO106" not in rule_ids(report)


class TestParseError:
    def test_unparseable_file_is_an_error_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = Linter().lint_paths([str(bad)])
        assert [f.rule for f in report.findings] == ["REPRO100"]
        assert report.exit_code() == 1
