"""The acceptance gate: ``repro lint src/`` is clean, and the exit-code
contract holds on a deliberately bad fixture."""

import json
from pathlib import Path

import repro
from repro.cli import main
from repro.qa import Linter, Severity

#: The installed package's source tree (…/src/repro -> lint the package).
PACKAGE_DIR = Path(repro.__file__).resolve().parent

BAD_FIXTURE = (
    "import numpy as np\n"
    "\n"
    "def f(x=[]):\n"
    "    return np.random.rand(3)\n"
)


class TestSelfLint:
    def test_package_lints_clean(self):
        report = Linter().lint_paths([str(PACKAGE_DIR)])
        details = "\n".join(
            f"{f.location} {f.rule} {f.message}" for f in report.findings
        )
        assert report.findings == [], f"lint findings on src:\n{details}"
        assert report.exit_code(fail_on=Severity.WARNING) == 0

    def test_known_suppressions_are_counted(self):
        # The per-process problem cache in analysis.experiments carries
        # exactly one justified REPRO105 suppression; new blanket noqas
        # should not creep in unnoticed.
        report = Linter().lint_paths([str(PACKAGE_DIR)])
        assert report.suppressed == 1

    def test_cli_exits_zero_on_clean_tree(self, capsys):
        assert main(["lint", str(PACKAGE_DIR)]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_cli_exits_nonzero_on_seeded_bad_fixture(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_FIXTURE)
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REPRO102" in out and "REPRO104" in out

    def test_cli_fail_on_warning_tightens_threshold(self, tmp_path, capsys):
        # Only a warning-severity finding (__all__ drift): default
        # threshold passes, --fail-on warning fails.
        warn_only = tmp_path / "warn.py"
        warn_only.write_text("def api():\n    return 1\n")
        assert main(["lint", str(warn_only)]) == 0
        assert main(["lint", str(warn_only), "--fail-on", "warning"]) == 1
        capsys.readouterr()

    def test_cli_json_format_is_valid(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_FIXTURE)
        assert main(["lint", str(bad), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["files"] == 1
        assert {f["rule"] for f in doc["findings"]} >= {"REPRO102", "REPRO104"}
