"""Reporter contracts: the JSON document schema and the text format."""

import json

from repro.qa import JSON_SCHEMA_VERSION, Linter, render_json, render_text

BAD_SOURCE = (
    "import numpy as np\n"
    "def f(x=[]):\n"
    "    return np.random.rand(3)\n"
    "__all__ = ['f']\n"
)


def report():
    return Linter().lint_sources([("pkg/mod.py", BAD_SOURCE)])


class TestJsonReporter:
    def test_document_schema(self):
        doc = json.loads(render_json(report()))
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert set(doc) == {
            "version", "files", "suppressed", "summary", "by_rule", "findings",
        }
        assert doc["files"] == 1
        assert isinstance(doc["suppressed"], int)
        assert set(doc["summary"]) == {"warning", "error"}
        assert all(isinstance(v, int) for v in doc["summary"].values())
        assert doc["findings"], "fixture must produce findings"
        for finding in doc["findings"]:
            assert set(finding) == {
                "rule", "severity", "path", "line", "col", "message",
            }
            assert finding["severity"] in ("warning", "error")
            assert finding["rule"].startswith("REPRO")
            assert isinstance(finding["line"], int) and finding["line"] >= 1
            assert isinstance(finding["col"], int) and finding["col"] >= 0

    def test_summary_and_by_rule_agree_with_findings(self):
        doc = json.loads(render_json(report()))
        assert sum(doc["summary"].values()) == len(doc["findings"])
        assert sum(doc["by_rule"].values()) == len(doc["findings"])
        rules = {f["rule"] for f in doc["findings"]}
        assert set(doc["by_rule"]) == rules

    def test_findings_sorted_by_location(self):
        doc = json.loads(render_json(report()))
        positions = [(f["path"], f["line"], f["col"]) for f in doc["findings"]]
        assert positions == sorted(positions)


class TestTextReporter:
    def test_lines_carry_location_rule_and_severity(self):
        rep = report()
        text = render_text(rep)
        for finding in rep.findings:
            assert f"{finding.path}:{finding.line}:{finding.col}" in text
            assert finding.rule in text
        assert "1 file(s) linted" in text

    def test_clean_report_renders_summary_only(self):
        rep = Linter().lint_sources([("pkg/ok.py", "__all__ = []\n")])
        text = render_text(rep)
        assert rep.findings == []
        assert "0 error(s), 0 warning(s)" in text
