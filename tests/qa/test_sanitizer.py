"""Runtime invariant sanitizer: gating, per-invariant trips, and the
end-to-end injections through the market/rebudget/mechanism seams.

Every invariant must (a) raise :class:`SanitizerError` naming itself
when armed and fed a violation, and (b) stay silent — a true no-op —
when the sanitizer is off.
"""

import numpy as np
import pytest

from repro.core import (
    AllocationMechanism,
    AllocationProblem,
    Market,
    ReBudgetConfig,
    marginal_utility_of_bids,
    marginal_utility_of_bids_batch,
    run_rebudget,
)
from repro.exceptions import SanitizerError
from repro.qa import sanitize
from repro.utility import LogUtility, UtilityFunction


@pytest.fixture
def restore_active():
    previous = sanitize.ACTIVE
    yield
    sanitize.ACTIVE = previous


def trips(invariant):
    """Context asserting a SanitizerError naming ``invariant``."""
    return pytest.raises(SanitizerError, match=invariant)


class TestGating:
    def test_refresh_reads_environment(self, monkeypatch, restore_active):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.refresh() is True
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert sanitize.refresh() is False
        monkeypatch.delenv("REPRO_SANITIZE")
        assert sanitize.refresh() is False

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no", "False"])
    def test_disabling_spellings(self, monkeypatch, restore_active, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize.refresh() is False

    def test_enabled_context_restores_previous_state(self, restore_active):
        sanitize.ACTIVE = False
        with sanitize.enabled():
            assert sanitize.ACTIVE is True
            with sanitize.enabled(False):
                assert sanitize.ACTIVE is False
            assert sanitize.ACTIVE is True
        assert sanitize.ACTIVE is False

    def test_enabled_restores_on_error(self, restore_active):
        sanitize.ACTIVE = False
        with pytest.raises(RuntimeError):
            with sanitize.enabled():
                raise RuntimeError("boom")
        assert sanitize.ACTIVE is False


class TestDirectChecks:
    """Each check function trips on its violation and names the invariant."""

    def test_negative_price(self):
        with trips("price-nonnegative") as err:
            sanitize.check_prices(np.array([1.0, -0.5]))
        assert err.value.invariant == "price-nonnegative"

    def test_non_finite_price(self):
        with trips("price-nonnegative"):
            sanitize.check_prices(np.array([1.0, np.nan]))

    def test_valid_prices_pass(self):
        sanitize.check_prices(np.array([0.0, 2.5]))

    def test_overspending(self):
        bids = np.array([[60.0, 60.0], [10.0, 10.0]])
        with trips("spending-within-budget") as err:
            sanitize.check_spending(bids, np.array([100.0, 100.0]))
        assert err.value.invariant == "spending-within-budget"
        assert "player 0" in str(err.value)

    def test_spending_at_budget_passes(self):
        bids = np.array([[50.0, 50.0], [10.0, 10.0]])
        sanitize.check_spending(bids, np.array([100.0, 100.0]))

    def test_overallocation(self):
        alloc = np.array([[8.0, 3.0], [8.0, 1.0]])
        with trips("allocation-within-capacity") as err:
            sanitize.check_allocation(alloc, np.array([10.0, 5.0]))
        assert err.value.invariant == "allocation-within-capacity"

    def test_negative_allocation(self):
        alloc = np.array([[-1.0, 3.0], [1.0, 1.0]])
        with trips("allocation-within-capacity"):
            sanitize.check_allocation(alloc, np.array([10.0, 5.0]))

    def test_full_capacity_allocation_passes(self):
        alloc = np.array([[5.0, 2.5], [5.0, 2.5]])
        sanitize.check_allocation(alloc, np.array([10.0, 5.0]))

    @pytest.mark.parametrize("bad", [-0.1, 1.5, float("nan")])
    def test_unit_interval_violations(self, bad):
        with trips("mur-in-unit-interval") as err:
            sanitize.check_unit_interval("MUR", bad)
        assert err.value.invariant == "mur-in-unit-interval"

    def test_unit_interval_names_follow_metric(self):
        with trips("mbr-in-unit-interval") as err:
            sanitize.check_unit_interval("MBR", 2.0)
        assert err.value.invariant == "mbr-in-unit-interval"

    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_unit_interval_endpoints_pass(self, ok):
        sanitize.check_unit_interval("MUR", ok)

    def test_budget_below_floor(self):
        with trips("rebudget-budget-floor") as err:
            sanitize.check_budget_floor(
                np.array([100.0, 39.0]), floor=40.0, initial_budget=100.0
            )
        assert err.value.invariant == "rebudget-budget-floor"

    def test_budget_above_initial(self):
        with trips("rebudget-budget-floor"):
            sanitize.check_budget_floor(
                np.array([120.0, 80.0]), floor=40.0, initial_budget=100.0
            )

    def test_budget_on_floor_passes(self):
        sanitize.check_budget_floor(
            np.array([100.0, 40.0]), floor=40.0, initial_budget=100.0
        )

    def test_per_player_overallocation(self):
        # The per-player form: a single row exceeding capacity trips even
        # though no column total is computed.
        with trips("allocation-within-capacity") as err:
            sanitize.check_player_allocations(
                np.array([[12.0, 3.0]]), np.array([10.0, 5.0])
            )
        assert err.value.invariant == "allocation-within-capacity"

    def test_per_player_negative_allocation(self):
        with trips("allocation-within-capacity"):
            sanitize.check_player_allocations(
                np.array([-0.5, 3.0]), np.array([10.0, 5.0])
            )

    def test_per_player_allocation_at_capacity_passes(self):
        sanitize.check_player_allocations(
            np.array([[10.0, 5.0], [0.0, 0.0]]), np.array([10.0, 5.0])
        )

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_marginal(self, bad):
        with trips("marginal-finite") as err:
            sanitize.check_marginals(np.array([[1.0, bad]]))
        assert err.value.invariant == "marginal-finite"

    def test_finite_marginals_pass(self):
        sanitize.check_marginals(np.array([[0.0, 1e12], [3.5, 0.1]]))

    def test_converged_flag_with_moving_prices(self):
        history = [np.array([1.0, 1.0]), np.array([2.0, 1.0])]
        with trips("equilibrium-convergence-flag") as err:
            sanitize.check_convergence(True, history, tolerance=0.01)
        assert err.value.invariant == "equilibrium-convergence-flag"

    def test_converged_flag_with_stable_prices_passes(self):
        history = [np.array([1.0, 1.0]), np.array([1.0001, 1.0])]
        sanitize.check_convergence(True, history, tolerance=0.01)

    def test_non_converged_run_is_unconstrained(self):
        # The inverse direction is deliberately unchecked: a warm start
        # refused near the iteration cap may end stable yet unconverged.
        history = [np.array([1.0, 1.0]), np.array([5.0, 1.0])]
        sanitize.check_convergence(False, history, tolerance=0.01)


class TestEndToEndInjections:
    """Violations injected through the real seams trip the sanitizer —
    and pass silently when it is disabled."""

    def overspent_bids(self, market):
        # Row sums of 160 against budgets of 100; the market itself does
        # not police spending, only the sanitizer does.
        return np.full((market.num_players, market.num_resources), 80.0)

    def test_overspending_bids_trip_market_allocate(self, small_market):
        with sanitize.enabled():
            with trips("spending-within-budget"):
                small_market.allocate(self.overspent_bids(small_market))

    def test_overspending_bids_pass_when_disabled(self, small_market):
        with sanitize.enabled(False):
            state = small_market.allocate(self.overspent_bids(small_market))
        assert state.allocations.shape == (3, 2)

    def test_negative_price_trips_market_allocate(self, small_market, monkeypatch):
        # Bypass the market's own bid validation so a negative bid
        # matrix reaches pricing — the sanitizer is the backstop.
        monkeypatch.setattr(
            Market, "_check_bids", lambda self, bids: np.asarray(bids, dtype=float)
        )
        bad_bids = np.full((3, 2), -10.0)
        with sanitize.enabled():
            with trips("price-nonnegative"):
                small_market.allocate(bad_bids)
        with sanitize.enabled(False):
            small_market.allocate(bad_bids)  # unchecked: no error

    def rogue_problem(self):
        return AllocationProblem(
            utilities=[
                LogUtility([1.0, 0.2], [1.0, 1.0]),
                LogUtility([0.2, 1.0], [1.0, 1.0]),
            ],
            capacities=np.array([10.0, 5.0]),
            resource_names=("cache", "power"),
            player_names=("a", "b"),
        )

    def test_overallocating_mechanism_trips_finish(self):
        class RogueMechanism(AllocationMechanism):
            name = "Rogue"

            def allocate(self, problem):
                # Grants every player the full capacity vector: column
                # totals are 2x capacity.
                n = problem.num_players
                return self._finish(problem, np.tile(problem.capacities, (n, 1)))

        problem = self.rogue_problem()
        with sanitize.enabled():
            with trips("allocation-within-capacity"):
                RogueMechanism().allocate(problem)
        with sanitize.enabled(False):
            result = RogueMechanism().allocate(problem)
        assert result.allocations.sum() > problem.capacities.sum()

    class NaNGradient(UtilityFunction):
        """Utility whose gradients are poisoned (both scalar and batch)."""

        num_resources = 2

        def value(self, allocation):
            return 1.0

        def gradient(self, allocation):
            return np.array([np.nan, 1.0])

        def gradient_batch(self, allocations):
            points = np.asarray(allocations, dtype=float)
            return np.tile([np.nan, 1.0], (points.shape[0], 1))

    def test_nan_gradient_trips_scalar_marginal_seam(self):
        utility = self.NaNGradient()
        bids = np.array([10.0, 10.0])
        others = np.array([5.0, 5.0])
        capacities = np.array([10.0, 5.0])
        with sanitize.enabled():
            with trips("marginal-finite"):
                marginal_utility_of_bids(utility, bids, others, capacities)
        with sanitize.enabled(False):
            out = marginal_utility_of_bids(utility, bids, others, capacities)
        assert np.isnan(out[0])  # unchecked: the NaN flows through

    def test_nan_gradient_trips_batched_marginal_seam(self):
        utility = self.NaNGradient()
        bids = np.array([[10.0, 10.0], [20.0, 5.0]])
        others = np.array([[5.0, 5.0], [1.0, 9.0]])
        capacities = np.array([10.0, 5.0])
        with sanitize.enabled():
            with trips("marginal-finite"):
                marginal_utility_of_bids_batch(
                    bids, others, capacities, utility=utility
                )
        with sanitize.enabled(False):
            out = marginal_utility_of_bids_batch(
                bids, others, capacities, utility=utility
            )
        assert np.isnan(out[:, 0]).all()

    def test_sub_floor_budget_trips_rebudget(self, small_market, monkeypatch):
        # Force a floor *above* the initial budget: every player starts
        # below it, which the real resolve() can never produce.
        monkeypatch.setattr(ReBudgetConfig, "resolve", lambda self: (10.0, 120.0))
        config = ReBudgetConfig(step=20.0)
        with sanitize.enabled():
            with trips("rebudget-budget-floor"):
                run_rebudget(small_market, config)
        with sanitize.enabled(False):
            result = run_rebudget(small_market, config)
        assert result.rounds  # unchecked run completes


class TestHonestPathStaysClean:
    def test_sanitized_rebudget_run_passes(self, small_market):
        with sanitize.enabled():
            result = run_rebudget(small_market, ReBudgetConfig(step=20.0))
        assert result.final.mbr <= 1.0
        assert result.final_budgets.min() >= 0.0

    def test_sanitized_market_clearing_passes(self, small_market):
        with sanitize.enabled():
            state = small_market.allocate(small_market.equal_split_bids())
        assert state.prices.min() >= 0.0


class TestDisabledFastPath:
    def test_checks_are_skipped_entirely_when_inactive(
        self, small_market, monkeypatch
    ):
        # Booby-trap every check: if any call-site guard evaluates the
        # check while ACTIVE is False, the trap fires.  allocate() must
        # still succeed — proving the disabled path never enters the
        # sanitizer at all, not merely that checks pass.
        def boom(*_args, **_kwargs):
            raise AssertionError("sanitizer entered while disabled")

        for name in (
            "check_prices",
            "check_spending",
            "check_allocation",
            "check_player_allocations",
            "check_marginals",
            "check_unit_interval",
            "check_budget_floor",
            "check_convergence",
        ):
            monkeypatch.setattr(sanitize, name, boom)

        with sanitize.enabled(False):
            state = small_market.allocate(small_market.equal_split_bids())
            run_rebudget(small_market, ReBudgetConfig(step=20.0))
        assert state.allocations.shape == (3, 2)
