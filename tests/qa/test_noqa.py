"""``# repro: noqa[RULE]`` suppression semantics."""

from repro.qa import Linter


def lint(source, path="pkg/mod.py"):
    return Linter().lint_sources([(path, source)])


BAD_LINE = "def f(x=[]):  {comment}\n    return x\n__all__ = ['f']\n"


class TestNoqa:
    def test_matching_rule_is_suppressed_and_counted(self):
        report = lint(BAD_LINE.format(comment="# repro: noqa[REPRO102]"))
        assert report.findings == []
        assert report.suppressed == 1

    def test_justification_text_after_bracket_is_allowed(self):
        report = lint(
            BAD_LINE.format(
                comment="# repro: noqa[REPRO102] shared scratch, reset per call"
            )
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_wrong_rule_id_does_not_suppress(self):
        report = lint(BAD_LINE.format(comment="# repro: noqa[REPRO101]"))
        assert [f.rule for f in report.findings] == ["REPRO102"]
        assert report.suppressed == 0

    def test_bare_noqa_suppresses_every_rule_on_the_line(self):
        report = lint(BAD_LINE.format(comment="# repro: noqa"))
        assert report.findings == []
        assert report.suppressed == 1

    def test_noqa_on_other_line_has_no_effect(self):
        source = "# repro: noqa[REPRO102]\ndef f(x=[]):\n    return x\n__all__ = ['f']\n"
        report = lint(source)
        assert [f.rule for f in report.findings] == ["REPRO102"]

    def test_comma_list_suppresses_each_named_rule(self):
        source = (
            "import numpy as np\n"
            "def f(x=[]):  # repro: noqa[REPRO102, REPRO104]\n"
            "    return np.random.rand(3)  # repro: noqa[REPRO104]\n"
            "__all__ = ['f']\n"
        )
        report = lint(source)
        assert report.findings == []
        assert report.suppressed == 2

    def test_noqa_inside_string_literal_is_ignored(self):
        # The fake noqa lives in a *string* on the same line as the
        # violation; only a real comment may suppress.
        source = (
            'def f(x=[], s="# repro: noqa[REPRO102]"):\n'
            "    return s, x\n"
            "__all__ = ['f']\n"
        )
        report = lint(source)
        assert [f.rule for f in report.findings] == ["REPRO102"]
        assert report.suppressed == 0
