"""The efficiency-vs-fairness knob (the paper's central claim).

Sweeps ReBudget's aggressiveness (the *step*) on an 8-core CPBN bundle
and shows the trade-off of Figures 4a/4b: larger steps buy efficiency
and cost envy-freeness, with Theorem 2 providing a worst-case fairness
guarantee at every setting.  Also demonstrates the inverse interface:
ask for a minimum envy-freeness and let Theorem 2 derive the budget
floor.

Run:  python examples/efficiency_fairness_knob.py
"""

from repro.analysis import format_table
from repro.cmp import ChipModel, cmp_8core
from repro.core import EqualBudget, MaxEfficiency, ReBudgetMechanism
from repro.core.theory import ef_lower_bound
from repro.workloads import generate_bundles


def main() -> None:
    bundle = generate_bundles("CPBN", 8, count=1, seed=9)[0]
    chip = ChipModel(cmp_8core(), bundle.apps)
    problem = chip.build_problem()
    print(f"bundle: {bundle.name} -> {', '.join(bundle.app_names())}\n")

    opt = MaxEfficiency().allocate(problem).efficiency

    # --- Sweep the step knob -------------------------------------------
    rows = []
    baseline = EqualBudget().allocate(problem)
    rows.append(
        ["EqualBudget (step=0)", baseline.efficiency / opt, baseline.envy_freeness,
         baseline.mbr, ef_lower_bound(baseline.mbr)]
    )
    for step in (10, 20, 30, 40):
        result = ReBudgetMechanism(step=step).allocate(problem)
        rows.append(
            [
                f"ReBudget-{step}",
                result.efficiency / opt,
                result.envy_freeness,
                result.mbr,
                ef_lower_bound(result.mbr),
            ]
        )
    print(
        format_table(
            ["mechanism", "eff/OPT", "realized EF", "MBR", "Theorem-2 EF bound"],
            rows,
            title="The step knob: efficiency up, fairness down, bound never violated",
        )
    )

    # --- The inverse interface: guarantee a fairness floor -------------
    print()
    rows = []
    for ef_target in (0.7, 0.5, 0.3):
        result = ReBudgetMechanism(min_envy_freeness=ef_target).allocate(problem)
        rows.append(
            [
                f"EF >= {ef_target}",
                result.efficiency / opt,
                result.envy_freeness,
                result.mbr,
                ef_lower_bound(result.mbr),
            ]
        )
    print(
        format_table(
            ["request", "eff/OPT", "realized EF", "MBR", "guaranteed EF"],
            rows,
            title="Administrator interface: set a fairness floor, Theorem 2 "
            "derives the budget constraint",
        )
    )


if __name__ == "__main__":
    main()
