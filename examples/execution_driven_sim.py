"""Execution-driven simulation with online monitoring (Section 6.3).

Runs the full phase-2 pipeline on an 8-core BBPN bundle: UMON shadow
tags estimate miss curves from a sampled synthetic access stream, the
market re-allocates every 1 ms on the estimated utilities, Futility
Scaling slews the physical cache partitions, and per-core DVFS rides an
RC thermal model.  Prints the measured (not modeled) weighted speedup
and a per-epoch trace excerpt.

Run:  python examples/execution_driven_sim.py
"""

import numpy as np

from repro.analysis import format_table
from repro.cmp import MB, ChipModel, cmp_8core
from repro.core import EqualBudget, EqualShare, ReBudgetMechanism
from repro.sim import ExecutionDrivenSimulator, SimulationConfig
from repro.workloads import generate_bundles


def main() -> None:
    bundle = generate_bundles("BBPN", 8, count=1, seed=7)[0]
    chip = ChipModel(cmp_8core(), bundle.apps)
    sim_config = SimulationConfig(duration_ms=15.0, seed=42)

    print(f"bundle: {bundle.name} -> {', '.join(bundle.app_names())}")
    print(f"simulating {sim_config.duration_ms:.0f} ms, re-allocating every "
          f"{sim_config.epoch_ms:.0f} ms on UMON-monitored utilities\n")

    rows = []
    traces = {}
    for mechanism in (EqualShare(), EqualBudget(), ReBudgetMechanism(step=40)):
        result = ExecutionDrivenSimulator(chip, mechanism, sim_config).run()
        traces[result.mechanism] = result
        rows.append(
            [
                result.mechanism,
                result.efficiency,
                result.envy_freeness,
                result.mean_market_iterations,
                result.trace.mean_power(),
                result.trace.peak_temperature(),
            ]
        )
    print(
        format_table(
            ["mechanism", "measured eff", "EF", "mean iters", "mean W", "peak C"],
            rows,
            title="Measured (execution-driven) results",
        )
    )

    # Trace excerpt: how the ReBudget allocation evolves for one core.
    result = traces["ReBudget-40"]
    rows = []
    for record in result.trace.epochs[:8]:
        rows.append(
            [
                record.epoch,
                record.cache_occupancy[0] / MB,
                record.frequencies_ghz[0],
                record.dram_latency_ns,
                record.market_iterations,
            ]
        )
    print()
    print(
        format_table(
            ["epoch", f"{bundle.apps[0].name} cache (MB)", "freq (GHz)",
             "DRAM lat (ns)", "market iters"],
            rows,
            title="Trace excerpt (core 0): Futility Scaling converges the "
            "partition while DRAM contention feeds back",
        )
    )


if __name__ == "__main__":
    main()
