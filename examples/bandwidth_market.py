"""Three-resource market: cache + power + DRAM bandwidth.

The paper's framework is explicitly general in the number of resources;
this example adds guaranteed memory bandwidth as a third market good
(queueing-curve latency makes performance concave in it) and shows that
the bidding, equilibrium and ReBudget machinery run unchanged with
M = 3 — including the efficiency-vs-fairness knob.

Run:  python examples/bandwidth_market.py
"""

import numpy as np

from repro.analysis import format_table
from repro.cmp import MB, ChipModel, cmp_8core
from repro.cmp.bandwidth import build_bandwidth_problem
from repro.core import EqualBudget, EqualShare, ReBudgetMechanism
from repro.workloads import generate_bundles


def main() -> None:
    bundle = generate_bundles("CPBN", 8, count=1, seed=9)[0]
    chip = ChipModel(cmp_8core(), bundle.apps)
    problem = build_bandwidth_problem(chip)

    print(f"bundle: {bundle.name} -> {', '.join(bundle.app_names())}")
    print(
        "market resources: "
        f"{problem.capacities[0] / MB:.1f} MB cache, "
        f"{problem.capacities[1]:.1f} W power, "
        f"{problem.capacities[2]:.1f} GB/s DRAM bandwidth\n"
    )

    rows = []
    results = {}
    for mechanism in (EqualShare(), EqualBudget(), ReBudgetMechanism(step=20),
                      ReBudgetMechanism(step=40)):
        result = mechanism.allocate(problem)
        results[result.mechanism] = result
        rows.append(
            [result.mechanism, result.efficiency, result.envy_freeness,
             result.iterations]
        )
    print(
        format_table(
            ["mechanism", "efficiency", "EF", "iterations"],
            rows,
            title="Mechanism comparison with three resources",
        )
    )

    # Who buys bandwidth?  Memory-bound apps should dominate it.
    chosen = results["ReBudget-40"]
    rows = []
    for i, app in enumerate(bundle.apps):
        extras = chosen.allocations[i]
        rows.append(
            [app.name, extras[0] / MB, extras[1], extras[2],
             problem.utilities[i].value(extras)]
        )
    print()
    print(
        format_table(
            ["app", "cache (MB)", "power (W)", "bandwidth (GB/s)", "utility"],
            rows,
            title="ReBudget-40 allocation: memory-bound apps buy bandwidth, "
            "compute-bound apps buy watts",
        )
    )


if __name__ == "__main__":
    main()
