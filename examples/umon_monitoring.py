"""Online monitoring deep-dive: shadow tags, Talus, and a real cache.

Shows the full monitoring substrate on one application (*mcf*):

1. the true miss-rate curve of the parametric application model;
2. what UMON shadow tags (1-in-32 sampling) estimate from one epoch of
   the synthetic access stream;
3. what a *real* set-associative LRU cache measures when driven by an
   address stream generated from the same model — closing the loop
   between the analytic layers and a concrete cache;
4. the Talus shadow-partition plan for a mid-cliff target size.

Run:  python examples/umon_monitoring.py
"""

import numpy as np

from repro.analysis import format_table
from repro.cmp import KB, MB, CoreModel, RuntimeMonitor, TalusController, cmp_8core
from repro.cmp.lru_cache import AddressStreamGenerator, SetAssociativeCache
from repro.cmp.spec_suite import app_by_name


def main() -> None:
    cfg = cmp_8core()
    app = app_by_name("mcf")
    core = CoreModel(app, cfg)
    rng = np.random.default_rng(7)

    # --- 1+2: true curve vs UMON estimate ------------------------------
    monitor = RuntimeMonitor(core, cfg, rng=rng)
    for _ in range(4):
        monitor.observe_epoch(2e6)  # four 1 ms epochs at ~2 GIPS

    rows = []
    for k in range(cfg.umon_max_regions):
        size = (k + 1) * cfg.cache_region_bytes
        rows.append(
            [k + 1, app.mrc.miss_fraction(size), monitor.miss_curve[k]]
        )
    print(
        format_table(
            ["regions", "true miss rate", "UMON estimate (1/32 sampling)"],
            rows[::3],
            title=f"{app.name}: miss-rate curve, model vs shadow tags",
        )
    )

    # --- 3: validate against a real LRU cache --------------------------
    # mcf's 1.5 MB working set spans ~24k cache lines, so both the
    # stream generator's reuse history and the cache need a long warm-up
    # before the steady-state reuse pattern emerges.
    generator = AddressStreamGenerator(app.mrc, line_bytes=64, max_bytes=4 * MB)
    addresses = generator.generate(rng, 150_000)
    warm = 90_000
    rows = []
    for capacity in (256 * KB, 1 * MB, 2 * MB):
        cache = SetAssociativeCache(capacity, associativity=16, line_bytes=64)
        cache.run(addresses[:warm])
        stats = cache.run(addresses[warm:])
        rows.append(
            [capacity / MB, app.mrc.miss_fraction(capacity), stats.miss_rate]
        )
    print()
    print(
        format_table(
            ["cache (MB)", "model miss rate", "measured on real LRU cache"],
            rows,
            title="Stream-level validation: generated addresses vs the model",
        )
    )

    # --- 4: the Talus plan at a mid-cliff target ------------------------
    sizes = np.arange(1, 17) * float(cfg.cache_region_bytes)
    hits = np.array([1.0 - app.mrc.miss_fraction(s) for s in sizes])
    talus = TalusController(sizes, hits)
    target = 1.0 * MB  # well below mcf's 1.5 MB working set
    plan = talus.plan(target)
    print()
    print(f"Talus plan for a {target / MB:.1f} MB partition (mcf's cliff is at 1.5 MB):")
    print(
        f"  shadow A: {plan.size_a_bytes / MB:.2f} MB serving "
        f"{plan.stream_fraction_a:.0%} of accesses (behaves like "
        f"{plan.poi_low_bytes / MB:.2f} MB)"
    )
    print(
        f"  shadow B: {plan.size_b_bytes / MB:.2f} MB serving "
        f"{plan.stream_fraction_b:.0%} of accesses (behaves like "
        f"{plan.poi_high_bytes / MB:.2f} MB)"
    )
    raw_hit = 1.0 - app.mrc.miss_fraction(target)
    print(
        f"  hit rate: raw curve {raw_hit:.3f} -> Talus delivers "
        f"{plan.expected_value:.3f} (the convex hull)"
    )


if __name__ == "__main__":
    main()
