"""Quickstart: a market of three players over two resources.

Builds the smallest interesting market, finds its equilibrium with the
paper's hill-climbing bidders, checks the theoretical bounds (Theorems
1 and 2), and runs ReBudget to trade fairness for efficiency.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    EqualBudget,
    Market,
    MaxEfficiency,
    Player,
    ReBudgetConfig,
    Resource,
    ResourceSet,
    ef_lower_bound,
    envy_freeness,
    find_equilibrium,
    market_utility_range,
    poa_lower_bound,
    run_rebudget,
)
from repro.utility import LogUtility, SaturatingUtility


def main() -> None:
    # Two divisible resources: 10 units of "cache", 5 units of "power".
    resources = ResourceSet.of(Resource("cache", 10.0), Resource("power", 5.0))

    # Three players with different appetites.  The third saturates
    # quickly — it cannot use much, so its marginal utility of money
    # (lambda) will be low and ReBudget will cut its budget.
    players = [
        Player("cache-hungry", LogUtility([2.0, 0.3], [1.0, 1.0]), budget=100.0),
        Player("power-hungry", LogUtility([0.3, 2.0], [1.0, 1.0]), budget=100.0),
        Player("content", SaturatingUtility([0.2, 0.2], [0.5, 0.5]), budget=100.0),
    ]
    market = Market(resources, players)

    # --- Market equilibrium (the iterative bidding-pricing loop) ------
    eq = find_equilibrium(market)
    print(f"equilibrium in {eq.iterations} pricing rounds (converged={eq.converged})")
    print(f"prices:      {np.round(eq.state.prices, 4)}")
    print(f"allocations:\n{np.round(eq.state.allocations, 3)}")
    print(f"efficiency:  {eq.efficiency:.3f}")

    mur = market_utility_range(eq.lambdas)
    ef = envy_freeness([p.utility for p in players], eq.state.allocations)
    print(f"MUR = {mur:.3f}  ->  PoA >= {poa_lower_bound(mur):.3f}  (Theorem 1)")
    print(f"MBR = 1.000  ->  EF >= {ef_lower_bound(1.0):.3f}; realized EF = {ef:.3f}")

    # --- ReBudget: cut low-lambda budgets, re-equilibrate --------------
    rebudget = run_rebudget(market, ReBudgetConfig(step=40.0))
    print(f"\nReBudget-40 finished after {len(rebudget.rounds)} rounds")
    print(f"final budgets: {np.round(rebudget.final_budgets, 2)}")
    print(f"efficiency:    {rebudget.efficiency:.3f} (was {eq.efficiency:.3f})")
    print(f"MBR = {rebudget.mbr:.3f} -> guaranteed EF >= {rebudget.guaranteed_envy_freeness:.3f}")

    # --- Reference: the welfare-maximizing allocation ------------------
    problem = _as_problem(market)
    opt = MaxEfficiency().allocate(problem)
    print(f"\nMaxEfficiency reference: {opt.efficiency:.3f}")
    print(f"realized eff/OPT: equal-budget {eq.efficiency / opt.efficiency:.3f}, "
          f"ReBudget-40 {rebudget.efficiency / opt.efficiency:.3f}")


def _as_problem(market):
    from repro.core import AllocationProblem

    return AllocationProblem(
        utilities=[p.utility for p in market.players],
        capacities=market.capacities,
        resource_names=list(market.resources.names),
        player_names=[p.name for p in market.players],
        quanta=market.capacities / 256.0,
    )


if __name__ == "__main__":
    main()
