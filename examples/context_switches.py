"""Context switches: why the market re-runs every millisecond.

Section 4.3 triggers the budget re-assignment every 1 ms "to handle the
changing resource demands due to context switches and application phase
changes".  This example schedules a context switch — a cache-hungry
*mcf* is replaced by a compute-bound *povray* mid-run — and shows the
market draining cache away from the core and feeding it watts instead,
epoch by epoch, as the UMON monitors re-learn the new application.

Run:  python examples/context_switches.py
"""

import numpy as np

from repro.analysis import format_table
from repro.cmp import MB, ChipModel, cmp_8core
from repro.cmp.spec_suite import app_by_name
from repro.core import EqualBudget
from repro.sim import ContextSwitch, ExecutionDrivenSimulator, SimulationConfig
from repro.workloads import paper_bbpc_bundle


def main() -> None:
    bundle = paper_bbpc_bundle()
    chip = ChipModel(cmp_8core(), bundle.apps)
    core = 4  # runs mcf initially
    switch_ms = 6.0

    config = SimulationConfig(
        duration_ms=14.0,
        seed=33,
        context_switches=(ContextSwitch(switch_ms, core, app_by_name("povray")),),
    )
    result = ExecutionDrivenSimulator(chip, EqualBudget(), config).run()

    print(
        f"core {core}: mcf until t={switch_ms:.0f} ms, then povray "
        "(cache-hungry -> compute-bound)\n"
    )
    rows = []
    for record in result.trace.epochs:
        rows.append(
            [
                record.epoch,
                "mcf" if record.time_ms < switch_ms else "povray",
                record.extras[core, 0] / MB,
                record.extras[core, 1],
                record.frequencies_ghz[core],
            ]
        )
    print(
        format_table(
            ["epoch", "app", "market cache (MB)", "market power (W)", "freq (GHz)"],
            rows,
            title=f"Core {core}'s allocation across the switch "
            "(the market reacts within an epoch or two)",
        )
    )

    before = np.mean([r.extras[core, 0] for r in result.trace.epochs if r.time_ms < switch_ms])
    after = np.mean([r.extras[core, 0] for r in result.trace.epochs if r.time_ms >= switch_ms + 3])
    print(
        f"\nmean cache grant: {before / MB:.2f} MB (mcf) -> {after / MB:.2f} MB (povray); "
        "the freed capacity flows to the remaining cache-sensitive apps."
    )


if __name__ == "__main__":
    main()
