"""The paper's 8-core BBPC case study (Section 6.1.1 / Figure 3).

Builds the exact bundle the paper studies — two copies each of *apsi*,
*swim* and *mcf*, plus *hmmer* and *sixtrack* — on the 8-core CMP of
Table 1, and compares every allocation mechanism on true convexified
utilities: who gets how much cache and power, at what frequency each
core ends up, and what efficiency/fairness each mechanism achieves.

Run:  python examples/multicore_allocation.py
"""

import numpy as np

from repro.analysis import format_table
from repro.cmp import MB, ChipModel, cmp_8core
from repro.core import standard_mechanism_suite
from repro.workloads import paper_bbpc_bundle


def main() -> None:
    bundle = paper_bbpc_bundle()
    chip = ChipModel(cmp_8core(), bundle.apps)
    problem = chip.build_problem()

    print(f"bundle: {bundle.name} -> {', '.join(bundle.app_names())}")
    print(
        f"market resources: {chip.extra_cache_capacity / MB:.1f} MB cache, "
        f"{chip.extra_power_capacity:.1f} W power "
        "(beyond each core's free region + 800 MHz)\n"
    )

    results = {}
    for mechanism in standard_mechanism_suite():
        results[mechanism.name] = mechanism.allocate(problem)

    opt = results["MaxEfficiency"].efficiency
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.efficiency,
                result.efficiency / opt,
                result.envy_freeness,
                result.iterations,
                "-" if result.mur is None else f"{result.mur:.2f}",
            ]
        )
    print(
        format_table(
            ["mechanism", "efficiency", "eff/OPT", "envy-freeness", "iters", "MUR"],
            rows,
            title="Mechanism comparison (weighted speedup; EF per Definition 3)",
        )
    )

    # Per-core operating points under ReBudget-40.
    chosen = results["ReBudget-40"]
    points = chip.operating_points(chosen.allocations)
    rows = []
    for i, (app, extras, point) in enumerate(
        zip(bundle.apps, chosen.allocations, points)
    ):
        rows.append(
            [
                app.name,
                (128 * 1024 + extras[0]) / MB,
                point.frequency_ghz,
                point.power_watts,
                point.utility,
                problem.utilities[i].value(extras),
            ]
        )
    print()
    print(
        format_table(
            ["app", "cache (MB)", "freq (GHz)", "power (W)", "raw U", "Talus U"],
            rows,
            title="Per-core operating points under ReBudget-40 ('raw U' is the "
            "un-convexified curve; Talus shadow partitions deliver 'Talus U')",
        )
    )


if __name__ == "__main__":
    main()
